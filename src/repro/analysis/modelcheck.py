"""Bounded model checker: DetectionFsm × CAN bit-stuffing product automaton.

The verifier's VC204 agreement check proves ``classify`` matches detection-
set membership on the *un-stuffed* 11-bit ID, and VC212/VC213 check the
counterattack window by arithmetic.  Neither proves the property the
firmware actually needs: the FSM is fed the arbitration stream *as sampled
on the wire* — with stuff bits inserted by the transmitter after every run
of five equal levels — and the de-stuffing receiver
(:meth:`~repro.core.detection.MichiCanFirmware._track`) must skip exactly
those bits so the FSM still flags exactly 𝔻, committed early enough to
launch the counterattack at un-stuffed position 13.

This module closes that gap by exhaustive exploration: for every ECU of a
:class:`~repro.analysis.verifier.VerificationPlan`, it drives all 2^11
identifiers through a CAN transmitter model (SOF + MSB-first ID with
bit stuffing) into a receiver model mirroring the firmware's de-stuffing
(:class:`StuffAwareReceiver`), and checks the product of FSM state and
stuffing state on every step:

* **VC301** — verdict mismatch on the stuffed stream: the FSM flags an ID
  outside 𝔻 or misses one inside it (e.g. a receiver that mis-steps on a
  stuff bit — model it with ``feed_stuff_bits=True``), or the receiver
  hits a stuff error on a legal stream;
* **VC302** — a flagging path commits after un-stuffed position 13
  (:data:`~repro.can.constants.COUNTERATTACK_START_POS`), past the
  counterattack deadline;
* **VC303** — the FSM is still undecided after all 11 ID bits;
* **VC300** — the plan could not be elaborated into FSMs at all.

The state space is tiny by construction (a few hundred FSM states × a
5-valued run length × 2 levels), so exhaustive coverage of all 2,048 IDs
per ECU runs in milliseconds — the :class:`ModelCheckStats` it returns
records exactly what was covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.can.constants import (
    COUNTERATTACK_START_POS,
    DOMINANT,
    ID_BITS,
    NUM_STD_IDS,
    STUFF_RUN,
)
from repro.core.fsm import DetectionFsm, FsmRunner, Verdict
from repro.analysis.verifier import (
    VerificationPlan,
    VerificationReport,
    VerifierIssue,
)
from repro.errors import ConfigurationError

#: Cap on per-(code, subject) issues before aggregation kicks in.
MAX_ISSUES_PER_SUBJECT = 5


@dataclass
class ModelCheckStats:
    """What one model-check run actually covered.

    Attributes:
        subjects: ECU names whose FSMs were explored.
        ids_checked: Identifiers driven per subject (2^11 = exhaustive).
        bits_fed: Total wire bits (stuff bits included) fed to receivers.
        stuff_bits: Stuff bits the transmitter model inserted.
        product_states: Distinct (FSM state, receiver stuffing state,
            transmitter stuffing state) triples visited.
        stuffing_contexts: Distinct transmitter stuffing contexts
            ``(last level, run length)`` in effect when an ID bit was sent.
        max_commit_position: Latest un-stuffed frame position at which any
            malicious ID's flagging path commits (decision or trigger,
            whichever is later); 0 when nothing was flagged.
    """

    subjects: List[str] = field(default_factory=list)
    ids_checked: int = 0
    bits_fed: int = 0
    stuff_bits: int = 0
    product_states: int = 0
    stuffing_contexts: int = 0
    max_commit_position: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "subjects": list(self.subjects),
            "ids_checked": self.ids_checked,
            "bits_fed": self.bits_fed,
            "stuff_bits": self.stuff_bits,
            "product_states": self.product_states,
            "stuffing_contexts": self.stuffing_contexts,
            "max_commit_position": self.max_commit_position,
        }

    def render(self) -> str:
        return (f"model check: {len(self.subjects)} FSM(s) x "
                f"{self.ids_checked} IDs, {self.bits_fed} wire bits "
                f"({self.stuff_bits} stuffed), "
                f"{self.product_states} product states, "
                f"{self.stuffing_contexts} stuffing contexts, "
                f"latest commit at position {self.max_commit_position}")


class StuffAwareReceiver:
    """The firmware's de-stuffing arbitration tracker, as a checkable model.

    Mirrors :meth:`~repro.core.detection.MichiCanFirmware._track` for the
    arbitration field: after :data:`~repro.can.constants.STUFF_RUN` equal
    raw levels the next bit is a stuff bit — skipped, not counted toward
    the un-stuffed frame position ``cnt`` (SOF = 1, ID bits = 2..12) — and
    a sixth equal level is a stuff error.  Un-stuffed ID bits step the FSM
    runner.

    Args:
        runner: Fresh per-frame FSM cursor.
        feed_stuff_bits: Fault model for VC301 fixtures — a corrupted
            receiver that *also* steps the FSM on stuff bits (the classic
            off-by-one where de-stuffing forgets to skip), while still
            keeping the frame-position count correct.
    """

    def __init__(self, runner: FsmRunner,
                 feed_stuff_bits: bool = False) -> None:
        self.runner = runner
        self.feed_stuff_bits = feed_stuff_bits
        # State immediately after SOF, as _wait_sof leaves it.
        self.cnt = 1
        self.last = DOMINANT
        self.run = 1
        self.stuff_error = False
        #: Un-stuffed position at which the verdict was reached, if any.
        self.decided_cnt: Optional[int] = None

    def state_key(self) -> Tuple[object, int, int]:
        """The receiver's product-state component (FSM x stuffing run)."""
        return (self.runner._state if self.runner.verdict is Verdict.PENDING
                else self.runner.verdict, self.last, self.run)

    def on_bit(self, value: int) -> None:
        """Consume one raw wire bit (data or stuff)."""
        if self.stuff_error:
            return
        if self.run == STUFF_RUN:
            if value == self.last:
                self.stuff_error = True  # six equal: error frame
                return
            # A stuff bit: restart the run, do not advance the frame.
            self.last = value
            self.run = 1
            if self.feed_stuff_bits:
                self._step_fsm(value)
            return
        if value == self.last:
            self.run += 1
        else:
            self.last = value
            self.run = 1
        self.cnt += 1
        if 2 <= self.cnt <= 1 + ID_BITS:
            self._step_fsm(value)

    def _step_fsm(self, value: int) -> None:
        if self.runner.verdict is not Verdict.PENDING:
            return
        if self.runner.step(value) is not Verdict.PENDING \
                and self.decided_cnt is None:
            self.decided_cnt = self.cnt


@dataclass
class _Explorer:
    """Shared accumulators across one plan's per-ECU explorations."""

    product_states: Set[Tuple[object, ...]] = field(default_factory=set)
    stuffing_contexts: Set[Tuple[int, int]] = field(default_factory=set)
    bits_fed: int = 0
    stuff_bits: int = 0


def check_detection_stream(
    fsm: DetectionFsm,
    trigger_position: int = COUNTERATTACK_START_POS,
    subject: str = "fsm",
    feed_stuff_bits: bool = False,
    _explorer: Optional[_Explorer] = None,
) -> Tuple[List[VerifierIssue], ModelCheckStats]:
    """Exhaustively drive all 2^11 IDs through transmitter stuffing into a
    de-stuffing receiver and check the FSM's verdicts on the wire stream.
    """
    explorer = _explorer if _explorer is not None else _Explorer()
    issues: List[VerifierIssue] = []
    overflow = 0
    max_commit = 0

    def report(issue: VerifierIssue) -> None:
        nonlocal overflow
        if len(issues) < MAX_ISSUES_PER_SUBJECT:
            issues.append(issue)
        else:
            overflow += 1

    for can_id in range(NUM_STD_IDS):
        receiver = StuffAwareReceiver(FsmRunner(fsm),
                                      feed_stuff_bits=feed_stuff_bits)
        # Transmitter stuffing state just after the dominant SOF.
        tx_last, tx_run = DOMINANT, 1
        stuffed: List[int] = [DOMINANT]
        for bit_index in range(ID_BITS):
            bit = (can_id >> (ID_BITS - 1 - bit_index)) & 1
            if tx_run == STUFF_RUN:
                stuff = 1 - tx_last
                stuffed.append(stuff)
                explorer.bits_fed += 1
                explorer.stuff_bits += 1
                receiver.on_bit(stuff)
                explorer.product_states.add(
                    receiver.state_key() + (stuff, 1))
                tx_last, tx_run = stuff, 1
            explorer.stuffing_contexts.add((tx_last, tx_run))
            stuffed.append(bit)
            explorer.bits_fed += 1
            receiver.on_bit(bit)
            if bit == tx_last:
                tx_run += 1
            else:
                tx_last, tx_run = bit, 1
            explorer.product_states.add(
                receiver.state_key() + (tx_last, tx_run))

        expected_malicious = can_id in fsm.detection_ids
        wire = "".join(str(b) for b in stuffed)
        if receiver.stuff_error:
            report(VerifierIssue(
                "VC301", subject,
                f"receiver hits a stuff error on the legal stream for ID "
                f"{can_id:#x} (wire bits {wire}); the de-stuffer must "
                "never see six equal levels from a stuffing transmitter"))
            continue
        verdict = receiver.runner.verdict
        if verdict is Verdict.PENDING:
            report(VerifierIssue(
                "VC303", subject,
                f"FSM is still undecided after all {ID_BITS} ID bits of "
                f"ID {can_id:#x} on the stuffed stream (wire bits {wire})"))
            continue
        actual_malicious = verdict is Verdict.MALICIOUS
        if actual_malicious != expected_malicious:
            expected = "malicious" if expected_malicious else "benign"
            report(VerifierIssue(
                "VC301", subject,
                f"FSM classifies ID {can_id:#x} as {verdict.value} on the "
                f"stuffed stream (wire bits {wire}) but 𝔻 membership says "
                f"{expected}"))
            continue
        if actual_malicious:
            commit = max(receiver.decided_cnt or 0, trigger_position)
            max_commit = max(max_commit, commit)

    if max_commit > COUNTERATTACK_START_POS:
        report(VerifierIssue(
            "VC302", subject,
            f"a flagging path commits at un-stuffed position {max_commit}, "
            f"after the counterattack deadline at position "
            f"{COUNTERATTACK_START_POS}: the malicious frame's control "
            "field would already have begun"))
    if overflow:
        issues.append(VerifierIssue(
            issues[-1].code, subject,
            f"... and {overflow} more issue(s) of this run elided"))

    stats = ModelCheckStats(
        subjects=[subject],
        ids_checked=NUM_STD_IDS,
        bits_fed=explorer.bits_fed,
        stuff_bits=explorer.stuff_bits,
        product_states=len(explorer.product_states),
        stuffing_contexts=len(explorer.stuffing_contexts),
        max_commit_position=max_commit,
    )
    return issues, stats


def model_check_plan(
    plan: VerificationPlan,
    feed_stuff_bits: bool = False,
) -> Tuple[List[VerifierIssue], ModelCheckStats]:
    """Model-check every deployed ECU's FSM of ``plan`` against the
    stuffed arbitration stream (``VC30x``).

    Returns the issue list plus aggregate :class:`ModelCheckStats`;
    ``feed_stuff_bits`` exposes the corrupted-receiver fault model for
    fixtures and docs.
    """
    issues: List[VerifierIssue] = []
    explorer = _Explorer()
    stats = ModelCheckStats()
    try:
        detection_sets = plan.effective_detection_sets()
    except ConfigurationError as exc:
        issues.append(VerifierIssue("VC300", "plan", str(exc)))
        return issues, stats
    for name in sorted(detection_sets):
        try:
            fsm = DetectionFsm(detection_sets[name])
        except ConfigurationError as exc:
            issues.append(VerifierIssue(
                "VC300", name,
                f"detection set cannot be compiled into an FSM: {exc}"))
            continue
        subject_issues, subject_stats = check_detection_stream(
            fsm, trigger_position=plan.trigger_position, subject=name,
            feed_stuff_bits=feed_stuff_bits, _explorer=explorer)
        issues.extend(subject_issues)
        stats.subjects.append(name)
        stats.ids_checked = subject_stats.ids_checked
        stats.max_commit_position = max(stats.max_commit_position,
                                        subject_stats.max_commit_position)
    stats.bits_fed = explorer.bits_fed
    stats.stuff_bits = explorer.stuff_bits
    stats.product_states = len(explorer.product_states)
    stats.stuffing_contexts = len(explorer.stuffing_contexts)
    return issues, stats


def model_check_plan_file(
    path: str,
    feed_stuff_bits: bool = False,
) -> Tuple[List[VerifierIssue], ModelCheckStats]:
    """Load a JSON plan from ``path`` and model-check it (``VC30x``)."""
    return model_check_plan(VerificationPlan.load(path),
                            feed_stuff_bits=feed_stuff_bits)


def verify_plan_with_model_check(plan: VerificationPlan,
                                 ) -> Tuple[VerificationReport,
                                            ModelCheckStats]:
    """The full static pipeline: :func:`~repro.analysis.verifier.
    verify_plan` plus the model checker, merged into one report."""
    from repro.analysis.verifier import verify_plan

    report = verify_plan(plan)
    issues, stats = model_check_plan(plan)
    report.checks_run.append("model-check")
    report.issues.extend(issues)
    return report, stats
