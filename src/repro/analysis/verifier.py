"""Semantic config verifier: statically prove a MichiCAN deployment sound.

Where the lint framework (:mod:`repro.analysis.lint`) checks *code*, this
module checks *configuration*: it loads a deployment plan — the ordered ECU
list 𝔼, declared attack IDs, the counterattack window, optional per-ECU
prefix tables — and proves the properties the runtime otherwise only
samples:

* every declared attack ID falls inside some deployed ECU's detection
  range 𝔻 (Definition IV.4), and the union of ranges covers the whole
  DoS-relevant ID space at or below max(𝔼) (VC210/VC211);
* compiled detection FSMs are well-formed binary prefix trees — complete
  transition tables, no unreachable states, decisions within the ID width,
  and exact agreement with set membership (VC201–VC204);
* declared prefix tables are overlap-free and cover exactly 𝔻
  (VC205/VC206);
* the counterattack window is consistent with the standard frame layout:
  it opens at un-stuffed position 1 SOF + 11 ID + 1 RTR = 13 and closes by
  the processing deadline at position 20 (VC212/VC213);
* every registered :class:`~repro.experiments.campaign.ScenarioSpec`
  factory is pickle-safe by reference, so the multiprocessing fan-out can
  rebuild it in a worker process (VC220/VC221);
* fault-injection plans are well-formed: schema-versioned, windows
  non-negative and ordered, kinds known, targets present where the layer
  needs them (VC230–VC233, :func:`verify_fault_plan`).

Issue codes are stable (``VC2xx``) so they can be suppressed/filtered the
same way lint codes are, and the report shape mirrors
:class:`~repro.analysis.lint.findings.LintReport`.
"""

from __future__ import annotations

import importlib
import json
import pickle
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.can.constants import (
    COUNTERATTACK_END_POS,
    COUNTERATTACK_START_POS,
    ID_BITS,
    MAX_STD_ID,
    NUM_STD_IDS,
)
from repro.can.intervals import IdIntervalSet
from repro.core.config import IvnConfig, Scenario
from repro.core.detection import ATTACK_DURATION_BITS
from repro.core.fsm import DetectionFsm, Verdict
from repro.errors import ConfigurationError

#: Bump when the verifier report dict layout changes incompatibly.
VERIFIER_REPORT_SCHEMA_VERSION = 1

#: The published VC issue inventory, ``(code, name, summary)`` — kept here
#: (next to the emitters) so ``repro lint --list-rules`` and the docs can
#: assert one authoritative catalogue.  VC3xx lives in
#: :mod:`repro.analysis.modelcheck` but is listed here for completeness.
VERIFIER_RULE_CATALOGUE: Tuple[Tuple[str, str, str], ...] = (
    ("VC200", "plan-load",
     "deployment plan fails to load or elaborate"),
    ("VC201", "fsm-table-complete",
     "detection FSM has a transition for every reachable (state, bit)"),
    ("VC202", "fsm-state-reachable",
     "every FSM state is reachable from the root"),
    ("VC203", "fsm-decision-depth",
     "FSM decisions land within the identifier bit width"),
    ("VC204", "fsm-set-agreement",
     "FSM classify agrees exactly with detection-set membership"),
    ("VC205", "prefix-overlap-free",
     "declared prefix table has no overlapping entries"),
    ("VC206", "prefix-covers-detection-set",
     "prefix table covers exactly the detection set"),
    ("VC210", "attack-id-covered",
     "every modeled attack ID falls inside a deployed detection range"),
    ("VC211", "id-space-covered",
     "deployed ranges cover the DoS-relevant ID space at or below "
     "max(\U0001d53c)"),
    ("VC212", "window-opens-at-13",
     "counterattack window opens at un-stuffed position 13"),
    ("VC213", "window-closes-by-deadline",
     "counterattack window closes by the processing deadline"),
    ("VC220", "scenario-resolvable",
     "scenario factory resolves by module+qualname in a fresh "
     "interpreter"),
    ("VC221", "scenario-picklable",
     "scenario factory and kwargs survive pickling for process fan-out"),
    ("VC230", "fault-plan-schema",
     "fault plan carries a supported schema version"),
    ("VC231", "fault-window-start",
     "fault activation windows start at a non-negative bit"),
    ("VC232", "fault-window-order",
     "fault activation windows are ordered (end > start)"),
    ("VC233", "fault-spec-shape",
     "fault specs are well-formed (name, kind, known layer targets)"),
    ("VC300", "modelcheck-elaboration",
     "plan could not be elaborated into FSMs for model checking"),
    ("VC301", "modelcheck-verdict",
     "FSM verdict mismatch on the bit-stuffed arbitration stream"),
    ("VC302", "modelcheck-commit-deadline",
     "a flagging path commits after the counterattack deadline"),
    ("VC303", "modelcheck-undecided",
     "FSM still undecided after all identifier bits"),
)


@dataclass(frozen=True)
class VerifierIssue:
    """One soundness violation found in a deployment plan.

    Attributes:
        code: Stable issue code (``VC2xx``).
        subject: What the issue is about (an ECU name, scenario name,
            ``"window"``, ``"fsm"``, ...).
        message: Human-readable description.
    """

    code: str
    subject: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "subject": self.subject,
                "message": self.message}

    def render(self) -> str:
        return f"{self.code} [{self.subject}] {self.message}"


@dataclass
class VerificationReport:
    """Outcome of verifying one plan: issues plus the checks that ran."""

    issues: List[VerifierIssue] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    schema_version: int = VERIFIER_REPORT_SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        return not self.issues

    def codes(self) -> List[str]:
        return sorted({issue.code for issue in self.issues})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "checks_run": list(self.checks_run),
            "issues": [issue.to_dict() for issue in self.issues],
        }

    def render_text(self) -> str:
        lines = [issue.render() for issue in self.issues]
        lines.append(
            f"{len(self.issues)} issue(s), "
            f"{len(self.checks_run)} check(s) run")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ------------------------------------------------------------------- plan


@dataclass(frozen=True)
class VerificationPlan:
    """A deployment plan: everything the verifier proves properties about.

    Attributes:
        ecu_ids: The CAN IDs of the deployed ECUs (𝔼).
        scenario: ``full`` or ``light`` deployment split.
        attack_ids: IDs the OEM declares attackers may use; each must be
            covered by some ECU's detection range.
        detection_ids: Optional per-ECU overrides (``name -> IDs``) of the
            Definition IV.4 ranges — the hand-patched firmware tables the
            verifier exists to audit.  ECUs without an entry keep their
            derived 𝔻.
        trigger_position: Un-stuffed frame position at which the
            counterattack fires.
        attack_duration: Dominant bits injected by the counterattack.
        prefixes: Optional per-ECU prefix tables (``name -> bit strings``)
            to check for overlap and completeness against that ECU's 𝔻.
        check_registry: Also verify the scenario registry's pickle-safety.
    """

    ecu_ids: Tuple[int, ...]
    scenario: Scenario = Scenario.FULL
    attack_ids: Tuple[int, ...] = ()
    trigger_position: int = COUNTERATTACK_START_POS
    attack_duration: int = ATTACK_DURATION_BITS
    detection_ids: Mapping[str, Tuple[int, ...]] = field(
        default_factory=dict)
    prefixes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    check_registry: bool = True

    def ivn(self) -> IvnConfig:
        return IvnConfig(ecu_ids=tuple(self.ecu_ids),
                         scenario=self.scenario)

    def effective_detection_sets(self) -> Dict[str, FrozenSet[int]]:
        """Per-ECU detection sets after overrides: what the deployed
        firmware would actually flag."""
        sets: Dict[str, FrozenSet[int]] = {}
        for config in self.ivn().ecu_configs():
            override = self.detection_ids.get(config.name)
            sets[config.name] = (frozenset(override) if override is not None
                                 else config.detection_ids)
        return sets

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerificationPlan":
        try:
            ecu_ids = tuple(int(x) for x in data["ecu_ids"])
        except KeyError:
            raise ConfigurationError(
                "verification plan needs an 'ecu_ids' list") from None
        prefixes = {
            str(name): tuple(str(bits) for bits in table)
            for name, table in dict(data.get("prefixes", {})).items()
        }
        detection_ids = {
            str(name): tuple(int(x) for x in ids)
            for name, ids in dict(data.get("detection_ids", {})).items()
        }
        return cls(
            ecu_ids=ecu_ids,
            scenario=Scenario(data.get("scenario", "full")),
            attack_ids=tuple(int(x) for x in data.get("attack_ids", ())),
            trigger_position=int(
                data.get("trigger_position", COUNTERATTACK_START_POS)),
            attack_duration=int(
                data.get("attack_duration", ATTACK_DURATION_BITS)),
            detection_ids=detection_ids,
            prefixes=prefixes,
            check_registry=bool(data.get("check_registry", True)),
        )

    @classmethod
    def load(cls, path: str) -> "VerificationPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"verification plan {path!r} is not valid JSON: {exc}"
                ) from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"verification plan {path!r} must be a JSON object")
        return cls.from_dict(data)


# ------------------------------------------------------- FSM table checks


def verify_fsm(fsm: DetectionFsm,
               subject: str = "fsm") -> List[VerifierIssue]:
    """Prove a compiled FSM is a sound binary prefix tree for its 𝔻.

    Checks VC201 (table completeness), VC202 (reachability), VC203
    (decision depth within the ID width) and VC204 (exact agreement of
    ``classify`` with detection-set membership; exhaustive for 11-bit
    identifiers, boundary-sampled for 29-bit).
    """
    issues: List[VerifierIssue] = []
    table = fsm._table  # noqa: SLF001 - the verifier audits internals
    num_states = len(table)

    reachable = {0}
    frontier = [0]
    while frontier:
        state = frontier.pop()
        successors = table[state]
        if len(successors) != 2:
            issues.append(VerifierIssue(
                "VC201", subject,
                f"state {state} has {len(successors)} successors, "
                "expected exactly 2 (bit 0 / bit 1)"))
            continue
        for bit, nxt in enumerate(successors):
            if isinstance(nxt, Verdict):
                continue
            if not isinstance(nxt, int) or not 0 <= nxt < num_states:
                issues.append(VerifierIssue(
                    "VC201", subject,
                    f"state {state} transition on bit {bit} is {nxt!r}, "
                    "expected a state index or a terminal Verdict"))
            elif nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)

    for state in range(num_states):
        if state not in reachable:
            issues.append(VerifierIssue(
                "VC202", subject,
                f"state {state} is unreachable from the root"))

    if issues:
        return issues  # depth/agreement runs need a well-formed table

    for can_id in _agreement_sample(fsm):
        try:
            verdict = fsm.classify(can_id)
        except AssertionError:
            issues.append(VerifierIssue(
                "VC203", subject,
                f"FSM fails to decide ID {can_id:#x} within "
                f"{fsm.id_bits} ID bits"))
            continue
        expected = (Verdict.MALICIOUS if can_id in fsm.detection_ids
                    else Verdict.BENIGN)
        if verdict is not expected:
            issues.append(VerifierIssue(
                "VC204", subject,
                f"FSM classifies ID {can_id:#x} as {verdict.value} but the "
                f"detection set says {expected.value}"))
    return issues


def _agreement_sample(fsm: DetectionFsm) -> Iterable[int]:
    """IDs to check classify-agreement on: every 11-bit ID, or interval
    boundaries (plus neighbours) for 29-bit identifier spaces."""
    if fsm.id_bits == ID_BITS:
        return range(NUM_STD_IDS)
    ceiling = (1 << fsm.id_bits) - 1
    sample = {0, ceiling}
    for lo, hi in fsm.detection_ids.intervals():
        for value in (lo - 1, lo, hi, hi + 1):
            if 0 <= value <= ceiling:
                sample.add(value)
    return sorted(sample)


# ------------------------------------------------------ prefix-table checks


def _prefix_interval(bits: str, id_bits: int) -> Tuple[int, int]:
    value = int(bits, 2)
    shift = id_bits - len(bits)
    return (value << shift, ((value + 1) << shift) - 1)


def verify_prefix_table(
    prefixes: Sequence[str],
    detection_ids: Iterable[int],
    subject: str,
    id_bits: int = ID_BITS,
) -> List[VerifierIssue]:
    """Prove a declared prefix table is overlap-free (VC205) and covers
    exactly the detection set 𝔻 (VC206)."""
    issues: List[VerifierIssue] = []
    cleaned: List[str] = []
    for bits in prefixes:
        if not bits or any(ch not in "01" for ch in bits) \
                or len(bits) > id_bits:
            issues.append(VerifierIssue(
                "VC205", subject,
                f"prefix {bits!r} is not a non-empty bit string of at "
                f"most {id_bits} bits"))
        else:
            cleaned.append(bits)

    for i, a in enumerate(cleaned):
        for b in cleaned[i + 1:]:
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            if longer.startswith(shorter):
                issues.append(VerifierIssue(
                    "VC205", subject,
                    f"prefixes {a!r} and {b!r} overlap: one is a prefix "
                    "of the other, so an ID would match twice"))

    covered = IdIntervalSet(
        _prefix_interval(bits, id_bits) for bits in cleaned)
    declared = IdIntervalSet((i, i) for i in detection_ids)
    for lo, hi in declared.intervals():
        if not covered.covers_range(lo, hi):
            missing = hi - lo + 1 - covered.count_in_range(lo, hi)
            issues.append(VerifierIssue(
                "VC206", subject,
                f"prefix table misses {missing} ID(s) of 𝔻 in "
                f"[{lo:#x}, {hi:#x}]"))
    for lo, hi in covered.intervals():
        extra = hi - lo + 1 - declared.count_in_range(lo, hi)
        if extra:
            issues.append(VerifierIssue(
                "VC206", subject,
                f"prefix table covers {extra} ID(s) outside 𝔻 in "
                f"[{lo:#x}, {hi:#x}]"))
    return issues


# ------------------------------------------------------- coverage checks


def verify_coverage(plan: VerificationPlan) -> List[VerifierIssue]:
    """Prove 𝔻-coverage: every declared attack ID is detected by some ECU
    (VC210) and the union of deployed ranges covers the whole DoS-relevant
    ID space at or below max(𝔼) (VC211)."""
    issues: List[VerifierIssue] = []
    ivn = plan.ivn()
    covered: FrozenSet[int] = frozenset().union(
        *plan.effective_detection_sets().values())

    for attack_id in sorted(set(plan.attack_ids)):
        if not 0 <= attack_id <= MAX_STD_ID:
            issues.append(VerifierIssue(
                "VC210", f"attack {attack_id:#x}",
                "declared attack ID is outside the 11-bit identifier "
                "space"))
        elif attack_id > ivn.highest_id:
            continue  # miscellaneous range: defended by design, not by 𝔻
        elif attack_id not in covered:
            issues.append(VerifierIssue(
                "VC210", f"attack {attack_id:#x}",
                "declared attack ID is in no deployed ECU's detection "
                "range 𝔻 — a frame with this ID wins arbitration "
                "undetected"))

    gap = [i for i in range(ivn.highest_id + 1) if i not in covered]
    if gap:
        issues.append(VerifierIssue(
            "VC211", "coverage",
            f"{len(gap)} ID(s) at or below max(𝔼)={ivn.highest_id:#x} "
            f"are in no detection range (first gap: {gap[0]:#x})"))
    return issues


# --------------------------------------------------------- window checks


def verify_window(plan: VerificationPlan) -> List[VerifierIssue]:
    """Prove the counterattack window matches the standard frame layout.

    The window must open exactly at un-stuffed position
    ``1 SOF + 11 ID + 1 RTR`` = :data:`COUNTERATTACK_START_POS` (firing
    earlier would stomp arbitration bits the FSM still needs; firing later
    lets the malicious frame's control field begin), and the injected
    dominant run must end by :data:`COUNTERATTACK_END_POS`, the position at
    which frame processing stops (VC212/VC213).
    """
    issues: List[VerifierIssue] = []
    expected_start = 1 + ID_BITS + 1  # SOF + identifier + RTR
    assert expected_start == COUNTERATTACK_START_POS
    if plan.trigger_position != expected_start:
        issues.append(VerifierIssue(
            "VC212", "window",
            f"counterattack trigger position {plan.trigger_position} is "
            f"inconsistent with the frame layout: 1 SOF + {ID_BITS} ID "
            f"+ 1 RTR puts the window start at {expected_start}"))
    if plan.attack_duration < 1:
        issues.append(VerifierIssue(
            "VC213", "window",
            f"counterattack duration {plan.attack_duration} injects no "
            "dominant bits"))
    elif plan.trigger_position + plan.attack_duration \
            > COUNTERATTACK_END_POS:
        issues.append(VerifierIssue(
            "VC213", "window",
            f"counterattack window [{plan.trigger_position}, "
            f"{plan.trigger_position + plan.attack_duration - 1}] runs "
            f"past the processing deadline at position "
            f"{COUNTERATTACK_END_POS}"))
    return issues


# -------------------------------------------------------- registry checks


def verify_registry(
        names: Optional[Sequence[str]] = None) -> List[VerifierIssue]:
    """Prove registered scenario factories survive the multiprocessing
    fan-out: resolvable by module+qualname in a fresh interpreter (VC220)
    and actually picklable (VC221)."""
    from repro.experiments.campaign import scenario_factory, scenario_names

    issues: List[VerifierIssue] = []
    for name in (names if names is not None else scenario_names()):
        factory = scenario_factory(name)
        qualname = getattr(factory, "__qualname__", "")
        module_name = getattr(factory, "__module__", "")
        if "<" in qualname or not module_name:
            issues.append(VerifierIssue(
                "VC220", name,
                f"factory {qualname or factory!r} is a lambda or local "
                "function; a spawned worker cannot import it by "
                "reference"))
            continue
        module = importlib.import_module(module_name)
        resolved = module
        for part in qualname.split("."):
            resolved = getattr(resolved, part, None)
            if resolved is None:
                break
        if resolved is not factory:
            issues.append(VerifierIssue(
                "VC220", name,
                f"factory {module_name}.{qualname} does not resolve back "
                "to the registered object; pickling by reference would "
                "rebuild something else"))
            continue
        try:
            pickle.dumps(factory)
        except Exception as exc:  # pickle raises a zoo of types
            issues.append(VerifierIssue(
                "VC221", name,
                f"factory is not picklable: {exc}"))
    return issues


# ----------------------------------------------------- fault-plan checks


def verify_fault_plan(data: Mapping[str, Any]) -> VerificationReport:
    """Statically verify a fault-injection plan document (``VC23x``).

    Works on the raw JSON dict (not a parsed
    :class:`~repro.faults.plan.FaultPlan`) so a malformed document yields a
    readable issue list instead of the first parse error: VC230 schema
    version present and supported, VC231 activation windows start at a
    non-negative bit, VC232 windows are ordered (``end > start``), VC233
    fault entries are well-formed (unique names, known kinds, targets
    where the layer needs them).
    """
    from repro.faults.plan import FAULT_KINDS, FAULT_PLAN_SCHEMA_VERSION

    report = VerificationReport()
    report.checks_run.append("fault-schema")
    version = data.get("schema_version")
    if version is None:
        report.issues.append(VerifierIssue(
            "VC230", "plan",
            "fault plan has no 'schema_version' field; a future layout "
            "change would be misread silently"))
    elif version != FAULT_PLAN_SCHEMA_VERSION:
        report.issues.append(VerifierIssue(
            "VC230", "plan",
            f"fault plan has schema version {version!r}; this build "
            f"reads version {FAULT_PLAN_SCHEMA_VERSION}"))

    report.checks_run.append("fault-entries")
    faults = data.get("faults", [])
    if not isinstance(faults, (list, tuple)):
        report.issues.append(VerifierIssue(
            "VC233", "plan", "'faults' must be a list of fault specs"))
        return report

    seen: Dict[str, int] = {}
    for index, entry in enumerate(faults):
        if not isinstance(entry, Mapping):
            report.issues.append(VerifierIssue(
                "VC233", f"faults[{index}]",
                "fault entry must be a JSON object"))
            continue
        name = entry.get("name") or f"faults[{index}]"
        subject = str(name)
        if not entry.get("name"):
            report.issues.append(VerifierIssue(
                "VC233", subject, "fault has no name"))
        elif name in seen:
            report.issues.append(VerifierIssue(
                "VC233", subject,
                f"duplicate fault name (first used at faults[{seen[name]}]);"
                " checkpoint keys and event streams need unique names"))
        else:
            seen[name] = index

        kind = entry.get("kind")
        known = kind in FAULT_KINDS
        if not known:
            available = ", ".join(sorted(FAULT_KINDS))
            report.issues.append(VerifierIssue(
                "VC233", subject,
                f"unknown fault kind {kind!r} (known: {available})"))
        elif FAULT_KINDS[kind][1] and not entry.get("target"):
            report.issues.append(VerifierIssue(
                "VC233", subject,
                f"fault kind {kind!r} needs a 'target' node name"))

        window = entry.get("window", {})
        if not isinstance(window, Mapping):
            report.issues.append(VerifierIssue(
                "VC231", subject, "'window' must be a JSON object"))
            continue
        start = window.get("start_bit", 0)
        end = window.get("end_bit")
        if not isinstance(start, int) or isinstance(start, bool) \
                or start < 0:
            report.issues.append(VerifierIssue(
                "VC231", subject,
                f"window start_bit {start!r} must be a non-negative "
                "bit time"))
        if end is not None:
            if not isinstance(end, int) or isinstance(end, bool) or end < 0:
                report.issues.append(VerifierIssue(
                    "VC231", subject,
                    f"window end_bit {end!r} must be a non-negative bit "
                    "time (or null for open-ended)"))
            elif isinstance(start, int) and not isinstance(start, bool) \
                    and start >= 0 and end <= start:
                report.issues.append(VerifierIssue(
                    "VC232", subject,
                    f"window [{start}, {end}) is empty or reversed; the "
                    "end bit must come after the start bit"))
    return report


def verify_fault_plan_file(path: str) -> VerificationReport:
    """Load a JSON fault plan from ``path`` and verify it (``VC23x``)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan {path!r} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"fault plan {path!r} must be a JSON object")
    return verify_fault_plan(data)


# ------------------------------------------------------------- top level


def verify_plan(plan: VerificationPlan) -> VerificationReport:
    """Run every applicable check on ``plan`` and return the report."""
    report = VerificationReport()

    try:
        ivn = plan.ivn()
        detection_sets = plan.effective_detection_sets()
    except ConfigurationError as exc:
        report.checks_run.append("plan")
        report.issues.append(VerifierIssue("VC200", "plan", str(exc)))
        return report

    for name in sorted(set(plan.detection_ids) - set(detection_sets)):
        report.issues.append(VerifierIssue(
            "VC200", name,
            f"detection_ids names unknown ECU {name!r}; deployed ECUs "
            f"are {sorted(detection_sets)}"))

    report.checks_run.append("coverage")
    report.issues.extend(verify_coverage(plan))

    report.checks_run.append("window")
    report.issues.extend(verify_window(plan))

    report.checks_run.append("fsm")
    for name in sorted(detection_sets):
        detection_ids = detection_sets[name]
        if not all(0 <= i <= MAX_STD_ID for i in detection_ids):
            report.issues.append(VerifierIssue(
                "VC200", name,
                "detection set contains IDs outside the 11-bit space"))
            continue
        fsm = DetectionFsm(detection_ids)
        report.issues.extend(verify_fsm(fsm, subject=name))

    if plan.prefixes:
        report.checks_run.append("prefixes")
        for name, table in sorted(plan.prefixes.items()):
            declared = detection_sets.get(name)
            if declared is None:
                report.issues.append(VerifierIssue(
                    "VC205", name,
                    f"prefix table names unknown ECU {name!r}; deployed "
                    f"ECUs are {sorted(detection_sets)}"))
                continue
            report.issues.extend(verify_prefix_table(
                table, declared, subject=name))

    if plan.check_registry:
        report.checks_run.append("registry")
        report.issues.extend(verify_registry())

    return report


def verify_plan_file(path: str) -> VerificationReport:
    """Load a JSON plan from ``path`` and verify it."""
    return verify_plan(VerificationPlan.load(path))


def detection_set_for(plan: VerificationPlan,
                      can_id: int) -> FrozenSet[int]:
    """The detection set 𝔻 the plan assigns to the ECU owning ``can_id``
    (override-aware)."""
    config = plan.ivn().ecu_config(can_id)
    return plan.effective_detection_sets()[config.name]
