"""Interprocedural concurrency-safety analysis (the RC4xx substrate).

The summarizer (:mod:`repro.analysis.callgraph`) records *local*
concurrency facts per function: lock acquisitions (``with <lock>:`` /
``<lock>.acquire()``) with the locks already held, thread/process spawn
sites with their ``target=``, ``signal.signal`` /
``loop.add_signal_handler`` registrations, coroutine-ness, potentially
blocking calls, and closure-shared reads/writes.  This module lifts those
facts over the resolved call graph into whole-program answers, mirroring
:mod:`repro.analysis.effects`:

* **thread roots** — resolved ``Thread(target=...)`` entry functions,
  their spawners (the spawning thread keeps running concurrently), and
  registered signal handlers;
* **locksets** — for every access reached from a root, the set of locks
  held along the (shortest) witness chain plus at the access itself —
  the Eraser-style discipline check behind RC401;
* **lock-order graph** — ``held -> acquired`` edges from every nested
  acquisition, intra- and interprocedural, whose cycles are RC405.

The five RC4xx rules built on top (see
:mod:`repro.analysis.lint.deep` for the catalogue):

========  ========================  ====================================
RC401     thread-shared-state       shared mutable state reached from
                                    >= 2 thread roots with no common lock
RC402     async-blocking-call       a blocking call reachable from an
                                    ``async def`` without await/executor
RC403     signal-unsafe-handler     a non-reentrant operation (lock
                                    acquire, I/O) reachable from a
                                    registered signal handler
RC404     fork-lock-safety          a process spawn concurrent with a
                                    live non-daemon thread that takes a
                                    tracked lock (fork can inherit a
                                    forever-held lock)
RC405     lock-order-cycle          a cycle in the lock-acquisition
                                    order graph (deadlock potential)
========  ========================  ====================================

Approximations (deliberate, documented here once)
-------------------------------------------------

* Locksets are computed along the BFS *shortest* chain from each root —
  a lock held only on a longer alternative path is not credited.  This
  errs toward reporting, never toward silence.
* RC401 sees **write/write** conflicts for module globals and ``self``
  attributes (reads of those are not summarized), and additionally
  **read/write** conflicts for closure-shared variables, whose reads
  *are* recorded (they are exactly the heartbeat-thread pattern the
  campaign service uses).
* ``self``-attribute locations key on the class *name*: two same-named
  classes in different files would merge (none do here).
* RC402 skips ``"file"``-category sinks by policy: journal/checkpoint
  appends are short bounded writes the service performs inline by
  design, and RC403/RC304 police file effects on their own axes.

The machine-readable report (``repro lint --deep --concurrency-report``)
is schema-versioned and loads with the same silent degradation
discipline as the purity manifest: corrupted or version-skewed files
read as ``None``, never as an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    CONCURRENCY_SCHEMA_VERSION,
    SUMMARY_SCHEMA_VERSION,
    CallGraph,
    CallSite,
    NodeKey,
    Project,
)
from repro.analysis.lint.findings import Finding

#: Bump when the concurrency report layout changes incompatibly.
CONCURRENCY_REPORT_SCHEMA_VERSION = 1

#: Blocking-sink categories that RC402 flags (``"file"`` excluded by
#: policy — see the module docstring).
RC402_CATEGORIES: FrozenSet[str] = frozenset(
    {"sleep", "net", "wait", "lock", "join", "proc"})

#: Calls that are async-signal-safe by contract, exempt from RC403 even
#: though they are classified as effect sinks elsewhere.
_SIGNAL_SAFE_CALLS: FrozenSet[str] = frozenset({"os._exit()"})


@dataclass(frozen=True)
class ThreadRoot:
    """One concurrent entry point for the lockset analysis.

    ``kind`` is ``"target"`` (a resolved ``Thread(target=...)``),
    ``"spawner"`` (the function that started the thread — the spawning
    thread runs concurrently with it) or ``"handler"`` (a registered
    signal handler, which preempts the main thread).
    """

    label: str
    node: NodeKey
    kind: str


@dataclass(frozen=True)
class _Access:
    """One shared-state access attributed to a thread root."""

    root: str
    write: bool
    lockset: FrozenSet[str]
    path: str
    line: int
    column: int
    qualname: str
    display: str


class ConcurrencyAnalysis:
    """Whole-program concurrency answers over a resolved call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.project: Project = graph.project

    # ----------------------------------------------------------- resolution

    def _resolve_ref(self, path: str, enclosing: str,
                     parts: Sequence[str], line: int) -> List[NodeKey]:
        """Resolve a function *reference* (spawn target, handler) exactly
        like a call through the same dotted chain."""
        if not parts:
            return []
        summary = self.project.summaries.get(path)
        if summary is None:
            return []
        site = CallSite(parts=tuple(parts), line=line)
        return self.graph._resolve_call(path, summary, enclosing, site)

    # ------------------------------------------------------------ the roots

    def spawn_sites(self, kinds: FrozenSet[str],
                    ) -> List[Tuple[NodeKey, Any, List[NodeKey]]]:
        """Every ``(spawner node, SpawnSite, resolved targets)`` whose
        spawn kind is in ``kinds``."""
        found: List[Tuple[NodeKey, Any, List[NodeKey]]] = []
        for path, summary in sorted(self.project.summaries.items()):
            for qualname, fn in summary.functions.items():
                for spawn in fn.spawns:
                    if spawn.kind not in kinds:
                        continue
                    targets = self._resolve_ref(
                        path, qualname, spawn.target, spawn.line)
                    found.append(((path, qualname), spawn, targets))
        return found

    def handler_sites(self) -> List[Tuple[NodeKey, Any, List[NodeKey]]]:
        """Every ``(registering node, HandlerSite, resolved handlers)``."""
        found: List[Tuple[NodeKey, Any, List[NodeKey]]] = []
        for path, summary in sorted(self.project.summaries.items()):
            for qualname, fn in summary.functions.items():
                for handler in fn.handlers:
                    targets = self._resolve_ref(
                        path, qualname, handler.handler, handler.line)
                    found.append(((path, qualname), handler, targets))
        return found

    def thread_roots(self) -> List[ThreadRoot]:
        """RC401's concurrent entry points (see :class:`ThreadRoot`).

        Signal handlers are *not* included here — their hazard axis is
        reentrancy (RC403), and the registering function already stands
        in for the main thread when it also spawned the thread.
        """
        roots: List[ThreadRoot] = []
        seen: Set[NodeKey] = set()

        def add(label: str, node: NodeKey, kind: str) -> None:
            if node not in seen and self.project.function(node) is not None:
                seen.add(node)
                roots.append(ThreadRoot(label=label, node=node, kind=kind))

        for spawner, _spawn, targets in self.spawn_sites(
                frozenset({"thread"})):
            for target in targets:
                add(f"thread:{target[1]}", target, "target")
            add(f"main:{spawner[1]}", spawner, "spawner")
        return roots

    # ------------------------------------------------------------- locksets

    @staticmethod
    def _chain_locks(
        parents: Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]],
        node: NodeKey,
        memo: Dict[NodeKey, FrozenSet[str]],
    ) -> FrozenSet[str]:
        """Locks held at every call edge along the witness chain."""
        cached = memo.get(node)
        if cached is not None:
            return cached
        held: Set[str] = set()
        cursor = parents.get(node)
        guard = 0
        while cursor is not None and guard < 10_000:
            guard += 1
            parent, site = cursor
            held.update(site.locks)
            prior = memo.get(parent)
            if prior is not None:
                held.update(prior)
                break
            cursor = parents.get(parent)
        result = frozenset(held)
        memo[node] = result
        return result

    def _location(self, node: NodeKey, mutation: Any,
                  ) -> Optional[Tuple[Tuple[str, ...], str]]:
        """(location key, display name) for a shared-state access, or
        ``None`` when the access is not attributable to an identity that
        two threads could alias (or is itself a lock)."""
        target = mutation.target
        if "lock" in mutation.root.lower():
            return None  # locks are the discipline, not the data
        path, qualname = node
        if mutation.scope == "global":
            summary = self.project.summaries.get(path)
            module = (summary.module if summary is not None
                      and summary.module else
                      os.path.splitext(os.path.basename(path))[0])
            return (("global", module, mutation.root),
                    f"{module}.{target}")
        if mutation.scope == "closure":
            top = qualname.split(".", 1)[0]
            return (("closure", path, top, mutation.root),
                    f"{top}'s {mutation.root}")
        if mutation.scope == "param" and mutation.root in ("self", "cls") \
                and "." in qualname:
            cls = qualname.split(".", 1)[0]
            rest = target.split(".", 2)
            if len(rest) < 2:
                return None
            attr = rest[1]
            for marker in ("[", "("):
                attr = attr.split(marker, 1)[0]
            return (("attr", cls, attr), f"{cls}.{attr}")
        return None

    def _collect_accesses(
        self, roots: Sequence[ThreadRoot],
    ) -> Tuple[Dict[Tuple[str, ...], List[_Access]],
               Dict[str, Mapping[NodeKey,
                                 Optional[Tuple[NodeKey, CallSite]]]]]:
        accesses: Dict[Tuple[str, ...], List[_Access]] = {}
        closures: Dict[str, Mapping[NodeKey,
                                    Optional[Tuple[NodeKey,
                                                   CallSite]]]] = {}
        for root in roots:
            # Strong edges only: a name-fallback edge (`conn.send` matched
            # to some unrelated class's `send`) fabricates aliasing between
            # objects no two threads actually share.
            parents = self.graph.reachable_from([root.node],
                                                strong_only=True)
            closures[root.label] = parents
            memo: Dict[NodeKey, FrozenSet[str]] = {}
            seen: Set[Tuple[str, str, int, str]] = set()
            for node in parents:
                fn = self.project.function(node)
                if fn is None:
                    continue
                path, qualname = node
                for site, write in (
                        [(m, True) for m in fn.mutations]
                        + [(r, False) for r in fn.shared_reads]):
                    located = self._location(node, site)
                    if located is None:
                        continue
                    key, display = located
                    dedupe = (root.label, path, site.line, display)
                    if dedupe in seen:
                        continue
                    seen.add(dedupe)
                    lockset = self._chain_locks(parents, node, memo) \
                        | frozenset(site.locks)
                    accesses.setdefault(key, []).append(_Access(
                        root=root.label, write=write,
                        lockset=frozenset(lockset), path=path,
                        line=site.line, column=site.column,
                        qualname=qualname, display=display))
        return accesses, closures

    # ------------------------------------------------------- RC401 (races)

    def race_findings(self) -> List[Finding]:
        """Eraser-style lockset check over every thread-root closure."""
        roots = self.thread_roots()
        if len(roots) < 2:
            return []
        accesses, closures = self._collect_accesses(roots)
        findings: List[Finding] = []
        for key in sorted(accesses):
            group = accesses[key]
            labels = {access.root for access in group}
            if len(labels) < 2:
                continue
            writes = [access for access in group if access.write]
            if not writes:
                continue
            common = frozenset.intersection(
                *[access.lockset for access in group])
            if common:
                continue
            anchor = min(writes, key=lambda a: (a.path, a.line, a.column))
            parents = closures[anchor.root]
            chain = _chain_text(self.graph, parents,
                                (anchor.path, anchor.qualname))
            others = sorted(labels - {anchor.root})
            held = ("{" + ", ".join(sorted(anchor.lockset)) + "}"
                    if anchor.lockset else "no lock")
            findings.append(Finding(
                code="RC401", rule="thread-shared-state",
                message=(f"shared state {anchor.display} is written from "
                         f"thread root {anchor.root} holding {held} and "
                         f"also accessed from {', '.join(others)} with no "
                         f"common lock: {chain}; guard every access with "
                         "one lock or confine the state to a single "
                         "thread"),
                path=anchor.path, line=anchor.line, column=anchor.column))
        return findings

    # -------------------------------------------- RC402 (async + blocking)

    def _strongly_resolved_lines(self, node: NodeKey) -> Set[int]:
        """Lines of ``node`` whose call resolved to project code by
        import/class structure (not the name-based method fallback) —
        blocking there is the callee's to report, at its own sink."""
        lines: Set[int] = set()
        for callee, site in self.graph.edges.get(node, ()):
            if (node, callee, site.line) not in self.graph.weak_edges:
                lines.add(site.line)
        return lines

    def async_blocking_findings(self) -> List[Finding]:
        roots = sorted(
            (path, qualname)
            for path, summary in self.project.summaries.items()
            for qualname, fn in summary.functions.items() if fn.is_async)
        if not roots:
            return []
        parents = self.graph.reachable_from(roots)
        findings: List[Finding] = []
        for node in sorted(parents):
            fn = self.project.function(node)
            if fn is None or not fn.blocking_sinks:
                continue
            path, _ = node
            strong = self._strongly_resolved_lines(node)
            chain: Optional[str] = None
            for sink in fn.blocking_sinks:
                if sink.awaited or sink.category not in RC402_CATEGORIES:
                    continue
                if sink.line in strong:
                    continue
                if chain is None:
                    chain = _chain_text(self.graph, parents, node)
                findings.append(Finding(
                    code="RC402", rule="async-blocking-call",
                    message=(f"blocking call {sink.description} "
                             f"({sink.category}) is reachable from an "
                             f"async handler without await or executor "
                             f"hand-off: {chain}; await an async "
                             "equivalent or run it in an executor"),
                    path=path, line=sink.line, column=sink.column))
        return findings

    # ------------------------------------------- RC403 (signal reentrancy)

    def signal_safety_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for _registrar, handler, targets in self.handler_sites():
            for target in sorted(set(targets)):
                parents = self.graph.reachable_from([target])
                for node in sorted(parents):
                    fn = self.project.function(node)
                    if fn is None:
                        continue
                    path, _ = node
                    sites = (
                        [(ls.line, 0, f"acquire of {ls.name}")
                         for ls in fn.lock_sites]
                        + [(s.line, s.column, s.description)
                           for s in fn.io_sinks
                           # os._exit is THE async-signal-safe exit —
                           # no flushing, no allocation, no locks.
                           if s.description not in _SIGNAL_SAFE_CALLS])
                    chain: Optional[str] = None
                    for line, column, description in sites:
                        key = (path, line, column)
                        if key in seen:
                            continue
                        seen.add(key)
                        if chain is None:
                            chain = _chain_text(self.graph, parents, node)
                        findings.append(Finding(
                            code="RC403", rule="signal-unsafe-handler",
                            message=(f"non-reentrant operation "
                                     f"{description} is reachable from "
                                     f"signal handler {target[1]} "
                                     f"({handler.signal_name}): {chain}; "
                                     "handlers must only set a flag and "
                                     "return — defer the work to the "
                                     "main loop"),
                            path=path, line=line, column=column))
        return findings

    # ----------------------------------------------- RC404 (fork vs locks)

    def _reverse_closure(self, node: NodeKey,
                         reverse: Mapping[NodeKey, List[NodeKey]],
                         ) -> Set[NodeKey]:
        seen: Set[NodeKey] = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for caller in reverse.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen

    def fork_safety_findings(self) -> List[Finding]:
        """A process spawn and a lock-taking **non-daemon** thread spawn
        that share a caller: the fork can inherit a lock held by a thread
        that does not exist in the child, deadlocking it forever.
        Daemon threads are exempt — the supervised worker pool's daemon
        heartbeat pattern is fork-safe because the child re-execs its own
        loop and never touches the parent's lock."""
        thread_spawns = [
            (spawner, spawn, targets)
            for spawner, spawn, targets in self.spawn_sites(
                frozenset({"thread"}))
            if spawn.daemon is not True
        ]
        if not thread_spawns:
            return []
        # Which non-daemon thread targets take a tracked lock?
        risky: List[Tuple[NodeKey, Any, str]] = []
        for spawner, spawn, targets in thread_spawns:
            for target in targets:
                parents = self.graph.reachable_from([target])
                for node in parents:
                    fn = self.project.function(node)
                    if fn is not None and fn.lock_sites:
                        risky.append(
                            (spawner, spawn, fn.lock_sites[0].name))
                        break
                else:
                    continue
                break
        if not risky:
            return []
        reverse: Dict[NodeKey, List[NodeKey]] = {}
        for caller, out_edges in self.graph.edges.items():
            for callee, _site in out_edges:
                reverse.setdefault(callee, []).append(caller)
        findings: List[Finding] = []
        for spawner, spawn, _targets in self.spawn_sites(
                frozenset({"process", "fork"})):
            ancestors = self._reverse_closure(spawner, reverse)
            for thread_spawner, thread_spawn, lock in risky:
                common = ancestors & self._reverse_closure(
                    thread_spawner, reverse)
                if not common:
                    continue
                origin = min(common)
                findings.append(Finding(
                    code="RC404", rule="fork-lock-safety",
                    message=(f"process spawn {spawn.description} can run "
                             f"while non-daemon thread started at "
                             f"{thread_spawner[1]}:{thread_spawn.line} "
                             f"holds {lock} (both reachable from "
                             f"{origin[1]}); the child would inherit a "
                             "lock no thread will ever release — make "
                             "the thread a daemon joined before "
                             "spawning, or spawn processes first"),
                    path=spawner[0], line=spawn.line,
                    column=spawn.column))
                break
        return findings

    # ------------------------------------------------- RC405 (lock order)

    def lock_order_edges(self) -> Dict[Tuple[str, str],
                                       Tuple[str, int, str]]:
        """``(held, acquired) -> (path, line, qualname)`` evidence map.

        Intraprocedural edges come from each :class:`LockSite`'s ``held``
        tuple; interprocedural edges connect every lock held at a call
        site to every lock the callee's closure can acquire.
        """
        acquired: Dict[NodeKey, Set[str]] = {}
        for path, summary in self.project.summaries.items():
            for qualname, fn in summary.functions.items():
                acquired[(path, qualname)] = {
                    ls.name for ls in fn.lock_sites}
        changed = True
        while changed:  # fixpoint: closure-acquired lock names
            changed = False
            for caller, out_edges in self.graph.edges.items():
                current = acquired.setdefault(caller, set())
                for callee, _site in out_edges:
                    for name in acquired.get(callee, ()):
                        if name not in current:
                            current.add(name)
                            changed = True
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        for path, summary in sorted(self.project.summaries.items()):
            for qualname, fn in summary.functions.items():
                for ls in fn.lock_sites:
                    for held in ls.held:
                        if held != ls.name:
                            edges.setdefault(
                                (held, ls.name),
                                (path, ls.line, qualname))
                for callee, site in self.graph.edges.get(
                        (path, qualname), ()):
                    if not site.locks:
                        continue
                    for held in site.locks:
                        for name in acquired.get(callee, ()):
                            if name != held:
                                edges.setdefault(
                                    (held, name),
                                    (path, site.line, qualname))
        return edges

    def lock_order_findings(self) -> List[Finding]:
        edges = self.lock_order_edges()
        adjacency: Dict[str, List[str]] = {}
        for held, name in edges:
            adjacency.setdefault(held, []).append(name)
        cycles = _simple_cycles(adjacency)
        findings: List[Finding] = []
        for cycle in cycles:
            steps = []
            for i, lock in enumerate(cycle):
                held, acquired_lock = lock, cycle[(i + 1) % len(cycle)]
                path, line, qualname = edges[(held, acquired_lock)]
                steps.append(f"{acquired_lock} acquired under {held} in "
                             f"{qualname} ({os.path.basename(path)}:"
                             f"{line})")
            anchor_path, anchor_line, _ = edges[(cycle[0], cycle[1])]
            order = " -> ".join(cycle + (cycle[0],))
            findings.append(Finding(
                code="RC405", rule="lock-order-cycle",
                message=(f"lock-acquisition-order cycle {order}: "
                         f"{'; '.join(steps)}; two threads taking these "
                         "locks in opposite orders deadlock — pick one "
                         "global acquisition order"),
                path=anchor_path, line=anchor_line))
        return findings

    # ------------------------------------------------------------- summary

    def findings(self, codes: Optional[Sequence[str]] = None,
                 ) -> List[Finding]:
        """All RC4xx findings (optionally restricted to ``codes``)."""
        wanted = set(codes) if codes is not None else {
            "RC401", "RC402", "RC403", "RC404", "RC405"}
        results: List[Finding] = []
        if "RC401" in wanted:
            results.extend(self.race_findings())
        if "RC402" in wanted:
            results.extend(self.async_blocking_findings())
        if "RC403" in wanted:
            results.extend(self.signal_safety_findings())
        if "RC404" in wanted:
            results.extend(self.fork_safety_findings())
        if "RC405" in wanted:
            results.extend(self.lock_order_findings())
        return results


# ------------------------------------------------------------------ helpers


def _chain_text(
    graph: CallGraph,
    parents: Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]],
    node: NodeKey,
) -> str:
    chain = CallGraph.call_chain(parents, node)
    return " -> ".join(qualname for _, qualname in chain)


def _simple_cycles(adjacency: Mapping[str, List[str]],
                   ) -> List[Tuple[str, ...]]:
    """Every elementary cycle of length >= 2, each reported once in its
    canonical rotation (starting at its smallest lock name).  The lock
    graphs here are tiny (a handful of named locks), so a bounded DFS is
    plenty."""
    cycles: Set[Tuple[str, ...]] = set()

    def visit(start: str, current: str, path: List[str],
              on_path: Set[str]) -> None:
        for nxt in sorted(adjacency.get(current, ())):
            if nxt == start and len(path) >= 2:
                pivot = min(range(len(path)), key=lambda i: path[i])
                cycles.add(tuple(path[pivot:] + path[:pivot]))
            elif nxt not in on_path and nxt > start and len(path) < 16:
                on_path.add(nxt)
                visit(start, nxt, path + [nxt], on_path)
                on_path.discard(nxt)

    for start in sorted(adjacency):
        visit(start, start, [start], {start})
    return sorted(cycles)


# ------------------------------------------------------------------- report


def build_report(graph: CallGraph,
                 findings: Sequence[Finding],
                 suppressed: int = 0) -> Dict[str, Any]:
    """The machine-readable concurrency report (schema-versioned)."""
    analysis = ConcurrencyAnalysis(graph)
    roots = analysis.thread_roots()
    handlers = [
        {"signal": handler.signal_name, "path": target[0],
         "qualname": target[1], "line": handler.line}
        for _registrar, handler, targets in analysis.handler_sites()
        for target in sorted(set(targets))
    ]
    spawns = [
        {"path": spawner[0], "qualname": spawner[1], "line": spawn.line,
         "kind": spawn.kind, "target": list(spawn.target),
         "daemon": spawn.daemon}
        for spawner, spawn, _targets in analysis.spawn_sites(
            frozenset({"thread", "process", "fork"}))
    ]
    lock_edges = [
        {"held": held, "acquired": name, "path": path, "line": line,
         "qualname": qualname}
        for (held, name), (path, line, qualname)
        in sorted(analysis.lock_order_edges().items())
    ]
    return {
        "schema_version": CONCURRENCY_REPORT_SCHEMA_VERSION,
        "summary_schema_version": SUMMARY_SCHEMA_VERSION,
        "concurrency_schema_version": CONCURRENCY_SCHEMA_VERSION,
        "thread_roots": [
            {"label": root.label, "path": root.node[0],
             "qualname": root.node[1], "kind": root.kind}
            for root in roots
        ],
        "signal_handlers": handlers,
        "spawns": spawns,
        "lock_order_edges": lock_edges,
        "findings": [finding.to_dict() for finding in findings],
        "suppressed": suppressed,
    }


def save_report(report: Mapping[str, Any], path: str) -> None:
    """Atomic write (tmp + rename), creating parent directories."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".concurrency-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def load_report(path: str) -> Optional[Dict[str, Any]]:
    """Read a report; ``None`` for missing, corrupted or version-skewed
    files (silent degradation, like the purity manifest)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) \
            or data.get("schema_version") != \
            CONCURRENCY_REPORT_SCHEMA_VERSION \
            or data.get("summary_schema_version") != \
            SUMMARY_SCHEMA_VERSION \
            or data.get("concurrency_schema_version") != \
            CONCURRENCY_SCHEMA_VERSION:
        return None
    return data
