"""CAN worst-case response-time analysis (Davis, Burns, Bril & Lukkien).

The paper grounds its safety argument in CAN schedulability: periodic
messages have deadlines (>= 10 ms for the fastest), and MichiCAN's bus-off
fight must fit inside them.  This module implements the classic fixed-point
analysis the paper cites ([49]) and extends it with an *attack-burst* term:
the counterattack occupies the bus like one long blocking event, so its
impact on every message's worst-case response time is computable directly.

All quantities are in bit times unless suffixed otherwise.  Priority order
is the CAN ID (lower wins), exactly as arbitration enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.can.bitstream import max_stuff_bits
from repro.can.constants import IFS_BITS
from repro.dbc.types import CommunicationMatrix, Message
from repro.errors import ConfigurationError

#: Fixed frame overhead for an 11-bit-ID data frame: SOF..EOF = 44 bits.
FRAME_OVERHEAD_BITS = 44


def worst_case_frame_bits(dlc: int) -> int:
    """Worst-case transmission time C_m of one frame, including worst-case
    stuffing and the inter-frame space.

    >>> worst_case_frame_bits(8)
    135
    """
    if not 0 <= dlc <= 8:
        raise ConfigurationError(f"DLC must be 0..8, got {dlc}")
    return FRAME_OVERHEAD_BITS + 8 * dlc + max_stuff_bits(dlc) + IFS_BITS


@dataclass(frozen=True)
class ResponseTime:
    """Worst-case response analysis result for one message."""

    can_id: int
    transmission_bits: int
    blocking_bits: int
    queuing_bits: int
    response_bits: int
    deadline_bits: int
    converged: bool

    @property
    def schedulable(self) -> bool:
        return self.converged and self.response_bits <= self.deadline_bits

    @property
    def slack_bits(self) -> int:
        return self.deadline_bits - self.response_bits


def _sorted_by_priority(messages: Sequence[Message]) -> List[Message]:
    return sorted(messages, key=lambda m: m.can_id)


def analyze(
    matrix: CommunicationMatrix,
    bus_speed: int,
    deadlines_ms: Optional[Dict[int, float]] = None,
    extra_blocking_bits: int = 0,
    max_iterations: int = 300,
) -> Dict[int, ResponseTime]:
    """Worst-case response times for every periodic message of ``matrix``.

    Args:
        deadlines_ms: Per-ID deadline overrides; default is the period
            (implicit-deadline assumption, standard for CAN).
        extra_blocking_bits: An additional blocking term applied to every
            message — e.g. a MichiCAN bus-off fight or a miscellaneous-
            attack frame.
        max_iterations: Fixed-point iteration bound; non-convergence (an
            overloaded bus) is reported, not raised.
    """
    messages = _sorted_by_priority(matrix.periodic_messages())
    deadlines_ms = deadlines_ms or {}
    results: Dict[int, ResponseTime] = {}

    for index, message in enumerate(messages):
        c_m = worst_case_frame_bits(message.dlc)
        t_m = message.period_bits(bus_speed)
        deadline = deadlines_ms.get(message.can_id)
        d_m = (round(deadline * 1e-3 * bus_speed)
               if deadline is not None else t_m)

        # Blocking: the longest lower-priority frame that may already be on
        # the wire, plus any injected burst.
        lower = messages[index + 1:]
        b_m = max((worst_case_frame_bits(m.dlc) for m in lower), default=0)
        b_m = max(b_m, extra_blocking_bits)

        higher = messages[:index]
        # Fixed-point iteration on the queuing delay w.
        w = b_m
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                -(-(w + 1) // m.period_bits(bus_speed))  # ceil
                * worst_case_frame_bits(m.dlc)
                for m in higher
            )
            w_next = b_m + interference
            if w_next == w:
                converged = True
                break
            if w_next > d_m * 4:  # hopeless: bail out early
                w = w_next
                break
            w = w_next

        response = w + c_m
        results[message.can_id] = ResponseTime(
            can_id=message.can_id,
            transmission_bits=c_m,
            blocking_bits=b_m,
            queuing_bits=w,
            response_bits=response,
            deadline_bits=d_m,
            converged=converged,
        )
    return results


def is_schedulable(
    matrix: CommunicationMatrix,
    bus_speed: int,
    deadlines_ms: Optional[Dict[int, float]] = None,
    extra_blocking_bits: int = 0,
) -> bool:
    """True iff every periodic message meets its deadline."""
    return all(
        r.schedulable
        for r in analyze(matrix, bus_speed, deadlines_ms,
                         extra_blocking_bits).values()
    )


def deadline_misses_under_attack(
    matrix: CommunicationMatrix,
    bus_speed: int,
    busoff_fight_bits: int,
    deadlines_ms: Optional[Dict[int, float]] = None,
) -> List[int]:
    """IDs that miss deadlines when a bus-off fight blocks the bus.

    This is the analytic form of the paper's Sec. V-C feasibility check:
    with one attacker (~1250 bits) nothing with a 10 ms deadline at
    500 kbit/s (5000 bits) misses; with five attackers (~5800 bits)
    something does.
    """
    results = analyze(matrix, bus_speed, deadlines_ms,
                      extra_blocking_bits=busoff_fight_bits)
    return sorted(
        can_id for can_id, r in results.items() if not r.schedulable
    )


def max_tolerable_fight_bits(
    matrix: CommunicationMatrix,
    bus_speed: int,
    deadlines_ms: Optional[Dict[int, float]] = None,
    upper_bound: int = 50_000,
) -> int:
    """Largest bus-off fight the message set absorbs without a miss
    (binary search over the extra-blocking term)."""
    low, high = 0, upper_bound
    if not is_schedulable(matrix, bus_speed, deadlines_ms, 0):
        return 0
    while low < high:
        mid = (low + high + 1) // 2
        if is_schedulable(matrix, bus_speed, deadlines_ms, mid):
            low = mid
        else:
            high = mid - 1
    return low
