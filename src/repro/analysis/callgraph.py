"""Whole-program call graph over a Python source tree (pure stdlib).

The per-file lint rules (:mod:`repro.analysis.lint.rules`) can only see one
module at a time, so a wall-clock read *two call hops below* the simulator
step loop passes them.  This module closes that hole: it parses every file
of the scanned tree exactly once into a compact :class:`FileSummary`
(imports, classes, per-function call/raise/sink facts), resolves calls
across module boundaries into a :class:`CallGraph`, and answers the two
whole-program questions the deep rules need:

* **reachability** — which functions are transitively callable from the
  engine entry points (the simulator step loop, the firmware ISR), with
  the call chain that proves it (:meth:`CallGraph.reachable_from`);
* **exception escape** — which exception types can propagate out of a
  function uncaught, tracked back to the raise sites that originate them
  (:meth:`CallGraph.escaping_exceptions`).

Summaries are cached on disk keyed by ``(mtime_ns, size)`` via
:class:`AnalysisCache`, so repeated ``repro lint`` runs only re-parse the
files that actually changed.  The cache is advisory: a corrupted, stale or
unwritable cache degrades to a cold run, never to an error.

Resolution policy (documented over-approximation)
-------------------------------------------------

Static call resolution in Python is necessarily approximate.  The builder
resolves, in order: bare names (nested siblings, module functions, local
classes, ``from``-imports), ``self.m()`` / ``cls.m()`` through the project
class hierarchy (the defining class, its ancestors *and* its descendants —
virtual dispatch), ``alias.f()`` through ``import``/``from`` module
aliases, and ``Cls.m()`` through known class names.  Any other attribute
call ``obj.m()`` falls back to *every* project method named ``m`` — a safe
over-approximation — except when ``m`` shadows a builtin container/str
method (``append``, ``get``, ``items``, ...), which would drown the graph
in false edges.  Calls through bound-method variables, subscripts and
lambdas are statically unresolvable and produce no edge; the engine's
``step()`` uses plain attribute calls precisely so its fan-out to node
``output``/``observe`` implementations stays visible here.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.rules import (
    _DATETIME_FACTORIES,
    _GLOBAL_RNG_FUNCS,
    _TIME_FUNCS,
    _dotted_parts,
)
from repro.analysis.lint.suppressions import SuppressionIndex

#: Bump when the FileSummary layout changes incompatibly: cached summaries
#: with another version are re-parsed, never misread.
#: v2: per-function effect facts (global/param mutation sites, I/O and
#: ambient-state sinks) and per-file registration sites / module globals.
#: v3: per-function concurrency facts (named locksets on call/mutation
#: sites, ``with <lock>:`` acquisition sites, thread/process spawn sites,
#: signal-handler registrations, blocking sinks, ``async def`` flags).
SUMMARY_SCHEMA_VERSION = 3
#: Bump when the effect/purity *interpretation* of the summaries changes
#: (new effect kinds, changed fixpoint semantics) without the summary
#: layout itself changing.  Folded into :func:`rules_cache_key` and the
#: purity manifest so upgraded analyzers never replay stale verdicts.
EFFECT_SCHEMA_VERSION = 1
#: Bump when the concurrency *interpretation* of the summaries changes
#: (thread-root discovery, lockset semantics, blocking-sink policy)
#: without the summary layout itself changing.  Folded into
#: :func:`rules_cache_key` and the concurrency report so upgraded
#: analyzers never replay stale RC4xx findings.
CONCURRENCY_SCHEMA_VERSION = 1
#: Bump when the on-disk cache file layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Default on-disk location of the analysis cache (relative to the CWD).
DEFAULT_CACHE_PATH = os.path.join(".repro_cache", "lint.json")

#: Guard marker meaning "catches every exception" (a bare ``except:``).
CATCH_ALL = "*"

#: Method names that shadow builtin container/str methods: excluded from
#: the name-based fallback so ``results.append(x)`` does not edge into a
#: project class that happens to define ``append``.
_BUILTIN_METHOD_NAMES: FrozenSet[str] = frozenset(
    name
    for typ in (dict, list, set, frozenset, tuple, str, bytes, bytearray)
    for name in dir(typ)
    if not name.startswith("_")
)

#: Builtin exceptions that ``except Exception`` does NOT cover.
_NON_EXCEPTION_BUILTINS = frozenset({
    "BaseException", "KeyboardInterrupt", "SystemExit", "GeneratorExit",
})

#: Container/str methods that mutate their receiver in place.  A call
#: ``root.append(x)`` where ``root`` is module-level state is a shared
#: mutation even though nothing is assigned.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "setdefault", "add", "discard", "popitem", "sort", "reverse",
    "appendleft", "popleft",
})

#: ``random`` module functions that mutate/draw from the *global* RNG are
#: the RC102/RC202 family's concern, not the mutation analysis: exclude
#: the whole module from mutation classification so ``random.seed(spec)``
#: (the campaign's sanctioned deterministic reseed) is not double-flagged.
_RNG_MODULES = frozenset({"random"})

#: Calls that write to the world outside the process (the "io" effect).
_IO_CALLS = {
    "os": frozenset({
        "remove", "unlink", "makedirs", "mkdir", "rename", "replace",
        "rmdir", "chdir", "symlink", "link", "chmod", "system", "popen",
        "_exit", "kill",
    }),
    "shutil": None,  # any shutil call writes
    "subprocess": None,  # any subprocess call spawns
}
#: Bare-name builtins that perform I/O.
_IO_BUILTINS = frozenset({"open", "print", "input"})
#: Method names that read/write files through handles or pathlib.
_IO_METHODS = frozenset({"write_text", "write_bytes"})

#: Calls that read ambient process/host state beyond the arguments (the
#: "reads-ambient" effect): environment, filesystem metadata, host info.
_AMBIENT_CALLS = {
    "os": frozenset({
        "getenv", "getcwd", "cpu_count", "stat", "listdir", "walk",
        "scandir", "uname", "getpid", "urandom",
    }),
    "os.path": frozenset({
        "exists", "isfile", "isdir", "getsize", "getmtime", "realpath",
        "abspath", "expanduser",
    }),
    "platform": None,  # any platform call reads host identity
    "socket": frozenset({"gethostname", "getfqdn"}),
}
#: Attribute chains whose *read* is ambient state (not calls).
_AMBIENT_ATTRS = frozenset({("os", "environ"), ("sys", "argv")})
#: Method names that read files through pathlib-style handles.
_AMBIENT_METHODS = frozenset({"read_text", "read_bytes"})

#: Function names whose call sites register scenario factories; the second
#: positional argument (or ``factory=`` keyword) must be pickle-safe by
#: reference for the multiprocessing fan-out (RC303).
_REGISTRATION_FUNCS = frozenset({"register_scenario"})

#: Method names whose *unresolved* calls can block the calling thread,
#: mapped to a blocking category.  A call that resolves to a project
#: function is never classified through this table — the callee's own
#: body is analyzed instead (the RC402 rule checks resolved edges at the
#: same line before trusting a name-based match).
_BLOCKING_METHOD_CATEGORIES: Mapping[str, str] = {
    "recv": "net", "recv_bytes": "net", "recv_into": "net",
    "accept": "net", "poll": "net", "sendall": "net", "connect": "net",
    "readline": "file",
    "wait": "wait",
    "acquire": "lock",
    "join": "join",
}
#: ``.join()`` is only a blocking sink when the receiver chain hints at a
#: thread/process handle — ``", ".join(...)`` and ``os.path.join`` stay
#: out of the graph entirely (no dotted parts / no hint).
_JOIN_RECEIVER_HINTS = ("proc", "thread", "worker", "pool", "child")
#: Module-level calls that block, via the resolved ``(module, func)``
#: target (``None`` means every function of the module).
_BLOCKING_CALLS: Mapping[str, Optional[FrozenSet[str]]] = {
    "subprocess": None,
    "select": frozenset({"select"}),
    "time": frozenset({"sleep"}),
}
#: Spawn constructors: last call segment -> spawn kind.  Guarded by a
#: ``target=`` keyword or a resolved threading/multiprocessing import so
#: arbitrary project classes named ``Process`` do not match.
_SPAWN_CTORS: Mapping[str, str] = {"Thread": "thread", "Process": "process"}


# ------------------------------------------------------------- summary model


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    Attributes:
        parts: The dotted callee chain (``a.b.c()`` -> ``("a","b","c")``).
        line: 1-based source line of the call.
        guards: Exception type names caught by ``try`` blocks enclosing
            this call *within the same function* (:data:`CATCH_ALL` for a
            bare ``except:``).
        locks: Normalized names of locks held (``with <lock>:`` blocks
            enclosing the call within the same function) — the lock-order
            analysis propagates these across the edge.
    """

    parts: Tuple[str, ...]
    line: int
    guards: Tuple[str, ...] = ()
    locks: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"parts": list(self.parts), "line": self.line,
                "guards": list(self.guards), "locks": list(self.locks)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(parts=tuple(data["parts"]), line=int(data["line"]),
                   guards=tuple(data.get("guards", ())),
                   locks=tuple(data.get("locks", ())))


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement inside a function body.

    ``exception`` is the raised type name when statically known; a bare
    ``raise`` re-raises the enclosing handler's caught types instead
    (``handler_types``).  ``None`` with empty handler types means the
    raised object could not be typed (``raise some_variable``) — such
    sites are conservatively ignored by the escape analysis.
    """

    exception: Optional[str]
    line: int
    guards: Tuple[str, ...] = ()
    handler_types: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"exception": self.exception, "line": self.line,
                "guards": list(self.guards),
                "handler_types": list(self.handler_types)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RaiseSite":
        return cls(exception=data.get("exception"), line=int(data["line"]),
                   guards=tuple(data.get("guards", ())),
                   handler_types=tuple(data.get("handler_types", ())))


@dataclass(frozen=True)
class SinkSite:
    """A determinism sink (wall-clock read / global-RNG draw) in a body."""

    line: int
    column: int
    description: str

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column,
                "description": self.description}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SinkSite":
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   description=str(data.get("description", "")))


@dataclass(frozen=True)
class MutationSite:
    """One statement that mutates state outliving the function call.

    Attributes:
        line: 1-based source line of the mutation.
        column: 0-based column offset.
        target: Display form of the mutated expression
            (``"_REGISTRY[...]"``, ``"Cls.attr"``).
        root: The leftmost name of the mutated chain.
        scope: ``"global"`` (module/class-level state) or ``"param"``
            (an argument escaping the call, ``self`` included).
        kind: ``"assign"``, ``"augassign"``, ``"delete"`` or ``"method"``
            (an in-place mutating method call such as ``.append()``).
        locked: True when the statement sits inside a ``with`` block whose
            context expression names a lock — the RC302 exemption.
        locks: Normalized names of the locks held (the RC401 lockset).
    """

    line: int
    column: int
    target: str
    root: str
    scope: str
    kind: str
    locked: bool = False
    locks: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column,
                "target": self.target, "root": self.root,
                "scope": self.scope, "kind": self.kind,
                "locked": self.locked, "locks": list(self.locks)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MutationSite":
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   target=str(data.get("target", "")),
                   root=str(data.get("root", "")),
                   scope=str(data.get("scope", "global")),
                   kind=str(data.get("kind", "assign")),
                   locked=bool(data.get("locked", False)),
                   locks=tuple(data.get("locks", ())))


@dataclass(frozen=True)
class RegistrationSite:
    """One ``register_scenario(...)`` call site (RC303 evidence).

    ``factory_kind`` classifies the factory argument statically:
    ``"lambda"`` (a lambda literal), ``"nested"`` (a function defined
    inside the registering function), ``"ref"`` (a name/attribute chain,
    recorded in ``factory`` for project-level resolution) or ``"unknown"``
    (a computed value the analysis cannot type — conservatively accepted).
    """

    line: int
    column: int
    scenario: Optional[str]
    factory_kind: str
    factory: Tuple[str, ...] = ()
    #: Qualname of the enclosing function ("" at module level).
    enclosing: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column,
                "scenario": self.scenario,
                "factory_kind": self.factory_kind,
                "factory": list(self.factory),
                "enclosing": self.enclosing}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegistrationSite":
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   scenario=data.get("scenario"),
                   factory_kind=str(data.get("factory_kind", "unknown")),
                   factory=tuple(data.get("factory", ())),
                   enclosing=str(data.get("enclosing", "")))


@dataclass(frozen=True)
class LockSite:
    """One lock acquisition (``with <lock>:`` or ``<lock>.acquire()``).

    ``name`` is the normalized lock identity (``self`` replaced by the
    enclosing class name, module globals qualified by their module) and
    ``held`` names the locks already held at the acquisition — the edges
    of the RC405 lock-order graph.
    """

    line: int
    name: str
    held: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "name": self.name,
                "held": list(self.held)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LockSite":
        return cls(line=int(data["line"]), name=str(data.get("name", "")),
                   held=tuple(data.get("held", ())))


@dataclass(frozen=True)
class SpawnSite:
    """One thread/process spawn (``Thread(target=...)``, ``Process(...)``,
    ``os.fork()``).

    ``target`` is the dotted chain of the ``target=`` argument when
    statically visible (resolved project-wide by the concurrency
    analysis); ``daemon`` is the constructor's ``daemon=`` constant
    (``None`` when absent or dynamic — treated as non-daemon).
    """

    line: int
    column: int
    kind: str  # "thread" | "process"
    target: Tuple[str, ...] = ()
    daemon: Optional[bool] = None
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column, "kind": self.kind,
                "target": list(self.target), "daemon": self.daemon,
                "description": self.description}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpawnSite":
        daemon = data.get("daemon")
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   kind=str(data.get("kind", "thread")),
                   target=tuple(data.get("target", ())),
                   daemon=None if daemon is None else bool(daemon),
                   description=str(data.get("description", "")))


@dataclass(frozen=True)
class HandlerSite:
    """One signal-handler registration (``signal.signal(sig, handler)``
    or ``loop.add_signal_handler(sig, handler)``).

    ``handler_kind`` mirrors :class:`RegistrationSite`: ``"ref"`` (dotted
    chain in ``handler``), ``"lambda"`` (``handler`` holds the single
    dotted call inside the lambda body when there is one) or
    ``"unknown"``.
    """

    line: int
    column: int
    signal_name: str
    handler_kind: str
    handler: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column,
                "signal_name": self.signal_name,
                "handler_kind": self.handler_kind,
                "handler": list(self.handler)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HandlerSite":
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   signal_name=str(data.get("signal_name", "")),
                   handler_kind=str(data.get("handler_kind", "unknown")),
                   handler=tuple(data.get("handler", ())))


@dataclass(frozen=True)
class BlockingSite:
    """One potentially blocking call (RC402 evidence).

    ``category`` is one of ``"sleep"``, ``"net"``, ``"file"``, ``"wait"``,
    ``"lock"``, ``"join"`` or ``"proc"``; ``awaited`` is True when the
    call sits anywhere inside an ``await`` expression (an asyncio
    coroutine, not a thread-blocking primitive).
    """

    line: int
    column: int
    category: str
    description: str
    awaited: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "column": self.column,
                "category": self.category,
                "description": self.description, "awaited": self.awaited}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BlockingSite":
        return cls(line=int(data["line"]), column=int(data.get("column", 0)),
                   category=str(data.get("category", "")),
                   description=str(data.get("description", "")),
                   awaited=bool(data.get("awaited", False)))


@dataclass
class FunctionSummary:
    """Call/raise/sink/effect/concurrency facts for one function."""

    qualname: str
    line: int
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    wallclock_sinks: List[SinkSite] = field(default_factory=list)
    random_sinks: List[SinkSite] = field(default_factory=list)
    io_sinks: List[SinkSite] = field(default_factory=list)
    ambient_sinks: List[SinkSite] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    is_async: bool = False
    lock_sites: List[LockSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    handlers: List[HandlerSite] = field(default_factory=list)
    blocking_sinks: List[BlockingSite] = field(default_factory=list)
    #: Reads of closure variables shared with a nested function (recorded
    #: as :class:`MutationSite` with ``kind="read"``, ``scope="closure"``)
    #: — the read half of the RC401 lockset analysis.
    shared_reads: List[MutationSite] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [c.to_dict() for c in self.calls],
            "raises": [r.to_dict() for r in self.raises],
            "wallclock_sinks": [s.to_dict() for s in self.wallclock_sinks],
            "random_sinks": [s.to_dict() for s in self.random_sinks],
            "io_sinks": [s.to_dict() for s in self.io_sinks],
            "ambient_sinks": [s.to_dict() for s in self.ambient_sinks],
            "mutations": [m.to_dict() for m in self.mutations],
            "is_async": self.is_async,
            "lock_sites": [s.to_dict() for s in self.lock_sites],
            "spawns": [s.to_dict() for s in self.spawns],
            "handlers": [s.to_dict() for s in self.handlers],
            "blocking_sinks": [s.to_dict() for s in self.blocking_sinks],
            "shared_reads": [m.to_dict() for m in self.shared_reads],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data.get("line", 0)),
            calls=[CallSite.from_dict(c) for c in data.get("calls", ())],
            raises=[RaiseSite.from_dict(r) for r in data.get("raises", ())],
            wallclock_sinks=[SinkSite.from_dict(s)
                             for s in data.get("wallclock_sinks", ())],
            random_sinks=[SinkSite.from_dict(s)
                          for s in data.get("random_sinks", ())],
            io_sinks=[SinkSite.from_dict(s)
                      for s in data.get("io_sinks", ())],
            ambient_sinks=[SinkSite.from_dict(s)
                           for s in data.get("ambient_sinks", ())],
            mutations=[MutationSite.from_dict(m)
                       for m in data.get("mutations", ())],
            is_async=bool(data.get("is_async", False)),
            lock_sites=[LockSite.from_dict(s)
                        for s in data.get("lock_sites", ())],
            spawns=[SpawnSite.from_dict(s)
                    for s in data.get("spawns", ())],
            handlers=[HandlerSite.from_dict(s)
                      for s in data.get("handlers", ())],
            blocking_sinks=[BlockingSite.from_dict(s)
                            for s in data.get("blocking_sinks", ())],
            shared_reads=[MutationSite.from_dict(m)
                          for m in data.get("shared_reads", ())],
        )


@dataclass
class ClassSummary:
    """One top-level class: bases (raw dotted strings) and method names."""

    name: str
    line: int
    bases: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "line": self.line,
                "bases": list(self.bases), "methods": list(self.methods)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassSummary":
        return cls(name=str(data["name"]), line=int(data.get("line", 0)),
                   bases=tuple(data.get("bases", ())),
                   methods=tuple(data.get("methods", ())))


@dataclass
class FileSummary:
    """Everything the whole-program analysis needs from one parsed file."""

    path: str
    module: Optional[str]
    import_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: Top-level class name -> def line (the event vocabulary when this
    #: file is ``bus/events.py``).
    class_lines: Dict[str, int] = field(default_factory=dict)
    #: Capitalised names instantiated via ``Name(...)`` -> first line.
    instantiated: Dict[str, int] = field(default_factory=dict)
    #: Capitalised names referenced in a consumption context (isinstance,
    #: ``events_of``, ``type(x) is``, except handlers, dict keys).
    consumed: Dict[str, int] = field(default_factory=dict)
    #: Other capitalised value references (``X if p else Y`` dispatch).
    referenced: Dict[str, int] = field(default_factory=dict)
    #: Module-level assigned names -> first binding line.  The mutation
    #: analysis classifies writes through these roots as shared state.
    module_globals: Dict[str, int] = field(default_factory=dict)
    #: ``register_scenario(...)`` call sites found anywhere in the file.
    registrations: List[RegistrationSite] = field(default_factory=list)

    def suppression_index(self) -> SuppressionIndex:
        return SuppressionIndex.from_mapping(
            {line: codes for line, codes in self.suppressions.items()})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "import_aliases": dict(self.import_aliases),
            "from_imports": {k: list(v) for k, v in self.from_imports.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
            "class_lines": dict(self.class_lines),
            "instantiated": dict(self.instantiated),
            "consumed": dict(self.consumed),
            "referenced": dict(self.referenced),
            "module_globals": dict(self.module_globals),
            "registrations": [r.to_dict() for r in self.registrations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileSummary":
        return cls(
            path=str(data["path"]),
            module=data.get("module"),
            import_aliases=dict(data.get("import_aliases", {})),
            from_imports={k: (v[0], v[1])
                          for k, v in data.get("from_imports", {}).items()},
            functions={k: FunctionSummary.from_dict(v)
                       for k, v in data.get("functions", {}).items()},
            classes={k: ClassSummary.from_dict(v)
                     for k, v in data.get("classes", {}).items()},
            suppressions={int(k): list(v)
                          for k, v in data.get("suppressions", {}).items()},
            class_lines={k: int(v)
                         for k, v in data.get("class_lines", {}).items()},
            instantiated={k: int(v)
                          for k, v in data.get("instantiated", {}).items()},
            consumed={k: int(v)
                      for k, v in data.get("consumed", {}).items()},
            referenced={k: int(v)
                        for k, v in data.get("referenced", {}).items()},
            module_globals={k: int(v)
                            for k, v in data.get("module_globals",
                                                 {}).items()},
            registrations=[RegistrationSite.from_dict(r)
                           for r in data.get("registrations", ())],
        )


# -------------------------------------------------------------- module names


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name of ``path``, walking up the ``__init__.py`` chain.

    ``src/repro/bus/simulator.py`` -> ``repro.bus.simulator`` (assuming
    ``src/`` itself is not a package).  A package ``__init__.py`` maps to
    the package name.  Files outside any package map to their bare stem.
    """
    absolute = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(absolute))[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    directory = os.path.dirname(absolute)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:  # filesystem root
            break
        directory = parent
    if not parts:
        return None
    parts.reverse()
    return ".".join(parts)


def _resolve_relative(module: Optional[str], level: int,
                      own_module: Optional[str],
                      is_package: bool) -> Optional[str]:
    """Absolute module named by ``from <dots><module> import ...``."""
    if level == 0:
        return module
    if own_module is None:
        return module
    base_parts = own_module.split(".")
    if not is_package:
        base_parts = base_parts[:-1]
    drop = level - 1
    if drop > len(base_parts):
        return module
    base = base_parts[:len(base_parts) - drop]
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


# ---------------------------------------------------------------- summarizer


_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
_TRY_NODES: Tuple[type, ...] = tuple(
    t for t in (getattr(ast, "Try", None), getattr(ast, "TryStar", None))
    if t is not None
)


def _handler_type_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    """Type names an except handler catches; CATCH_ALL for bare except."""
    node = handler.type
    if node is None:
        return (CATCH_ALL,)
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for item in items:
        parts = _dotted_parts(item)
        if parts:
            names.append(parts[-1])
    return tuple(names) if names else (CATCH_ALL,)


def _exception_name(node: Optional[ast.expr]) -> Optional[str]:
    """The raised exception type's name, when statically knowable."""
    if node is None:
        return None
    if isinstance(node, ast.Call):
        node = node.func
    parts = _dotted_parts(node)
    if parts and parts[-1][:1].isupper():
        return parts[-1]
    return None


#: Methods whose ``self`` mutations are construction, not escape: the
#: receiver does not exist outside the call yet.
_CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _flatten_targets(nodes: Iterable[ast.expr]) -> List[ast.expr]:
    """Unpack tuple/list/starred assignment targets into leaf targets."""
    leaves: List[ast.expr] = []
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        else:
            leaves.append(node)
    return leaves


def _is_lockish(parts: Sequence[str]) -> bool:
    """Does a ``with`` context expression look like a lock acquisition?"""
    return any("lock" in part.lower() for part in parts)


def _function_params(node: ast.AST) -> Set[str]:
    assert isinstance(node, _FunctionNode)
    args = node.args
    params = {a.arg for a in (list(args.posonlyargs) + list(args.args)
                              + list(args.kwonlyargs))}
    if args.vararg is not None:
        params.add(args.vararg.arg)
    if args.kwarg is not None:
        params.add(args.kwarg.arg)
    return params


class _FunctionContext:
    """Name-binding facts for one function body (mutation classification).

    ``locals`` over-approximates (nested-function locals bleed in via the
    plain AST walk), which only ever *suppresses* mutation findings —
    a name bound locally anywhere in the subtree is never classified as
    shared state.

    ``shared_with_nested`` holds this function's own bindings that some
    nested ``def`` captures (reads without binding), and ``parent`` chains
    to the enclosing function's context: together they classify closure
    state shared between a function and the threads it spawns from nested
    targets (the RC401 evidence).  ``owner_class`` names the enclosing
    class for methods — used to normalize ``self._lock`` spellings.
    """

    def __init__(self, node: ast.AST,
                 parent: Optional["_FunctionContext"] = None,
                 owner_class: Optional[str] = None) -> None:
        assert isinstance(node, _FunctionNode)
        self.parent = parent
        self.owner_class = owner_class
        self.params = _function_params(node)
        self.is_constructor = node.name in _CONSTRUCTOR_METHODS
        self.global_decls: Set[str] = set()
        self.locals: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                self.global_decls.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                self.locals.add(sub.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for leaf in _flatten_targets([sub.target]):
                    if isinstance(leaf, ast.Name):
                        self.locals.add(leaf.id)
        self.locals -= self.global_decls
        self.shared_with_nested: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, _FunctionNode) and sub is not node:
                bound = _function_params(sub)
                used: Set[str] = set()
                for inner in ast.walk(sub):
                    if isinstance(inner, ast.Name):
                        used.add(inner.id)
                        if isinstance(inner.ctx, (ast.Store, ast.Del)):
                            bound.add(inner.id)
                self.shared_with_nested.update(used - bound)
        self.shared_with_nested &= (self.locals | self.params)

    def captured_from_enclosing(self, root: str) -> bool:
        """Is ``root`` a free variable bound by an enclosing function?"""
        parent = self.parent
        while parent is not None:
            if root in parent.locals or root in parent.params:
                return True
            parent = parent.parent
        return False

    def closure_shared(self, root: str) -> bool:
        """Does ``root`` name state shared across a closure boundary?"""
        if root in ("self", "cls") or root in self.global_decls:
            return False
        if root in self.locals or root in self.params:
            return root in self.shared_with_nested
        return self.captured_from_enclosing(root)


class _Summarizer:
    """One-pass AST -> :class:`FileSummary` extraction."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        module = module_name_for(path)
        self.summary = FileSummary(
            path=path,
            module=module,
            suppressions=SuppressionIndex(source.splitlines()).to_mapping(),
        )
        self._is_package = path.replace("\\", "/").endswith("__init__.py")
        self._collect_imports(tree)
        self._time_aliases = {a for a, m in
                              self.summary.import_aliases.items()
                              if m == "time"}
        self._datetime_aliases = {a for a, m in
                                  self.summary.import_aliases.items()
                                  if m == "datetime"}
        self._random_aliases = {a for a, m in
                                self.summary.import_aliases.items()
                                if m == "random"}
        self._class_names = {node.name for node in tree.body
                             if isinstance(node, ast.ClassDef)}
        self._collect_module_globals(tree)
        for node in tree.body:
            if isinstance(node, _FunctionNode):
                self._summarize_function(node, prefix="")
            elif isinstance(node, ast.ClassDef):
                self._summarize_class(node)
        self._scan_module_level(tree)
        self._finalize_registrations()
        self._collect_event_evidence(tree)

    # ------------------------------------------------------------ imports

    def _collect_imports(self, tree: ast.Module) -> None:
        own = self.summary.module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.summary.import_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name if alias.asname else alias.name.split(".")[0]
                    if alias.asname:
                        self.summary.import_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = _resolve_relative(node.module, node.level, own,
                                           self._is_package)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.summary.from_imports[
                        alias.asname or alias.name] = (module, alias.name)

    def _collect_module_globals(self, tree: ast.Module) -> None:
        """Names bound by module-level assignments (shared-state roots)."""
        for node in tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = _flatten_targets(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    self.summary.module_globals.setdefault(
                        target.id, node.lineno)

    # ------------------------------------------------------------ classes

    def _summarize_class(self, node: ast.ClassDef) -> None:
        bases: List[str] = []
        for base in node.bases:
            parts = _dotted_parts(base)
            if parts:
                bases.append(".".join(parts))
        methods = [item.name for item in node.body
                   if isinstance(item, _FunctionNode)]
        self.summary.classes[node.name] = ClassSummary(
            name=node.name, line=node.lineno,
            bases=tuple(bases), methods=tuple(methods))
        self.summary.class_lines[node.name] = node.lineno
        for item in node.body:
            if isinstance(item, _FunctionNode):
                self._summarize_function(item, prefix=node.name + ".")

    # ---------------------------------------------------------- functions

    def _summarize_function(self, node: ast.AST, prefix: str,
                            parent_ctx: Optional[_FunctionContext] = None,
                            ) -> None:
        assert isinstance(node, _FunctionNode)
        qualname = prefix + node.name
        fn = FunctionSummary(
            qualname=qualname, line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef))
        self.summary.functions[qualname] = fn
        owner = prefix.split(".", 1)[0] if prefix else ""
        ctx = _FunctionContext(
            node, parent=parent_ctx,
            owner_class=owner if owner in self._class_names else None)
        self._walk_statements(node.body, fn, ctx, guards=(), caught=(),
                              locks=())

    def _lock_display(self, parts: Sequence[str],
                      ctx: _FunctionContext) -> str:
        """Normalized lock identity: ``self``/``cls`` become the enclosing
        class name, module globals get their module prefix, everything
        else keeps its dotted spelling (closure/param locks compare by
        bare name — the spellings both sides of the closure use)."""
        if parts[0] in ("self", "cls") and ctx.owner_class:
            return ".".join([ctx.owner_class] + list(parts[1:]))
        if parts[0] in self.summary.module_globals \
                and parts[0] not in ctx.locals and parts[0] not in ctx.params \
                and not ctx.captured_from_enclosing(parts[0]):
            stem = self.summary.module or os.path.splitext(
                os.path.basename(self.summary.path))[0]
            return f"{stem}.{'.'.join(parts)}"
        return ".".join(parts)

    def _walk_statements(self, stmts: Sequence[ast.stmt],
                         fn: FunctionSummary,
                         ctx: _FunctionContext,
                         guards: Tuple[str, ...],
                         caught: Tuple[str, ...],
                         locks: Tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _FunctionNode):
                self._summarize_function(stmt, prefix=fn.qualname + ".",
                                         parent_ctx=ctx)
            elif isinstance(stmt, ast.ClassDef):
                continue  # nested classes: out of scope
            elif isinstance(stmt, _TRY_NODES):
                handler_union: List[str] = []
                for handler in stmt.handlers:
                    handler_union.extend(_handler_type_names(handler))
                inner = guards + tuple(handler_union)
                self._walk_statements(stmt.body, fn, ctx, inner, caught,
                                      locks)
                for handler in stmt.handlers:
                    self._walk_statements(
                        handler.body, fn, ctx, guards,
                        caught=_handler_type_names(handler), locks=locks)
                self._walk_statements(stmt.orelse, fn, ctx, guards, caught,
                                      locks)
                self._walk_statements(stmt.finalbody, fn, ctx, guards,
                                      caught, locks)
            elif isinstance(stmt, ast.Raise):
                self._record_raise(stmt, fn, ctx, guards, caught, locks)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_expression(stmt.test, fn, ctx, guards, locks)
                self._walk_statements(stmt.body, fn, ctx, guards, caught,
                                      locks)
                self._walk_statements(stmt.orelse, fn, ctx, guards, caught,
                                      locks)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expression(stmt.iter, fn, ctx, guards, locks)
                self._walk_statements(stmt.body, fn, ctx, guards, caught,
                                      locks)
                self._walk_statements(stmt.orelse, fn, ctx, guards, caught,
                                      locks)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_locks = locks
                for item in stmt.items:
                    self._scan_expression(item.context_expr, fn, ctx,
                                          guards, locks)
                    parts = _dotted_parts(item.context_expr) or []
                    if parts and _is_lockish(parts):
                        name = self._lock_display(parts, ctx)
                        fn.lock_sites.append(LockSite(
                            line=stmt.lineno, name=name, held=inner_locks))
                        if name not in inner_locks:
                            inner_locks = inner_locks + (name,)
                self._walk_statements(stmt.body, fn, ctx, guards, caught,
                                      inner_locks)
            elif isinstance(stmt, ast.Match):
                self._scan_expression(stmt.subject, fn, ctx, guards, locks)
                for case in stmt.cases:
                    if case.guard is not None:
                        self._scan_expression(case.guard, fn, ctx, guards,
                                              locks)
                    self._walk_statements(case.body, fn, ctx, guards,
                                          caught, locks)
            else:
                if isinstance(stmt, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign, ast.Delete)):
                    self._record_mutations(stmt, fn, ctx, locks)
                self._scan_expression(stmt, fn, ctx, guards, locks)

    def _record_raise(self, stmt: ast.Raise, fn: FunctionSummary,
                      ctx: _FunctionContext,
                      guards: Tuple[str, ...],
                      caught: Tuple[str, ...],
                      locks: Tuple[str, ...]) -> None:
        if stmt.exc is not None:
            self._scan_expression(stmt.exc, fn, ctx, guards, locks)
        fn.raises.append(RaiseSite(
            exception=_exception_name(stmt.exc),
            line=stmt.lineno,
            guards=guards,
            handler_types=caught if stmt.exc is None else (),
        ))

    # ------------------------------------------------------------ mutations

    def _mutation_scope(self, root: str,
                        ctx: _FunctionContext) -> Optional[str]:
        """``"global"``/``"param"``/``"closure"`` when a write through
        ``root`` mutates state outliving the call (or shared across a
        nested-function boundary), ``None`` for locals and unknowns."""
        if root in ("self", "cls"):
            return None if ctx.is_constructor else "param"
        if root in ctx.global_decls:
            return "global"
        if root in ctx.params:
            return "param"
        if root in ctx.locals:
            return "closure" if root in ctx.shared_with_nested else None
        if ctx.captured_from_enclosing(root):
            return "closure"
        if root in self._class_names \
                or root in self.summary.module_globals:
            return "global"
        alias = self.summary.import_aliases.get(root)
        if alias is not None:
            return None if alias in _RNG_MODULES else "global"
        target = self.summary.from_imports.get(root)
        if target is not None:
            return None if target[0] in _RNG_MODULES else "global"
        return None

    def _record_mutations(self, stmt: ast.stmt, fn: FunctionSummary,
                          ctx: _FunctionContext,
                          locks: Tuple[str, ...]) -> None:
        locked = bool(locks)
        if isinstance(stmt, ast.Assign):
            targets, kind = _flatten_targets(stmt.targets), "assign"
        elif isinstance(stmt, ast.AugAssign):
            targets, kind = [stmt.target], "augassign"
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            targets, kind = [stmt.target], "assign"
        else:
            assert isinstance(stmt, ast.Delete)
            targets, kind = _flatten_targets(stmt.targets), "delete"
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding a name is a shared mutation only under a
                # ``global``/``nonlocal`` declaration.
                if target.id in ctx.global_decls:
                    fn.mutations.append(MutationSite(
                        line=stmt.lineno, column=stmt.col_offset,
                        target=target.id, root=target.id,
                        scope="global", kind=kind, locked=locked,
                        locks=locks))
                continue
            if not isinstance(target, (ast.Subscript, ast.Attribute)):
                continue
            parts = _dotted_parts(target.value)
            if not parts:
                continue
            scope = self._mutation_scope(parts[0], ctx)
            if scope is None:
                continue
            display = ".".join(parts)
            display += "[...]" if isinstance(target, ast.Subscript) \
                else f".{target.attr}"
            fn.mutations.append(MutationSite(
                line=stmt.lineno, column=stmt.col_offset,
                target=display, root=parts[0],
                scope=scope, kind=kind, locked=locked, locks=locks))

    def _record_method_mutation(self, call: ast.Call,
                                parts: Sequence[str],
                                fn: FunctionSummary,
                                ctx: _FunctionContext,
                                locks: Tuple[str, ...]) -> None:
        receiver = parts[:-1]
        scope = self._mutation_scope(receiver[0], ctx)
        if scope is None:
            return
        fn.mutations.append(MutationSite(
            line=call.lineno, column=call.col_offset,
            target=f"{'.'.join(receiver)}.{parts[-1]}()",
            root=receiver[0], scope=scope, kind="method",
            locked=bool(locks), locks=locks))

    def _scan_expression(self, node: ast.AST, fn: FunctionSummary,
                         ctx: _FunctionContext,
                         guards: Tuple[str, ...],
                         locks: Tuple[str, ...]) -> None:
        # A call is "awaited" when it sits anywhere inside an ``await``
        # subtree (covers ``await asyncio.wait_for(evt.wait(), t)``).
        awaited: FrozenSet[int] = frozenset(
            id(inner)
            for sub in ast.walk(node) if isinstance(sub, ast.Await)
            for inner in ast.walk(sub))
        seen_reads: set = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                    and ctx.closure_shared(sub.id):
                key = (sub.id, sub.lineno)
                if key not in seen_reads:
                    seen_reads.add(key)
                    fn.shared_reads.append(MutationSite(
                        line=sub.lineno, column=sub.col_offset,
                        target=sub.id, root=sub.id, scope="closure",
                        kind="read", locked=bool(locks), locks=locks))
                continue
            if isinstance(sub, ast.Attribute):
                attr_parts = _dotted_parts(sub) or []
                if len(attr_parts) == 2:
                    root = self.summary.import_aliases.get(
                        attr_parts[0], attr_parts[0])
                    if (root, attr_parts[1]) in _AMBIENT_ATTRS:
                        fn.ambient_sinks.append(SinkSite(
                            line=sub.lineno, column=sub.col_offset,
                            description=".".join(attr_parts)))
                continue
            if not isinstance(sub, ast.Call):
                continue
            parts = _dotted_parts(sub.func)
            if not parts:
                continue
            fn.calls.append(CallSite(parts=tuple(parts), line=sub.lineno,
                                     guards=guards, locks=locks))
            self._classify_sink(sub, parts, fn)
            self._classify_blocking(sub, parts, fn, id(sub) in awaited)
            self._record_spawn(sub, parts, fn)
            self._record_handler(sub, parts, fn)
            if len(parts) >= 2 and parts[-1] == "acquire" \
                    and _is_lockish(parts[:-1]):
                fn.lock_sites.append(LockSite(
                    line=sub.lineno,
                    name=self._lock_display(parts[:-1], ctx), held=locks))
            if len(parts) >= 2 and parts[-1] in _MUTATING_METHODS:
                self._record_method_mutation(sub, parts, fn, ctx, locks)
            if parts[-1] in _REGISTRATION_FUNCS:
                self._record_registration(sub, fn.qualname)

    # --------------------------------------------------- concurrency facts

    def _record_spawn(self, call: ast.Call, parts: Sequence[str],
                      fn: FunctionSummary) -> None:
        resolved = self._module_call_target(parts)
        if resolved == ("os", "fork"):
            fn.spawns.append(SpawnSite(
                line=call.lineno, column=call.col_offset, kind="fork",
                description="os.fork()"))
            return
        kind = _SPAWN_CTORS.get(parts[-1])
        if kind is None:
            return
        target: Tuple[str, ...] = ()
        daemon: Optional[bool] = None
        has_target_kw = False
        for keyword in call.keywords:
            if keyword.arg == "target":
                has_target_kw = True
                target = tuple(_dotted_parts(keyword.value) or ())
            elif keyword.arg == "daemon" \
                    and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, bool):
                daemon = keyword.value.value
        from_known_module = resolved is not None and resolved[0] in (
            "threading", "multiprocessing")
        if not has_target_kw and not from_known_module:
            return  # some unrelated Thread/Process-named constructor
        fn.spawns.append(SpawnSite(
            line=call.lineno, column=call.col_offset, kind=kind,
            target=target, daemon=daemon,
            description=f"{'.'.join(parts)}(...)"))

    @staticmethod
    def _handler_facts(expr: ast.expr) -> Tuple[str, Tuple[str, ...]]:
        """(kind, dotted-chain) for a handler expression, lambda-aware."""
        if isinstance(expr, ast.Lambda):
            body = expr.body
            calls = [c for c in ast.walk(body) if isinstance(c, ast.Call)]
            if len(calls) == 1:
                dotted = _dotted_parts(calls[0].func)
                if dotted:
                    return "lambda", tuple(dotted)
            return "lambda", ()
        dotted = _dotted_parts(expr)
        if dotted:
            return "ref", tuple(dotted)
        return "unknown", ()

    def _record_handler(self, call: ast.Call, parts: Sequence[str],
                        fn: FunctionSummary) -> None:
        resolved = self._module_call_target(parts)
        is_signal = resolved == ("signal", "signal")
        is_loop = parts[-1] == "add_signal_handler" and len(parts) >= 2
        if not (is_signal or is_loop) or len(call.args) < 2:
            return
        sig_parts = _dotted_parts(call.args[0]) or []
        signal_name = sig_parts[-1] if sig_parts else "<dynamic>"
        kind, handler = self._handler_facts(call.args[1])
        fn.handlers.append(HandlerSite(
            line=call.lineno, column=call.col_offset,
            signal_name=signal_name, handler_kind=kind, handler=handler))

    def _classify_blocking(self, call: ast.Call, parts: Sequence[str],
                           fn: FunctionSummary, awaited: bool) -> None:
        """Record potentially thread-blocking calls (RC402 evidence).

        Runs independently of :meth:`_classify_sink` because the latter
        early-returns once it files ``time.sleep`` as a wallclock sink.
        """
        dotted = ".".join(parts)
        category: Optional[str] = None
        resolved = self._module_call_target(parts)
        if resolved is not None:
            module, func = resolved
            if module.startswith("asyncio"):
                return  # coroutine factories, not thread-blocking
            if self._in_call_map(_BLOCKING_CALLS, module, func):
                category = {"subprocess": "proc", "select": "net",
                            "time": "sleep"}[module.split(".", 1)[0]]
        if category is None and len(parts) == 1 and parts[0] == "open" \
                and parts[0] not in self.summary.from_imports \
                and parts[0] not in self.summary.functions:
            category = "file"
        if category is None and len(parts) >= 2:
            root = self.summary.import_aliases.get(parts[0], parts[0])
            if root.startswith("asyncio"):
                return
            method = parts[-1]
            if method in ("read_text", "write_text"):
                category = "file"
            elif method in _BLOCKING_METHOD_CATEGORIES:
                category = _BLOCKING_METHOD_CATEGORIES[method]
                if method == "join":
                    receiver = ".".join(parts[:-1]).lower()
                    if not any(hint in receiver
                               for hint in _JOIN_RECEIVER_HINTS):
                        return  # str.join / os.path.join, not a wait
        if category is not None:
            fn.blocking_sinks.append(BlockingSite(
                line=call.lineno, column=call.col_offset,
                category=category, description=f"{dotted}()",
                awaited=awaited))

    def _classify_sink(self, call: ast.Call, parts: List[str],
                       fn: FunctionSummary) -> None:
        dotted = ".".join(parts)
        sink = SinkSite(line=call.lineno, column=call.col_offset,
                        description=f"{dotted}()")
        if len(parts) >= 2 and parts[0] in self._time_aliases \
                and parts[1] in _TIME_FUNCS:
            fn.wallclock_sinks.append(sink)
            return
        if parts[0] in self._datetime_aliases \
                and parts[-1] in _DATETIME_FACTORIES:
            fn.wallclock_sinks.append(sink)
            return
        if len(parts) == 1:
            target = self.summary.from_imports.get(parts[0])
            if target == ("time", parts[0]) or (
                    target is not None and target[0] == "time"
                    and target[1] in _TIME_FUNCS):
                fn.wallclock_sinks.append(sink)
                return
            if target is not None and target[0] == "datetime" \
                    and target[1] in _DATETIME_FACTORIES:
                fn.wallclock_sinks.append(sink)
                return
            if target is not None and target[0] == "random" and (
                    target[1] in _GLOBAL_RNG_FUNCS
                    or target[1] == "SystemRandom"):
                fn.random_sinks.append(sink)
                return
        if len(parts) == 2 and parts[0] in self._random_aliases:
            if parts[1] in _GLOBAL_RNG_FUNCS or parts[1] == "SystemRandom":
                fn.random_sinks.append(sink)
                return
            if parts[1] == "Random" and not call.args and not call.keywords:
                fn.random_sinks.append(SinkSite(
                    line=call.lineno, column=call.col_offset,
                    description=f"{dotted}() without a seed"))
                return
        self._classify_effect_sink(call, parts, sink, fn)

    # -------------------------------------------------------- effect sinks

    def _module_call_target(
            self, parts: Sequence[str]) -> Optional[Tuple[str, str]]:
        """``(module, function)`` for a call through an imported module or
        a from-imported name, else ``None``."""
        if len(parts) == 1:
            return self.summary.from_imports.get(parts[0])
        base = self.summary.import_aliases.get(parts[0])
        if base is None:
            target = self.summary.from_imports.get(parts[0])
            if target is None:
                return None
            base = f"{target[0]}.{target[1]}"
        rest = parts[1:]
        if len(rest) == 1:
            return (base, rest[0])
        return (base + "." + ".".join(rest[:-1]), rest[-1])

    @staticmethod
    def _in_call_map(mapping: Mapping[str, Optional[FrozenSet[str]]],
                     module: str, func: str) -> bool:
        if module not in mapping:
            return False
        allowed = mapping[module]
        return allowed is None or func in allowed

    def _classify_effect_sink(self, call: ast.Call, parts: Sequence[str],
                              sink: SinkSite, fn: FunctionSummary) -> None:
        resolved = self._module_call_target(parts)
        if resolved is not None:
            module, func = resolved
            if self._in_call_map(_IO_CALLS, module, func):
                fn.io_sinks.append(sink)
                return
            if self._in_call_map(_AMBIENT_CALLS, module, func):
                fn.ambient_sinks.append(sink)
                return
        if len(parts) == 1 and parts[0] in _IO_BUILTINS \
                and parts[0] not in self.summary.from_imports \
                and parts[0] not in self.summary.functions:
            fn.io_sinks.append(sink)
            return
        if len(parts) >= 2:
            if parts[-1] in _IO_METHODS:
                fn.io_sinks.append(sink)
            elif parts[-1] in _AMBIENT_METHODS:
                fn.ambient_sinks.append(sink)

    # ------------------------------------------------------- registrations

    def _record_registration(self, call: ast.Call,
                             enclosing: str) -> None:
        scenario: Optional[str] = None
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            scenario = call.args[0].value
        factory: Optional[ast.expr] = None
        if len(call.args) >= 2:
            factory = call.args[1]
        else:
            for keyword in call.keywords:
                if keyword.arg == "factory":
                    factory = keyword.value
        if factory is None:
            kind: str = "unknown"
            fparts: Tuple[str, ...] = ()
        elif isinstance(factory, ast.Lambda):
            kind, fparts = "lambda", ()
        else:
            dotted = _dotted_parts(factory)
            kind, fparts = ("ref", tuple(dotted)) if dotted \
                else ("unknown", ())
        self.summary.registrations.append(RegistrationSite(
            line=call.lineno, column=call.col_offset,
            scenario=scenario, factory_kind=kind, factory=fparts,
            enclosing=enclosing))

    def _scan_module_level(self, tree: ast.Module) -> None:
        """Registration calls in module-level statements (import-time
        registration outside any function)."""
        for stmt in tree.body:
            if isinstance(stmt, _FunctionNode) \
                    or isinstance(stmt, ast.ClassDef):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    parts = _dotted_parts(sub.func)
                    if parts and parts[-1] in _REGISTRATION_FUNCS:
                        self._record_registration(sub, "")

    def _finalize_registrations(self) -> None:
        """Reclassify single-name factory refs that resolve to a function
        nested inside the registering function: pickle-unsafe (RC303)."""
        final: List[RegistrationSite] = []
        for site in self.summary.registrations:
            if site.factory_kind == "ref" and len(site.factory) == 1 \
                    and site.enclosing:
                prefix = site.enclosing.split(".")
                for depth in range(len(prefix), 0, -1):
                    nested = ".".join(prefix[:depth]) + "." + site.factory[0]
                    if nested in self.summary.functions:
                        site = RegistrationSite(
                            line=site.line, column=site.column,
                            scenario=site.scenario, factory_kind="nested",
                            factory=(nested,), enclosing=site.enclosing)
                        break
            final.append(site)
        self.summary.registrations = final

    # ------------------------------------------------------ event evidence

    def _collect_event_evidence(self, tree: ast.Module) -> None:
        """Classify capitalised name references as instantiation evidence,
        consumption evidence, or plain value references.

        Annotation subtrees and class base lists are excluded — a type
        annotation mentioning an event class is neither an emission nor a
        consumption of it.
        """
        claimed: Set[int] = set()  # id() of Name nodes already classified

        def note(mapping: Dict[str, int], name_node: ast.Name) -> None:
            claimed.add(id(name_node))
            mapping.setdefault(name_node.id, name_node.lineno)

        def capitalised(node: ast.AST) -> Optional[ast.Name]:
            if isinstance(node, ast.Name) and node.id[:1].isupper():
                return node
            return None

        skip: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, _FunctionNode):
                for arg in (list(node.args.args) + list(node.args.posonlyargs)
                            + list(node.args.kwonlyargs)
                            + [a for a in (node.args.vararg, node.args.kwarg)
                               if a is not None]):
                    if arg.annotation is not None:
                        skip.update(id(n) for n in ast.walk(arg.annotation))
                if node.returns is not None:
                    skip.update(id(n) for n in ast.walk(node.returns))
            elif isinstance(node, ast.AnnAssign):
                skip.update(id(n) for n in ast.walk(node.annotation))
            elif isinstance(node, ast.ClassDef):
                for base in node.bases:
                    skip.update(id(n) for n in ast.walk(base))

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                parts = _dotted_parts(node.func)
                ctor = capitalised(node.func)
                if ctor is not None:
                    note(self.summary.instantiated, ctor)
                if parts and parts[-1] == "events_of":
                    for arg in node.args:
                        name = capitalised(arg)
                        if name is not None:
                            note(self.summary.consumed, name)
                if parts and parts[-1] == "isinstance" and len(node.args) == 2:
                    spec = node.args[1]
                    items = (spec.elts if isinstance(spec, ast.Tuple)
                             else [spec])
                    for item in items:
                        name = capitalised(item)
                        if name is not None:
                            note(self.summary.consumed, name)
            elif isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
                       for op in node.ops):
                    for operand in [node.left, *node.comparators]:
                        name = capitalised(operand)
                        if name is not None:
                            note(self.summary.consumed, name)
            elif isinstance(node, ast.ExceptHandler) and node.type is not None:
                items = (node.type.elts if isinstance(node.type, ast.Tuple)
                         else [node.type])
                for item in items:
                    name = capitalised(item)
                    if name is not None:
                        note(self.summary.consumed, name)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    name = capitalised(key)
                    if name is not None:
                        note(self.summary.consumed, name)

        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id[:1].isupper() \
                    and isinstance(node.ctx, ast.Load) \
                    and id(node) not in claimed and id(node) not in skip:
                self.summary.referenced.setdefault(node.id, node.lineno)


def summarize_source(source: str, path: str) -> FileSummary:
    """Parse one source blob into its :class:`FileSummary`.

    Raises ``SyntaxError`` for unparseable input — callers decide whether
    that is fatal (the lint engine already reports RC100 for it).
    """
    tree = ast.parse(source)
    return _Summarizer(path, source, tree).summary


# --------------------------------------------------------------------- cache


class AnalysisCache:
    """Mtime-keyed on-disk cache for file summaries and lint findings.

    One JSON document maps absolute file paths to ``(mtime_ns, size)``
    validated entries holding the parsed :class:`FileSummary` and, per
    rule-set key, the per-file lint findings.  The cache is strictly
    advisory: unreadable, corrupted, stale or version-skewed content is
    discarded silently (a cold run), and a failed write never raises.
    """

    def __init__(self, path: str = DEFAULT_CACHE_PATH) -> None:
        self.path = path
        self._files: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    # ----------------------------------------------------------- load/save

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("schema_version") != CACHE_SCHEMA_VERSION:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = {
                str(path): entry for path, entry in files.items()
                if isinstance(entry, dict)
            }

    def save(self) -> None:
        """Atomically persist the cache (tmp file + rename); best-effort."""
        if not self._dirty:
            return
        payload = json.dumps({
            "schema_version": CACHE_SCHEMA_VERSION,
            "files": self._files,
        }, sort_keys=True)
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".lint-cache-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_path, self.path)
            finally:
                if os.path.exists(tmp_path):
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
        except OSError:
            return
        self._dirty = False

    # ------------------------------------------------------------- entries

    @staticmethod
    def _key(path: str) -> str:
        return os.path.abspath(path)

    def _valid_entry(self, path: str) -> Optional[Dict[str, Any]]:
        entry = self._files.get(self._key(path))
        if entry is None:
            return None
        try:
            stat = os.stat(path)
        except OSError:
            return None
        if entry.get("mtime_ns") != stat.st_mtime_ns \
                or entry.get("size") != stat.st_size:
            return None
        return entry

    def _fresh_entry(self, path: str) -> Optional[Dict[str, Any]]:
        """The (possibly new) entry for the file's *current* stat, dropping
        any stale content."""
        try:
            stat = os.stat(path)
        except OSError:
            return None
        key = self._key(path)
        entry = self._files.get(key)
        if entry is None or entry.get("mtime_ns") != stat.st_mtime_ns \
                or entry.get("size") != stat.st_size:
            entry = {"mtime_ns": stat.st_mtime_ns, "size": stat.st_size}
            self._files[key] = entry
        return entry

    # ------------------------------------------------------------ summaries

    def get_summary(self, path: str) -> Optional[FileSummary]:
        entry = self._valid_entry(path)
        if entry is None or entry.get(
                "summary_version") != SUMMARY_SCHEMA_VERSION:
            self.misses += 1
            return None
        raw = entry.get("summary")
        if not isinstance(raw, dict):
            self.misses += 1
            return None
        try:
            summary = FileSummary.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        # Findings must report the path as the caller spelled it.
        summary.path = path
        return summary

    def put_summary(self, path: str, summary: FileSummary) -> None:
        entry = self._fresh_entry(path)
        if entry is None:
            return
        entry["summary_version"] = SUMMARY_SCHEMA_VERSION
        entry["summary"] = summary.to_dict()
        self._dirty = True

    # ------------------------------------------------------------- findings

    def get_findings(self, path: str,
                     rules_key: str) -> Optional[Tuple[List[Dict[str, Any]],
                                                       int]]:
        entry = self._valid_entry(path)
        if entry is None:
            self.misses += 1
            return None
        lint = entry.get("lint")
        if not isinstance(lint, dict) or rules_key not in lint:
            self.misses += 1
            return None
        cached = lint[rules_key]
        if not isinstance(cached, dict) \
                or not isinstance(cached.get("findings"), list):
            self.misses += 1
            return None
        self.hits += 1
        return cached["findings"], int(cached.get("suppressed", 0))

    def put_findings(self, path: str, rules_key: str,
                     findings: List[Dict[str, Any]],
                     suppressed: int) -> None:
        entry = self._fresh_entry(path)
        if entry is None:
            return
        lint = entry.setdefault("lint", {})
        lint[rules_key] = {"findings": findings, "suppressed": suppressed}
        self._dirty = True


def rules_cache_key(codes: Sequence[str],
                    vocabulary: Optional[Iterable[str]]) -> str:
    """Stable key for one (rule set, event vocabulary) configuration.

    The summary, effect, and concurrency schema versions are folded in
    so an upgraded analyzer never replays findings derived from an older
    extraction or an older effect/concurrency interpretation (the cached
    blobs key off this).
    """
    vocab = ",".join(sorted(vocabulary)) if vocabulary is not None else "-"
    blob = "|".join((
        f"s{SUMMARY_SCHEMA_VERSION}",
        f"e{EFFECT_SCHEMA_VERSION}",
        f"c{CONCURRENCY_SCHEMA_VERSION}",
        ",".join(sorted(codes)),
        vocab,
    ))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


# ------------------------------------------------------------------- project


#: A call-graph node: (file path, function qualname).
NodeKey = Tuple[str, str]


class Project:
    """All file summaries of one tree, with the cross-file indexes."""

    def __init__(self, summaries: Mapping[str, FileSummary]) -> None:
        self.summaries: Dict[str, FileSummary] = dict(summaries)
        self.modules: Dict[str, str] = {}
        for path, summary in self.summaries.items():
            if summary.module is not None:
                self.modules[summary.module] = path
        #: class name -> [(path, class name)] (cross-file, by simple name).
        self.class_index: Dict[str, List[Tuple[str, str]]] = {}
        #: method name -> [(path, qualname)] over all class methods.
        self.method_index: Dict[str, List[NodeKey]] = {}
        for path, summary in self.summaries.items():
            for cls in summary.classes.values():
                self.class_index.setdefault(cls.name, []).append(
                    (path, cls.name))
                for method in cls.methods:
                    self.method_index.setdefault(method, []).append(
                        (path, f"{cls.name}.{method}"))
        self._ancestors: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        self._descendants: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        self._build_hierarchy()
        self._exception_ancestors = self._build_exception_names()

    # ----------------------------------------------------------- hierarchy

    def _resolve_base(self, path: str, summary: FileSummary,
                      base: str) -> List[Tuple[str, str]]:
        parts = base.split(".")
        if len(parts) == 1:
            if base in summary.classes:
                return [(path, base)]
            target = summary.from_imports.get(base)
            if target is not None:
                module_path = self.modules.get(target[0])
                if module_path is not None:
                    module_summary = self.summaries[module_path]
                    if target[1] in module_summary.classes:
                        return [(module_path, target[1])]
        return self.class_index.get(parts[-1], [])

    def _build_hierarchy(self) -> None:
        parents: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for path, summary in self.summaries.items():
            for cls in summary.classes.values():
                key = (path, cls.name)
                parents[key] = set()
                for base in cls.bases:
                    for parent in self._resolve_base(path, summary, base):
                        if parent != key:
                            parents[key].add(parent)
        for key in parents:
            ancestors: Set[Tuple[str, str]] = set()
            frontier = list(parents[key])
            while frontier:
                parent = frontier.pop()
                if parent in ancestors:
                    continue
                ancestors.add(parent)
                frontier.extend(parents.get(parent, ()))
            self._ancestors[key] = ancestors
            for ancestor in ancestors:
                self._descendants.setdefault(ancestor, set()).add(key)

    def related_classes(self, path: str,
                        cls: str) -> Set[Tuple[str, str]]:
        """The dispatch family of a class: itself, ancestors, descendants."""
        key = (path, cls)
        related = {key}
        related |= self._ancestors.get(key, set())
        related |= self._descendants.get(key, set())
        return related

    # ------------------------------------------------- exception hierarchy

    def _build_exception_names(self) -> Dict[str, FrozenSet[str]]:
        base_names: Dict[str, Set[str]] = {}
        for summary in self.summaries.values():
            for cls in summary.classes.values():
                base_names.setdefault(cls.name, set()).update(
                    base.split(".")[-1] for base in cls.bases)
        closure: Dict[str, FrozenSet[str]] = {}
        for name in base_names:
            seen: Set[str] = set()
            frontier = list(base_names.get(name, ()))
            while frontier:
                parent = frontier.pop()
                if parent in seen:
                    continue
                seen.add(parent)
                frontier.extend(base_names.get(parent, ()))
            closure[name] = frozenset(seen)
        return closure

    def exception_family(self, root: str) -> FrozenSet[str]:
        """``root`` plus every project class transitively deriving from it
        (by name) — e.g. the injected-fault exception taxonomy."""
        family = {root}
        for name, ancestors in self._exception_ancestors.items():
            if root in ancestors:
                family.add(name)
        return frozenset(family)

    def guard_covers(self, guard: str, exception: str) -> bool:
        """Does ``except <guard>`` catch an ``exception`` instance?"""
        if guard in (CATCH_ALL, "BaseException") or guard == exception:
            return True
        ancestors = self._exception_ancestors.get(exception)
        if ancestors is not None:
            return guard in ancestors or (
                guard == "Exception"
                and not ancestors & _NON_EXCEPTION_BUILTINS)
        return guard == "Exception" \
            and exception not in _NON_EXCEPTION_BUILTINS

    def guards_cover(self, guards: Iterable[str], exception: str) -> bool:
        return any(self.guard_covers(guard, exception) for guard in guards)

    # ----------------------------------------------------------- functions

    def function(self, key: NodeKey) -> Optional[FunctionSummary]:
        summary = self.summaries.get(key[0])
        if summary is None:
            return None
        return summary.functions.get(key[1])

    def find_functions(self, path_suffix: str,
                       names: Iterable[str],
                       match_qualname: bool = False) -> List[NodeKey]:
        """Functions whose file path ends with ``path_suffix`` and whose
        (last-segment or full) qualname is in ``names``."""
        wanted = set(names)
        found: List[NodeKey] = []
        suffix = path_suffix.replace("\\", "/")
        for path, summary in self.summaries.items():
            if not path.replace("\\", "/").endswith(suffix):
                continue
            for qualname in summary.functions:
                name = qualname if match_qualname \
                    else qualname.rsplit(".", 1)[-1]
                if name in wanted:
                    found.append((path, qualname))
        return sorted(found)


def load_project(files: Sequence[str],
                 cache: Optional[AnalysisCache] = None) -> Project:
    """Summarize ``files`` (cache-aware) and build the :class:`Project`.

    Unreadable or unparseable files are skipped — the per-file lint rules
    already report those as RC100.
    """
    summaries: Dict[str, FileSummary] = {}
    for path in files:
        summary = cache.get_summary(path) if cache is not None else None
        if summary is None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                summary = summarize_source(source, path)
            except (OSError, SyntaxError):
                continue
            if cache is not None:
                cache.put_summary(path, summary)
        summaries[path] = summary
    return Project(summaries)


# ---------------------------------------------------------------- call graph


class CallGraph:
    """The resolved project call graph: edges, reachability, escapes."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: caller -> [(callee, the call site that creates the edge)]
        self.edges: Dict[NodeKey, List[Tuple[NodeKey, CallSite]]] = {}
        #: ``(caller, callee, line)`` of edges resolved only by the
        #: name-based method fallback (:meth:`_fallback`).  Weak edges
        #: over-approximate receiver identity, which is fine for the
        #: reachability rules but poison for the lockset analysis —
        #: RC401 walks strong edges only (see
        #: :mod:`repro.analysis.concurrency`).
        self.weak_edges: Set[Tuple[NodeKey, NodeKey, int]] = set()
        for path, summary in project.summaries.items():
            for qualname, fn in summary.functions.items():
                caller = (path, qualname)
                out: List[Tuple[NodeKey, CallSite]] = []
                for site in fn.calls:
                    strong = self._resolve_strong(path, summary,
                                                  qualname, site)
                    callees = strong if strong is not None \
                        else self._fallback(site.parts)
                    for callee in callees:
                        out.append((callee, site))
                        if strong is None:
                            self.weak_edges.add(
                                (caller, callee, site.line))
                self.edges[caller] = out

    # ---------------------------------------------------------- resolution

    def _enclosing_class(self, summary: FileSummary,
                         qualname: str) -> Optional[str]:
        head = qualname.split(".", 1)[0]
        return head if head in summary.classes else None

    def _module_member(self, module_path: str,
                       name: str) -> List[NodeKey]:
        summary = self.project.summaries[module_path]
        if name in summary.functions:
            return [(module_path, name)]
        if name in summary.classes:
            return self._class_constructor(module_path, name)
        return []

    def _class_constructor(self, path: str, cls: str) -> List[NodeKey]:
        init = f"{cls}.__init__"
        summary = self.project.summaries[path]
        if init in summary.functions:
            return [(path, init)]
        # Synthesized __init__ (dataclass) — inherit the nearest defined one.
        for ancestor_path, ancestor in sorted(
                self.project._ancestors.get((path, cls), ())):
            candidate = f"{ancestor}.__init__"
            if candidate in self.project.summaries[
                    ancestor_path].functions:
                return [(ancestor_path, candidate)]
        return []

    def _hierarchy_methods(self, path: str, cls: str, method: str,
                           include_ancestors: bool = True) -> List[NodeKey]:
        keys: List[NodeKey] = []
        family = self.project.related_classes(path, cls) \
            if include_ancestors else (
                {(path, cls)} | self.project._descendants.get(
                    (path, cls), set()))
        for family_path, family_cls in sorted(family):
            qualname = f"{family_cls}.{method}"
            if qualname in self.project.summaries[family_path].functions:
                keys.append((family_path, qualname))
        return keys

    def _module_alias_targets(self, summary: FileSummary,
                              parts: Tuple[str, ...]) -> List[NodeKey]:
        """Resolve ``alias.x.y()`` where ``alias`` names an imported
        module (or package); tries the longest module prefix first."""
        base = summary.import_aliases.get(parts[0])
        if base is None:
            target = summary.from_imports.get(parts[0])
            if target is None:
                return []
            dotted = f"{target[0]}.{target[1]}"
            if dotted not in self.project.modules:
                return []
            base = dotted
        for split in range(len(parts) - 1, 0, -1):
            module = base if split == 1 else \
                base + "." + ".".join(parts[1:split])
            module_path = self.project.modules.get(module)
            if module_path is None:
                continue
            remainder = parts[split:]
            if len(remainder) == 1:
                return self._module_member(module_path, remainder[0])
            if len(remainder) == 2:
                module_summary = self.project.summaries[module_path]
                if remainder[0] in module_summary.classes:
                    return self._hierarchy_methods(
                        module_path, remainder[0], remainder[1],
                        include_ancestors=False)
            return []
        return []

    def _resolve_call(self, path: str, summary: FileSummary,
                      qualname: str, site: CallSite) -> List[NodeKey]:
        strong = self._resolve_strong(path, summary, qualname, site)
        if strong is not None:
            return strong
        return self._fallback(site.parts)

    def _resolve_strong(self, path: str, summary: FileSummary,
                        qualname: str,
                        site: CallSite) -> Optional[List[NodeKey]]:
        """Structure-based resolution (imports, class hierarchy, nesting);
        ``None`` when only the name-based method fallback applies."""
        parts = site.parts
        if len(parts) == 1:
            name = parts[0]
            # A nested function of this function or an enclosing one.
            prefix_parts = qualname.split(".")
            for depth in range(len(prefix_parts), 0, -1):
                nested = ".".join(prefix_parts[:depth]) + "." + name
                if nested in summary.functions:
                    return [(path, nested)]
            if name in summary.functions:
                return [(path, name)]
            if name in summary.classes:
                return self._class_constructor(path, name)
            target = summary.from_imports.get(name)
            if target is not None:
                module_path = self.project.modules.get(target[0])
                if module_path is not None:
                    return self._module_member(module_path, target[1])
            return []

        if parts[0] in ("self", "cls"):
            cls = self._enclosing_class(summary, qualname)
            if cls is not None and len(parts) == 2:
                resolved = self._hierarchy_methods(path, cls, parts[1])
                if resolved:
                    return resolved
            return None

        alias_targets = self._module_alias_targets(summary, parts)
        if alias_targets:
            return alias_targets

        if len(parts) == 2:
            # Cls.method() through a locally known class name.
            if parts[0] in summary.classes:
                resolved = self._hierarchy_methods(
                    path, parts[0], parts[1], include_ancestors=False)
                if resolved:
                    return resolved
            target = summary.from_imports.get(parts[0])
            if target is not None:
                module_path = self.project.modules.get(target[0])
                if module_path is not None and target[1] in \
                        self.project.summaries[module_path].classes:
                    resolved = self._hierarchy_methods(
                        module_path, target[1], parts[1],
                        include_ancestors=False)
                    if resolved:
                        return resolved

        return None

    def _fallback(self, parts: Tuple[str, ...]) -> List[NodeKey]:
        """Name-based over-approximation for unresolvable ``obj.m()``."""
        method = parts[-1]
        if method in _BUILTIN_METHOD_NAMES:
            return []
        return list(self.project.method_index.get(method, ()))

    # -------------------------------------------------------- reachability

    def reachable_from(
        self, entries: Sequence[NodeKey],
        strong_only: bool = False,
    ) -> Dict[NodeKey, Optional[Tuple[NodeKey, CallSite]]]:
        """BFS closure from ``entries``.

        Returns ``node -> (parent, call site)`` parent pointers (entries
        map to ``None``); breadth-first order makes every recovered chain
        a shortest witness.  With ``strong_only`` the walk skips
        name-fallback edges (:attr:`weak_edges`) — the lockset analysis
        uses this because fallback edges fabricate receiver aliasing.
        """
        parents: Dict[NodeKey, Optional[Tuple[NodeKey, CallSite]]] = {}
        frontier: List[NodeKey] = []
        for entry in entries:
            if entry not in parents:
                parents[entry] = None
                frontier.append(entry)
        head = 0
        while head < len(frontier):
            node = frontier[head]
            head += 1
            for callee, site in self.edges.get(node, ()):
                if strong_only and (node, callee, site.line) \
                        in self.weak_edges:
                    continue
                if callee not in parents:
                    parents[callee] = (node, site)
                    frontier.append(callee)
        return parents

    @staticmethod
    def call_chain(
        parents: Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]],
        node: NodeKey,
    ) -> List[NodeKey]:
        """Entry-to-node witness chain recovered from BFS parent pointers."""
        chain = [node]
        seen = {node}
        cursor: Optional[Tuple[NodeKey, CallSite]] = parents.get(node)
        while cursor is not None:
            parent = cursor[0]
            if parent in seen:  # defensive: parent maps cannot cycle
                break
            chain.append(parent)
            seen.add(parent)
            cursor = parents.get(parent)
        chain.reverse()
        return chain

    # ------------------------------------------------------------- escapes

    def escaping_exceptions(
        self,
    ) -> Dict[NodeKey, FrozenSet[Tuple[str, str, int]]]:
        """Fixpoint escape analysis: for every function, the set of
        ``(exception name, origin path, origin line)`` triples that can
        propagate out of it uncaught.

        A raise site escapes unless an enclosing handler covers its type;
        a callee's escaping exceptions flow through each call site unless
        the site's enclosing handlers cover them.  Monotone over a finite
        lattice, so iteration terminates.
        """
        project = self.project
        escaping: Dict[NodeKey, Set[Tuple[str, str, int]]] = {}
        for path, summary in project.summaries.items():
            for qualname, fn in summary.functions.items():
                base: Set[Tuple[str, str, int]] = set()
                for site in fn.raises:
                    names = ([site.exception] if site.exception is not None
                             else [name for name in site.handler_types
                                   if name != CATCH_ALL])
                    for name in names:
                        if not project.guards_cover(site.guards, name):
                            base.add((name, path, site.line))
                escaping[(path, qualname)] = base

        changed = True
        while changed:
            changed = False
            for caller, out_edges in self.edges.items():
                current = escaping[caller]
                for callee, site in out_edges:
                    for triple in escaping.get(callee, ()):
                        if triple in current:
                            continue
                        if project.guards_cover(site.guards, triple[0]):
                            continue
                        current.add(triple)
                        changed = True
        return {key: frozenset(value) for key, value in escaping.items()}


def build_call_graph(files: Sequence[str],
                     cache: Optional[AnalysisCache] = None) -> CallGraph:
    """Summarize ``files`` and resolve them into a :class:`CallGraph`."""
    return CallGraph(load_project(files, cache=cache))
