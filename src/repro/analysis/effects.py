"""Interprocedural effect/purity analysis (the RC3xx substrate).

The summarizer (:mod:`repro.analysis.callgraph`) records *local* effect
facts per function: mutations of module/class-level state, mutations of
escaping parameters, I/O calls, ambient-state reads, wall-clock reads and
global-RNG draws.  This module lifts those facts to whole-program answers:

* :meth:`EffectAnalysis.effect_sets` — a fixpoint over the call graph
  computing, for every function, the set of effect *kinds* it can perform
  transitively (monotone over a finite lattice, so iteration terminates);
* :meth:`EffectAnalysis.slice_sites` — the concrete effect sites inside
  the BFS closure of a set of entry points, each with the shortest witness
  chain that proves reachability (the RC301/RC302 evidence and the purity
  manifest's effect listing).

Purity policy
-------------

A scenario is **cacheable-pure** when its transitive code slice performs
no global-state mutation, no I/O and no ambient read, and reads no wall
clock (:data:`IMPURE_KINDS`).  Two effect kinds are deliberately excluded
from the verdict:

* ``unseeded-random`` — ``ScenarioSpec.build()`` reseeds the global RNG
  from ``spec.seed`` before the factory runs, so global-RNG draws below a
  factory are deterministic per spec (the RC102/RC202 rules still police
  the simulator hot path separately);
* ``mutates-args`` — factories receive only immutable arguments (the
  seed) and specs are frozen dataclasses, so argument mutation cannot
  leak state between runs.

Sites suppressed by a ``# repro: noqa[<code>]`` comment on the sink line
are excluded from both the lint findings *and* the manifest (the code per
kind is :data:`KIND_CODES`): a sanctioned effect is sanctioned everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionSummary,
    NodeKey,
)

EFFECT_MUTATES_GLOBAL = "mutates-global"
EFFECT_MUTATES_ARGS = "mutates-args"
EFFECT_IO = "io"
EFFECT_AMBIENT = "reads-ambient"
EFFECT_WALLCLOCK = "wallclock"
EFFECT_RANDOM = "unseeded-random"

#: Every effect kind the analysis tracks, in manifest order.
EFFECT_KINDS: Tuple[str, ...] = (
    EFFECT_MUTATES_GLOBAL,
    EFFECT_MUTATES_ARGS,
    EFFECT_IO,
    EFFECT_AMBIENT,
    EFFECT_WALLCLOCK,
    EFFECT_RANDOM,
)

#: Effect kinds that disqualify a scenario from content-addressed caching
#: (see the module docstring for why the other two are excluded).
IMPURE_KINDS: FrozenSet[str] = frozenset({
    EFFECT_MUTATES_GLOBAL,
    EFFECT_IO,
    EFFECT_AMBIENT,
    EFFECT_WALLCLOCK,
})

#: The lint code whose ``# repro: noqa[...]`` sanctions a site per kind.
#: Cache-like global mutations answer to RC302 instead of RC301 (see
#: :func:`is_cache_like`); both are honoured when filtering.
KIND_CODES: Mapping[str, Tuple[str, ...]] = {
    EFFECT_MUTATES_GLOBAL: ("RC301", "RC302"),
    EFFECT_MUTATES_ARGS: ("RC301",),
    EFFECT_IO: ("RC304",),
    EFFECT_AMBIENT: ("RC304",),
    EFFECT_WALLCLOCK: ("RC201",),
    EFFECT_RANDOM: ("RC202",),
}


def is_cache_like(root: str) -> bool:
    """Does a mutated global look like a memo/cache (the RC302 family)?"""
    lowered = root.lower()
    return "cache" in lowered or "memo" in lowered


@dataclass(frozen=True)
class EffectSite:
    """One concrete effect occurrence, attributed to its function."""

    kind: str
    path: str
    qualname: str
    line: int
    column: int
    description: str
    locked: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path,
                "qualname": self.qualname, "line": self.line,
                "column": self.column, "description": self.description,
                "locked": self.locked}


def local_effect_sites(path: str, fn: FunctionSummary) -> List[EffectSite]:
    """The effect sites one function performs *directly* (no callees)."""
    sites: List[EffectSite] = []
    for mutation in fn.mutations:
        kind = EFFECT_MUTATES_GLOBAL if mutation.scope == "global" \
            else EFFECT_MUTATES_ARGS
        sites.append(EffectSite(
            kind=kind, path=path, qualname=fn.qualname,
            line=mutation.line, column=mutation.column,
            description=mutation.target, locked=mutation.locked))
    groups = ((EFFECT_IO, fn.io_sinks), (EFFECT_AMBIENT, fn.ambient_sinks),
              (EFFECT_WALLCLOCK, fn.wallclock_sinks),
              (EFFECT_RANDOM, fn.random_sinks))
    for kind, sinks in groups:
        for sink in sinks:
            sites.append(EffectSite(
                kind=kind, path=path, qualname=fn.qualname,
                line=sink.line, column=sink.column,
                description=sink.description))
    return sites


class EffectAnalysis:
    """Whole-program effect answers over a resolved :class:`CallGraph`."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.project = graph.project
        self._local: Dict[NodeKey, Tuple[EffectSite, ...]] = {}
        for path, summary in self.project.summaries.items():
            for qualname, fn in summary.functions.items():
                self._local[(path, qualname)] = tuple(
                    local_effect_sites(path, fn))

    def local_sites(self, node: NodeKey) -> Tuple[EffectSite, ...]:
        return self._local.get(node, ())

    # -------------------------------------------------------- effect sets

    def effect_sets(self) -> Dict[NodeKey, FrozenSet[str]]:
        """Fixpoint: for every function, the transitive effect-kind set.

        ``effects(caller) ⊇ effects(callee)`` for every resolved call
        edge; seeded with each function's local sites.
        """
        effects: Dict[NodeKey, Set[str]] = {
            node: {site.kind for site in sites}
            for node, sites in self._local.items()
        }
        changed = True
        while changed:
            changed = False
            for caller, out_edges in self.graph.edges.items():
                current = effects.setdefault(caller, set())
                for callee, _site in out_edges:
                    for kind in effects.get(callee, ()):
                        if kind not in current:
                            current.add(kind)
                            changed = True
        return {node: frozenset(kinds) for node, kinds in effects.items()}

    # ------------------------------------------------------------- slices

    def slice_from(
        self, entries: Sequence[NodeKey],
    ) -> Dict[NodeKey, Optional[Tuple[NodeKey, CallSite]]]:
        """BFS closure from ``entries`` (parent pointers, see
        :meth:`CallGraph.reachable_from`)."""
        return self.graph.reachable_from(entries)

    def slice_files(
        self,
        parents: Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]],
    ) -> List[str]:
        """Sorted distinct file paths touched by a slice."""
        return sorted({path for path, _ in parents})

    def slice_sites(
        self,
        parents: Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]],
        kinds: Optional[Iterable[str]] = None,
        respect_suppressions: bool = True,
    ) -> List[Tuple[EffectSite, List[NodeKey]]]:
        """Effect sites inside a slice, each with its witness chain.

        ``kinds`` restricts the effect kinds returned (default: all).
        With ``respect_suppressions`` (the default), sites whose sink line
        carries a ``# repro: noqa`` for the kind's code
        (:data:`KIND_CODES`) are dropped — a sanctioned effect neither
        lints nor taints the purity verdict.
        """
        wanted = frozenset(kinds) if kinds is not None \
            else frozenset(EFFECT_KINDS)
        results: List[Tuple[EffectSite, List[NodeKey]]] = []
        suppression_cache: Dict[str, Any] = {}
        for node in parents:
            for site in self._local.get(node, ()):
                if site.kind not in wanted:
                    continue
                if respect_suppressions and self._suppressed(
                        site, suppression_cache):
                    continue
                chain = CallGraph.call_chain(parents, node)
                results.append((site, chain))
        results.sort(key=lambda item: (item[0].path, item[0].line,
                                       item[0].column, item[0].kind))
        return results

    def _suppressed(self, site: EffectSite,
                    cache: Dict[str, Any]) -> bool:
        index = cache.get(site.path)
        if index is None:
            summary = self.project.summaries.get(site.path)
            if summary is None:
                return False
            index = summary.suppression_index()
            cache[site.path] = index
        return any(index.is_suppressed(site.line, code)
                   for code in KIND_CODES.get(site.kind, ()))
