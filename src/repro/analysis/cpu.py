"""CPU-utilization model for MichiCAN's interrupt handler (Sec. V-D).

The hardware evaluation measured the handler's execution time with an
external cycle counter (ESP8266 at 6.25 ns resolution).  Here we model the
handler cost per executed path of Algorithm 1 on calibrated MCU profiles:

    utilization = cycles_per_invocation / (clock_hz * nominal_bit_time)

Calibration anchors from the paper (combined load, restbus traffic):

* Arduino Due (SAM3X8E, 84 MHz): ~40 % at 125 kbit/s full scenario,
  ~30 % light scenario, "implying an 80 % load for a 250 kbit/s bus";
* NXP S32K144 (112 MHz): ~44 % at 500 kbit/s — the Due's dominant cost is
  its notoriously slow interrupt entry/exit ([66] in the paper), which the
  NXP part does in a fraction of the cycles.

The per-path constants below are *model parameters*, not measurements; they
were chosen once to land on the anchors and are used unchanged for all
derived results (sweeps over bus speed, scenario and FSM size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.can.constants import nominal_bit_time
from repro.core.detection import FirmwareCounters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class McuProfile:
    """Cycle costs of Algorithm 1's code paths on one MCU.

    Attributes:
        name: Marketing name.
        clock_hz: Core clock.
        isr_overhead_cycles: Interrupt entry + exit (pipeline flush, stack).
        idle_path_cycles: Lines 24-31 (SOF hunting) past the pin read.
        frame_path_cycles: Lines 3-19 (stuff bookkeeping, frame array).
        fsm_step_base_cycles: One FSM transition (table fetch + branch).
        fsm_depth_factor: Extra cycles per log2(FSM states) — larger tables
            spill out of the fastest memory and branch less predictably.
        attack_path_cycles: Counterattack bookkeeping (lines 16-23).
    """

    name: str
    clock_hz: float
    isr_overhead_cycles: float
    idle_path_cycles: float
    frame_path_cycles: float
    fsm_step_base_cycles: float
    fsm_depth_factor: float
    attack_path_cycles: float

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz


#: Atmel SAM3X8E on the Arduino Due: slow ISR entry/exit dominates.
ARDUINO_DUE = McuProfile(
    name="Arduino Due (SAM3X8E @ 84 MHz)",
    clock_hz=84e6,
    isr_overhead_cycles=160,
    idle_path_cycles=30,
    frame_path_cycles=130,
    fsm_step_base_cycles=18,
    fsm_depth_factor=5.0,
    attack_path_cycles=40,
)

#: NXP S32K144: automotive-grade Cortex-M4F, fast interrupt path.
NXP_S32K144 = McuProfile(
    name="NXP S32K144 (Cortex-M4F @ 112 MHz)",
    clock_hz=112e6,
    isr_overhead_cycles=42,
    idle_path_cycles=14,
    frame_path_cycles=62,
    fsm_step_base_cycles=10,
    fsm_depth_factor=3.0,
    attack_path_cycles=22,
)

#: Microchip SAM V71 (Sec. VI-B candidate platform).
SAM_V71 = McuProfile(
    name="Microchip SAM V71 (Cortex-M7 @ 150 MHz)",
    clock_hz=150e6,
    isr_overhead_cycles=38,
    idle_path_cycles=12,
    frame_path_cycles=55,
    fsm_step_base_cycles=9,
    fsm_depth_factor=2.5,
    attack_path_cycles=20,
)

#: STMicro SPC58EC (Sec. VI-B candidate platform).
SPC58EC = McuProfile(
    name="STMicro SPC58EC (e200z4 @ 180 MHz)",
    clock_hz=180e6,
    isr_overhead_cycles=40,
    idle_path_cycles=13,
    frame_path_cycles=58,
    fsm_step_base_cycles=9,
    fsm_depth_factor=2.5,
    attack_path_cycles=20,
)

PROFILES: Dict[str, McuProfile] = {
    "arduino_due": ARDUINO_DUE,
    "nxp_s32k144": NXP_S32K144,
    "sam_v71": SAM_V71,
    "spc58ec": SPC58EC,
}


@dataclass(frozen=True)
class CpuUtilization:
    """Idle, active and combined CPU load (Sec. V-D terminology)."""

    idle_load: float
    active_load: float
    combined_load: float

    def feasible(self, margin: float = 1.0) -> bool:
        """Can the MCU keep up (every handler finishes within a bit time)?"""
        return self.active_load <= margin


def _fsm_step_cycles(profile: McuProfile, fsm_states: int) -> float:
    return profile.fsm_step_base_cycles + profile.fsm_depth_factor * math.log2(
        max(2, fsm_states)
    )


def analytic_utilization(
    profile: McuProfile,
    bus_speed: int,
    busy_fraction: float = 0.4,
    fsm_states: int = 512,
    mean_fsm_steps_per_frame: float = 9.0,
    frame_positions_processed: float = 19.0,
    light_scenario: bool = False,
) -> CpuUtilization:
    """Closed-form CPU load for a traffic mix.

    Args:
        busy_fraction: Fraction of bit times spent inside frames (the bus
            load the firmware actually processes; the paper's restbus runs
            sit around 0.4).
        fsm_states: Size of the deployed detection FSM.
        mean_fsm_steps_per_frame: FSM transitions per frame before the
            verdict (paper mean: 9); the light scenario's own-ID FSM
            mismatches almost immediately.
        frame_positions_processed: Handler invocations per frame that take
            the frame path (Algorithm 1 stops at position 20).
    """
    if not 0.0 <= busy_fraction <= 1.0:
        raise ConfigurationError("busy_fraction must be within [0, 1]")
    bit_cycles = profile.clock_hz * nominal_bit_time(bus_speed)

    idle_cycles = profile.isr_overhead_cycles + profile.idle_path_cycles
    if light_scenario:
        # The own-ID FSM rejects after ~2 bits; afterwards the handler can
        # fall back to the cheap SOF-hunting path for the rest of the frame.
        # The ISR entry/exit cost is paid on *every* invocation; only the
        # body is amortised over the frame positions.
        fsm_cycles = 2.0 * _fsm_step_cycles(profile, 12)
        body = (
            3.0 * profile.frame_path_cycles
            + (frame_positions_processed - 3.0) * profile.idle_path_cycles
            + fsm_cycles
        ) / frame_positions_processed
        frame_cycles = profile.isr_overhead_cycles + body
    else:
        fsm_cycles = mean_fsm_steps_per_frame * _fsm_step_cycles(profile, fsm_states)
        frame_cycles = (
            profile.isr_overhead_cycles
            + profile.frame_path_cycles
            + fsm_cycles / frame_positions_processed
        )

    idle_load = idle_cycles / bit_cycles
    active_load = frame_cycles / bit_cycles
    combined = busy_fraction * active_load + (1 - busy_fraction) * idle_load
    return CpuUtilization(
        idle_load=idle_load, active_load=active_load, combined_load=combined
    )


def utilization_from_counters(
    profile: McuProfile,
    counters: FirmwareCounters,
    bus_speed: int,
    fsm_states: int,
    attack_bits: Optional[int] = None,
) -> CpuUtilization:
    """CPU load from the firmware's actual execution counters (a sim run).

    This is the measured analogue of :func:`analytic_utilization`: every
    handler invocation is costed by the path it actually took.
    """
    if counters.interrupts == 0:
        raise ConfigurationError("no handler invocations recorded")
    bit_cycles = profile.clock_hz * nominal_bit_time(bus_speed)

    idle_cycles = counters.idle_bits * (
        profile.isr_overhead_cycles + profile.idle_path_cycles
    )
    frame_cycles = counters.frame_bits * (
        profile.isr_overhead_cycles + profile.frame_path_cycles
    )
    fsm_cycles = counters.fsm_steps * _fsm_step_cycles(profile, fsm_states)
    attacks = attack_bits if attack_bits is not None else (
        counters.counterattacks * 6
    )
    attack_cycles = attacks * (
        profile.isr_overhead_cycles + profile.attack_path_cycles
    )

    total = idle_cycles + frame_cycles + fsm_cycles + attack_cycles
    combined = total / (counters.interrupts * bit_cycles)
    idle_load = (
        profile.isr_overhead_cycles + profile.idle_path_cycles
    ) / bit_cycles
    frame_share = max(1, counters.frame_bits)
    active_load = (
        (frame_cycles + fsm_cycles) / frame_share
    ) / bit_cycles
    return CpuUtilization(
        idle_load=idle_load, active_load=active_load, combined_load=combined
    )


def max_feasible_bus_speed(
    profile: McuProfile,
    fsm_states: int = 512,
    light_scenario: bool = False,
) -> int:
    """Highest standard bus speed whose worst-case handler fits in one bit
    time (why the Due tops out around 125 kbit/s but the S32K144 does 500)."""
    for speed in (1_000_000, 500_000, 250_000, 125_000, 50_000):
        load = analytic_utilization(
            profile, speed, busy_fraction=1.0, fsm_states=fsm_states,
            light_scenario=light_scenario,
        )
        if load.feasible():
            return speed
    return 0
