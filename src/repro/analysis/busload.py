"""Bus-load analysis (Sec. V-E).

The paper computes steady-state bus load as ``b = (s_f / f_baud) * sum(1/p_m)``
and reasons about the transient spike a MichiCAN counterattack adds: a
~2.5 ms message (at 50 kbit/s) occupies the bus for up to ~25 ms including
all destroyed retransmissions — a 10x spike, bounded well below message
deadlines — versus Parrot's sustained ~97.7 % flooding overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.can.constants import AVERAGE_FRAME_BITS, IFS_BITS


def bus_load(
    periods_seconds: Iterable[float],
    bus_speed: int,
    frame_bits: int = AVERAGE_FRAME_BITS,
) -> float:
    """Steady-state bus load: b = (s_f / f_baud) * sum(1 / p_m).

    Args:
        periods_seconds: Periods of all periodic messages, in seconds.
        bus_speed: Bus speed in bit/s.
        frame_bits: Average frame length including stuff bits (s_f).
    """
    total_rate = 0.0
    for period in periods_seconds:
        if period <= 0:
            raise ValueError(f"message period must be positive, got {period}")
        total_rate += 1.0 / period
    return frame_bits / bus_speed * total_rate


def counterattack_spike_factor(
    busoff_bits: int, frame_bits: int = AVERAGE_FRAME_BITS
) -> float:
    """How much longer the attacked message occupies the bus vs. a clean
    transmission (the paper's "we increase the bus load by 10x")."""
    if frame_bits <= 0:
        raise ValueError("frame_bits must be positive")
    return busoff_bits / frame_bits


def deadline_relative_overhead(busoff_bits: int, deadline_bits: int) -> float:
    """Counterattack duration relative to a message deadline.

    Paper Sec. V-E: ~2.5-5 % against 500-1000 ms low-priority deadlines,
    ~25 % against 100 ms high-priority deadlines (at 50 kbit/s).
    """
    if deadline_bits <= 0:
        raise ValueError("deadline_bits must be positive")
    return busoff_bits / deadline_bits


def parrot_flooding_overhead(frame_bits: int = 125) -> float:
    """Parrot's bus-load overhead while flooding: s_f / (s_f + IFS).

    The paper: 125 / 128 ~ 97.7 %.
    """
    return frame_bits / (frame_bits + IFS_BITS)


@dataclass(frozen=True)
class BusLoadComparison:
    """MichiCAN vs Parrot bus-load figures for one scenario."""

    steady_state: float
    michican_during_busoff: float
    parrot_during_flooding: float

    @property
    def michican_advantage(self) -> float:
        """How many times lower MichiCAN's defense-time load is."""
        if self.michican_during_busoff <= 0:
            return float("inf")
        return self.parrot_during_flooding / self.michican_during_busoff


def compare_defenses(
    steady_state_load: float,
    busoff_bits: int,
    busoff_window_bits: int,
) -> BusLoadComparison:
    """Bus load during defense for both systems.

    MichiCAN's defense-time load is the bus-off fight amortised over the
    observation window plus the benign baseline; Parrot's is its flooding
    rate (it saturates regardless of window).
    """
    if busoff_window_bits <= 0:
        raise ValueError("busoff_window_bits must be positive")
    michican = min(1.0, steady_state_load + busoff_bits / busoff_window_bits)
    return BusLoadComparison(
        steady_state=steady_state_load,
        michican_during_busoff=michican,
        parrot_during_flooding=parrot_flooding_overhead(),
    )
