"""Theoretical bus-off time calculations: Table III in closed form.

Terminology follows Sec. V-C.  With SOF counted as frame bit 1, the error
frame starts right after the last bit MichiCAN's pulse corrupts:

* best case — a stuff error already in the RTR region: the error frame
  starts at the 14th bit, so t_a = 13 + 14 + 3 = 30 bits;
* worst case — the bit error lands on the 4th DLC bit: the error frame
  starts at the 19th bit, t_a = 18 + 14 + 3 = 35 bits;
* error-passive retransmissions add the 8-bit suspend period: t_p = t_a + 8.

A full undisturbed bus-off needs 16 error-active + 16 error-passive rounds:
16 * (35 + 43) = 1248 bits (the paper's Table III row for Exp. 2/4/6).
Benign/adversarial interruptions extend individual rounds by whole frame
lengths (the c/z terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.can.constants import (
    ACTIVE_ERROR_FLAG_BITS,
    AVERAGE_FRAME_BITS,
    ERROR_DELIMITER_BITS,
    IFS_BITS,
    SUSPEND_TRANSMISSION_BITS,
)

#: Error frame length: 6-bit flag + 8-bit delimiter.
ERROR_FRAME_BITS = ACTIVE_ERROR_FLAG_BITS + ERROR_DELIMITER_BITS

#: Frame bits transmitted before the error frame in the best case (stuff
#: error during the RTR bit: SOF + 11 ID + RTR = 13).
BEST_CASE_PREFIX_BITS = 13
#: Worst case: bit error on the 4th DLC bit (SOF + 11 ID + RTR + 6 = 18).
WORST_CASE_PREFIX_BITS = 18

#: Rounds in each error state before bus-off (TEC: 16*8 = 128, then 256).
ROUNDS_PER_STATE = 16


def error_active_time(prefix_bits: int = WORST_CASE_PREFIX_BITS) -> int:
    """t_a: one destroyed error-active (re)transmission, in bits."""
    return prefix_bits + ERROR_FRAME_BITS + IFS_BITS


def error_passive_time(prefix_bits: int = WORST_CASE_PREFIX_BITS) -> int:
    """t_p: one destroyed error-passive retransmission (adds suspend)."""
    return error_active_time(prefix_bits) + SUSPEND_TRANSMISSION_BITS


def undisturbed_busoff_bits(prefix_bits: int = WORST_CASE_PREFIX_BITS) -> int:
    """Total bus-off time without interruptions: 16 * (t_a + t_p).

    >>> undisturbed_busoff_bits()
    1248
    >>> undisturbed_busoff_bits(BEST_CASE_PREFIX_BITS)
    1088
    """
    return ROUNDS_PER_STATE * (
        error_active_time(prefix_bits) + error_passive_time(prefix_bits)
    )


@dataclass(frozen=True)
class InterruptionCounts:
    """The c/z terms of Table III for one experiment run.

    Attributes:
        high_priority_active: c_{h,a} (or z_{h,a}) — frames that win
            arbitration against an error-active retransmission.
        high_priority_passive: c_{h,p} / z_{h,p}.
        low_priority_passive: c_{l,p} / z_{l,p} — in the error-passive
            region even lower-priority frames slip in during suspend.
    """

    high_priority_active: int = 0
    high_priority_passive: int = 0
    low_priority_passive: int = 0


def busoff_bits_with_interruptions(
    counts: InterruptionCounts,
    prefix_bits: int = WORST_CASE_PREFIX_BITS,
    frame_bits: int = AVERAGE_FRAME_BITS,
) -> int:
    """Table III rows 1/3: rounds extended by interrupting frames.

    Each interrupting frame adds one full frame length to the phase it lands
    in: t_a' = t_a + s_f * c_{h,a}; t_p' = t_p + s_f * (c_{h,p} + c_{l,p}).
    """
    t_a_total = (
        ROUNDS_PER_STATE * error_active_time(prefix_bits)
        + frame_bits * counts.high_priority_active
    )
    t_p_total = (
        ROUNDS_PER_STATE * error_passive_time(prefix_bits)
        + frame_bits * (counts.high_priority_passive + counts.low_priority_passive)
    )
    return t_a_total + t_p_total


def two_attacker_hp_busoff_bits(
    z_low_passive: int,
    attacker_frame_bits: int = AVERAGE_FRAME_BITS,
    prefix_bits: int = WORST_CASE_PREFIX_BITS,
) -> int:
    """Table III Exp. 5, HP scenario: the higher-priority attacker.

    Its 16 error-active rounds are undisturbed (it always wins arbitration):
    16 * t_a = 560 bits in the worst case; its error-passive rounds are
    extended by the lower-priority attacker's intervening retransmissions
    (z_{l,p} of them).
    """
    active = ROUNDS_PER_STATE * error_active_time(prefix_bits)
    passive = (
        ROUNDS_PER_STATE * error_passive_time(prefix_bits)
        + attacker_frame_bits * z_low_passive
    )
    return active + passive


def two_attacker_lp_busoff_bits(
    z_high_active: int,
    z_high_passive: int,
    attacker_frame_bits: int = AVERAGE_FRAME_BITS,
    prefix_bits: int = WORST_CASE_PREFIX_BITS,
) -> int:
    """Table III Exp. 5, LP scenario: the lower-priority attacker loses
    arbitration to the high-priority one in both regions."""
    active = (
        ROUNDS_PER_STATE * error_active_time(prefix_bits)
        + attacker_frame_bits * z_high_active
    )
    passive = (
        ROUNDS_PER_STATE * error_passive_time(prefix_bits)
        + attacker_frame_bits * z_high_passive
    )
    return active + passive


def busoff_ms(bits: int, bus_speed: int) -> float:
    """Bit count to milliseconds at ``bus_speed``."""
    return bits / bus_speed * 1e3


def max_attackers_before_deadline_miss(
    deadline_bits: int = 5000,
    per_attacker_bits: Sequence[int] = (1248, 2350, 3515, 4660, 5900),
) -> int:
    """How many concurrent attackers fit before the total fight exceeds the
    minimum safety deadline (paper: A >= 5 renders the bus inoperable;
    10 ms at 500 kbit/s = 5000 bits)."""
    count = 0
    for total in per_attacker_bits:
        if total > deadline_bits:
            break
        count += 1
    return count


def expected_busoff_bits_under_load(
    benign_load: float,
    base_bits: int = 1248,
) -> float:
    """Expected bus-off time with benign background traffic (Exp. 1/3).

    Utilization argument: the fight occupies the bus end to end, so every
    benign frame arriving during it must be served *inside* it (each one
    slots into an error-passive suspend window and extends the episode by
    one frame length).  With benign load ``b`` the fixed point is

        T = base + b * T     =>     T = base / (1 - b).

    The paper's Table III row 1/3 expresses the same thing per-round via
    the c-terms; this closed form predicts the Table II means directly
    (e.g. base 1230 bits at a 12% replay load -> ~1400 bits ~ 28 ms at
    50 kbit/s, matching the measured Exp. 1/3).
    """
    if not 0.0 <= benign_load < 1.0:
        raise ValueError(f"benign load must be in [0, 1), got {benign_load}")
    return base_bits / (1.0 - benign_load)
