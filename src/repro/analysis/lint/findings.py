"""Finding and report types for the domain-aware static analyzer.

A :class:`Finding` is one rule violation anchored to a file and line; a
:class:`LintReport` is the outcome of one analyzer run over a set of files.
Reports are JSON-safe and schema-versioned like every other persisted
artifact in this repository (see :mod:`repro.experiments.store`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

#: Bump when the report dict layout changes incompatibly.
LINT_REPORT_SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is.  Errors fail the gate; warnings do not."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        code: The rule code (e.g. ``RC101``).
        rule: The rule's short kebab-case name (e.g. ``no-wallclock``).
        message: Human-readable description of the violation.
        path: Repo-relative (or as-given) path of the offending file.
        line: 1-based line number; 0 for whole-file / semantic findings.
        column: 0-based column offset.
        severity: :class:`Severity` of the finding.
    """

    code: str
    rule: str
    message: str
    path: str
    line: int = 0
    column: int = 0
    severity: Severity = Severity.ERROR

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            code=data["code"],
            rule=data.get("rule", ""),
            message=data.get("message", ""),
            path=data.get("path", ""),
            line=data.get("line", 0),
            column=data.get("column", 0),
            severity=Severity(data.get("severity", "error")),
        )

    def render(self) -> str:
        """One-line ``path:line:col: CODE message`` form."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} {self.message}")


@dataclass
class LintReport:
    """The outcome of one analyzer run.

    Attributes:
        findings: Surviving findings, sorted by (path, line, code).
        files_checked: Number of Python files parsed.
        suppressed: Findings silenced by ``# repro: noqa`` comments.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    schema_version: int = LINT_REPORT_SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        return cls(
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            files_checked=data.get("files_checked", 0),
            suppressed=data.get("suppressed", 0),
            schema_version=data.get(
                "schema_version", LINT_REPORT_SCHEMA_VERSION),
        )

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (f"{len(self.findings)} finding(s) in "
                   f"{self.files_checked} file(s)")
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        lines.append(summary)
        return "\n".join(lines)
