"""The analyzer driver: collect files, parse once, run rules, report.

The engine walks the given paths, parses each ``*.py`` file exactly once,
builds the per-file :class:`~repro.analysis.lint.suppressions.SuppressionIndex`
and hands the shared :class:`~repro.analysis.lint.registry.ModuleContext` to
every selected rule.  Findings silenced by ``# repro: noqa`` comments are
counted, not dropped silently.
"""

from __future__ import annotations

import ast
import os
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

# Importing the rules module populates the registry as a side effect.
import repro.analysis.lint.rules as _rules
from repro.analysis.lint.findings import Finding, LintReport, Severity
from repro.analysis.lint.registry import (
    LintRule,
    ModuleContext,
    SharedContext,
    get_rule,
    rule_codes,
)
from repro.analysis.lint.rules import event_vocabulary_from_source
from repro.analysis.lint.suppressions import SuppressionIndex

_ = _rules.ALL_RULE_MODULE_LOADED  # keep the side-effect import explicit

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".pytest_cache",
    "build", "dist",
})


def collect_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    collected: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            collected.append(full)
        elif path.endswith(".py") or os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                collected.append(path)
    return sorted(collected)


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> List[LintRule]:
    """The rules to run: ``--select`` wins over the full catalogue, then
    ``--ignore`` removes codes.  Unknown codes raise ConfigurationError."""
    codes = [code.upper() for code in (select or rule_codes())]
    ignored = {code.upper() for code in (ignore or ())}
    for code in list(codes) + sorted(ignored):
        get_rule(code)  # validate; raises on unknown codes
    return [get_rule(code) for code in codes if code not in ignored]


def _resolve_event_vocabulary(
        files: Sequence[str]) -> Optional[FrozenSet[str]]:
    """Event class names from the scanned tree's ``bus/events.py``; falls
    back to the installed :mod:`repro.bus.events` when none is in scope."""
    for path in files:
        normalized = path.replace("\\", "/")
        if normalized.endswith("bus/events.py"):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    return event_vocabulary_from_source(handle.read())
            except (OSError, SyntaxError):
                return None
    try:
        import repro.bus.events as events_module
    except ImportError:  # pragma: no cover - repro is always importable here
        return None
    return frozenset(
        name for name in dir(events_module)
        if isinstance(getattr(events_module, name), type)
        and not name.startswith("_")
    )


def lint_source(source: str, path: str,
                rules: Optional[Sequence[LintRule]] = None,
                shared: Optional[SharedContext] = None,
                ) -> Tuple[List[Finding], int]:
    """Lint one in-memory source blob.

    Returns ``(findings, suppressed_count)``.  A syntax error becomes a
    single ``RC100`` parse finding instead of an exception, so one broken
    file cannot take down a whole run.
    """
    if shared is None:
        shared = SharedContext()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ([Finding(
            code="RC100", rule="parse-error",
            message=f"file does not parse: {exc.msg}",
            path=path, line=exc.lineno or 0,
            severity=Severity.ERROR,
        )], 0)
    source_lines = source.splitlines()
    ctx = ModuleContext(path=path, tree=tree, source_lines=source_lines,
                        shared=shared)
    suppressions = SuppressionIndex(source_lines)
    findings: List[Finding] = []
    suppressed = 0
    for lint_rule in (rules if rules is not None else resolve_rules()):
        for finding in lint_rule.check(ctx):
            if suppressions.is_suppressed(finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Run the analyzer over files/directories and return the report."""
    files = collect_python_files(paths)
    rules = resolve_rules(select=select, ignore=ignore)
    shared = SharedContext(
        event_vocabulary=_resolve_event_vocabulary(files))
    findings: List[Finding] = []
    suppressed = 0
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(Finding(
                code="RC100", rule="parse-error",
                message=f"file is unreadable: {exc}",
                path=path))
            continue
        file_findings, file_suppressed = lint_source(
            source, path, rules=rules, shared=shared)
        findings.extend(file_findings)
        suppressed += file_suppressed
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintReport(findings=findings, files_checked=len(files),
                      suppressed=suppressed)


def iter_rule_lines() -> Iterable[str]:
    """``CODE name — summary`` lines for ``repro lint --list-rules``."""
    from repro.analysis.lint.registry import rule_catalogue

    for lint_rule in rule_catalogue():
        yield f"{lint_rule.code} {lint_rule.name} — {lint_rule.summary}"
