"""The analyzer driver: collect files, parse once, run rules, report.

The engine walks the given paths, parses each ``*.py`` file exactly once,
builds the per-file :class:`~repro.analysis.lint.suppressions.SuppressionIndex`
and hands the shared :class:`~repro.analysis.lint.registry.ModuleContext` to
every selected rule.  Findings silenced by ``# repro: noqa`` comments are
counted, not dropped silently.
"""

from __future__ import annotations

import ast
import os
from dataclasses import replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

#: ``{family: [{code, name, summary, deep}, ...]}`` (insertion-ordered).
OrderedInventory = Dict[str, List[dict]]

# Importing the rules module populates the registry as a side effect.
import repro.analysis.lint.rules as _rules
from repro.analysis.lint.findings import Finding, LintReport, Severity
from repro.analysis.lint.registry import (
    LintRule,
    ModuleContext,
    SharedContext,
    get_rule,
    rule_codes,
)
from repro.analysis.lint.rules import event_vocabulary_from_source
from repro.analysis.lint.suppressions import SuppressionIndex
from repro.errors import ConfigurationError

_ = _rules.ALL_RULE_MODULE_LOADED  # keep the side-effect import explicit

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".pytest_cache",
    "build", "dist",
})


def collect_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    collected: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            collected.append(full)
        elif path.endswith(".py") or os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                collected.append(path)
    return sorted(collected)


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> List[LintRule]:
    """The rules to run: ``--select`` wins over the full catalogue, then
    ``--ignore`` removes codes.  Unknown codes raise ConfigurationError."""
    codes = [code.upper() for code in (select or rule_codes())]
    ignored = {code.upper() for code in (ignore or ())}
    for code in list(codes) + sorted(ignored):
        get_rule(code)  # validate; raises on unknown codes
    return [get_rule(code) for code in codes if code not in ignored]


def _split_codes(codes: Optional[Sequence[str]],
                 ) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Partition user-given codes into (per-file, interprocedural) lists.

    ``None`` stays ``None`` (meaning "all of that family"); unknown codes
    raise ConfigurationError naming both catalogues.
    """
    if codes is None:
        return None, None
    from repro.analysis.lint.deep import deep_rule_codes

    per_file_known = set(rule_codes())
    deep_known = set(deep_rule_codes())
    per_file: List[str] = []
    deep: List[str] = []
    for raw in codes:
        code = raw.upper()
        if code in per_file_known:
            per_file.append(code)
        elif code in deep_known:
            deep.append(code)
        else:
            raise ConfigurationError(
                f"unknown lint rule {raw!r}; choose from "
                f"{sorted(per_file_known | deep_known)}")
    return per_file, deep


def _resolve_event_vocabulary(
        files: Sequence[str]) -> Optional[FrozenSet[str]]:
    """Event class names from the scanned tree's ``bus/events.py``; falls
    back to the installed :mod:`repro.bus.events` when none is in scope."""
    for path in files:
        normalized = path.replace("\\", "/")
        if normalized.endswith("bus/events.py"):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    return event_vocabulary_from_source(handle.read())
            except (OSError, SyntaxError):
                return None
    try:
        import repro.bus.events as events_module
    except ImportError:  # pragma: no cover - repro is always importable here
        return None
    return frozenset(
        name for name in dir(events_module)
        if isinstance(getattr(events_module, name), type)
        and not name.startswith("_")
    )


def lint_source(source: str, path: str,
                rules: Optional[Sequence[LintRule]] = None,
                shared: Optional[SharedContext] = None,
                ) -> Tuple[List[Finding], int]:
    """Lint one in-memory source blob.

    Returns ``(findings, suppressed_count)``.  A syntax error becomes a
    single ``RC100`` parse finding instead of an exception, so one broken
    file cannot take down a whole run.
    """
    if shared is None:
        shared = SharedContext()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ([Finding(
            code="RC100", rule="parse-error",
            message=f"file does not parse: {exc.msg}",
            path=path, line=exc.lineno or 0,
            severity=Severity.ERROR,
        )], 0)
    source_lines = source.splitlines()
    ctx = ModuleContext(path=path, tree=tree, source_lines=source_lines,
                        shared=shared)
    suppressions = SuppressionIndex(source_lines)
    findings: List[Finding] = []
    suppressed = 0
    for lint_rule in (rules if rules is not None else resolve_rules()):
        for finding in lint_rule.check(ctx):
            if suppressions.is_suppressed(finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               deep: bool = False,
               cache: Optional["AnalysisCache"] = None,
               include_dependents: bool = False) -> LintReport:
    """Run the analyzer over files/directories and return the report.

    Args:
        paths: Files/directories to lint.
        select: Only run these codes (per-file RC1xx and/or deep RC2xx).
            Selecting an RC2xx code without ``deep=True`` is an error.
        ignore: Codes to skip (either family).
        deep: Also run the interprocedural rules
            (:mod:`repro.analysis.lint.deep`) on the project call graph.
        cache: Optional :class:`~repro.analysis.callgraph.AnalysisCache`;
            unchanged files reuse their cached findings and AST summaries
            (the caller owns ``cache.save()``).
        include_dependents: With ``deep``, widen deep-rule reporting to
            the call-graph file neighbourhood of ``paths`` — files whose
            callers/callees changed can gain or lose anchored RC2xx/RC4xx
            findings without a textual diff of their own, so ``--changed``
            must re-lint them too.
    """
    files = collect_python_files(paths)
    per_file_select, deep_select = _split_codes(select)
    per_file_ignore, deep_ignore = _split_codes(ignore)
    if deep_select and not deep:
        raise ConfigurationError(
            f"rule(s) {sorted(deep_select)} are interprocedural; "
            "run with --deep")

    findings: List[Finding] = []
    suppressed = 0

    run_per_file = per_file_select is None or bool(per_file_select)
    if run_per_file:
        rules = resolve_rules(select=per_file_select, ignore=per_file_ignore)
    else:
        rules = []
    shared = SharedContext(
        event_vocabulary=_resolve_event_vocabulary(files))
    rules_key: Optional[str] = None
    if cache is not None and rules:
        from repro.analysis.callgraph import rules_cache_key

        rules_key = rules_cache_key([r.code for r in rules],
                                    shared.event_vocabulary)
    for path in files:
        if not rules:
            break
        if cache is not None and rules_key is not None:
            cached = cache.get_findings(path, rules_key)
            if cached is not None:
                raw_findings, file_suppressed = cached
                findings.extend(
                    replace(Finding.from_dict(raw), path=path)
                    for raw in raw_findings)
                suppressed += file_suppressed
                continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(Finding(
                code="RC100", rule="parse-error",
                message=f"file is unreadable: {exc}",
                path=path))
            continue
        file_findings, file_suppressed = lint_source(
            source, path, rules=rules, shared=shared)
        findings.extend(file_findings)
        suppressed += file_suppressed
        if cache is not None and rules_key is not None:
            cache.put_findings(
                path, rules_key,
                [finding.to_dict() for finding in file_findings],
                file_suppressed)

    if deep:
        from repro.analysis.lint.deep import deep_rule_codes, run_deep_rules

        if deep_select is not None:
            deep_codes = [code for code in deep_select
                          if code not in set(deep_ignore or ())]
        else:
            deep_codes = [code for code in deep_rule_codes()
                          if code not in set(deep_ignore or ())]
        deep_findings, deep_suppressed = run_deep_rules(
            files, codes=deep_codes, cache=cache,
            include_dependents=include_dependents)
        findings.extend(deep_findings)
        suppressed += deep_suppressed

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintReport(findings=findings, files_checked=len(files),
                      suppressed=suppressed)


#: Family headers for ``--list-rules``, in publication order.
_RULE_FAMILIES = (
    ("RC1xx", "per-file rules"),
    ("RC2xx", "interprocedural rules (--deep)"),
    ("RC3xx", "effect/purity rules (--deep)"),
    ("RC4xx", "concurrency-safety rules (--deep)"),
    ("VCxxx", "config verifier checks (--plan/--faults/verify)"),
)


def _rule_family(code: str) -> str:
    """The catalogue family a code is published under (``RC4xx`` etc.)."""
    if code.startswith("VC"):
        return "VCxxx"
    if code.startswith("RC") and len(code) >= 3:
        return f"RC{code[2]}xx"
    return code


def rule_inventory() -> "OrderedInventory":
    """The published rule inventory, grouped by family.

    Returns an ordered ``{family: [{code, name, summary, deep}, ...]}``
    mapping covering the per-file rules, the deep interprocedural
    families, and the config-verifier VC checks — the shape serialized by
    ``repro lint --list-rules --format json`` so docs and CI can assert
    the inventory.
    """
    from repro.analysis.lint.deep import deep_rule_catalogue
    from repro.analysis.lint.registry import rule_catalogue
    from repro.analysis.verifier import VERIFIER_RULE_CATALOGUE

    entries: List[dict] = []
    for lint_rule in rule_catalogue():
        entries.append({"code": lint_rule.code, "name": lint_rule.name,
                        "summary": lint_rule.summary, "deep": False})
    for deep_rule in deep_rule_catalogue():
        entries.append({"code": deep_rule.code, "name": deep_rule.name,
                        "summary": deep_rule.summary, "deep": True})
    for code, name, summary in VERIFIER_RULE_CATALOGUE:
        entries.append({"code": code, "name": name,
                        "summary": summary, "deep": False})
    inventory: "OrderedInventory" = {
        family: [] for family, _ in _RULE_FAMILIES}
    for entry in sorted(entries, key=lambda e: e["code"]):
        inventory.setdefault(_rule_family(entry["code"]), []).append(entry)
    return {family: rules for family, rules in inventory.items() if rules}


def iter_rule_lines() -> Iterable[str]:
    """Family-grouped ``CODE name — summary`` lines for ``--list-rules``."""
    titles = dict(_RULE_FAMILIES)
    first = True
    for family, rules in rule_inventory().items():
        if not first:
            yield ""
        first = False
        yield f"{family} — {titles.get(family, 'rules')}:"
        for entry in rules:
            suffix = " (--deep)" if entry["deep"] else ""
            yield (f"  {entry['code']} {entry['name']} — "
                   f"{entry['summary']}{suffix}")
