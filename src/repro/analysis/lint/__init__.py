"""Domain-aware static analyzer: AST lint rules + ``repro lint``.

See :mod:`repro.analysis.lint.rules` for the rule catalogue (RC1xx codes)
and ``docs/static-analysis.md`` for the user-facing guide.
"""

from repro.analysis.lint.engine import (
    collect_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.analysis.lint.findings import (
    LINT_REPORT_SCHEMA_VERSION,
    Finding,
    LintReport,
    Severity,
)
from repro.analysis.lint.registry import (
    ENGINE_PATH_SEGMENTS,
    LintRule,
    ModuleContext,
    SharedContext,
    get_rule,
    rule,
    rule_catalogue,
    rule_codes,
)
from repro.analysis.lint.suppressions import SuppressionIndex

__all__ = [
    "ENGINE_PATH_SEGMENTS",
    "Finding",
    "LINT_REPORT_SCHEMA_VERSION",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "Severity",
    "SharedContext",
    "SuppressionIndex",
    "collect_python_files",
    "get_rule",
    "lint_paths",
    "lint_source",
    "resolve_rules",
    "rule",
    "rule_catalogue",
    "rule_codes",
]
