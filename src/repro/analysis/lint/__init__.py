"""Domain-aware static analyzer: AST lint rules + ``repro lint``.

See :mod:`repro.analysis.lint.rules` for the per-file rule catalogue
(RC1xx codes), :mod:`repro.analysis.lint.deep` for the interprocedural
rules (RC2xx, ``repro lint --deep``), and ``docs/static-analysis.md`` /
``docs/whole-program-analysis.md`` for the user-facing guides.
"""

from repro.analysis.lint.deep import (
    DEEP_RULES,
    DeepRule,
    deep_rule_catalogue,
    deep_rule_codes,
    run_deep_rules,
)
from repro.analysis.lint.engine import (
    collect_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.analysis.lint.findings import (
    LINT_REPORT_SCHEMA_VERSION,
    Finding,
    LintReport,
    Severity,
)
from repro.analysis.lint.registry import (
    ENGINE_PATH_FILES,
    ENGINE_PATH_SEGMENTS,
    PERSISTED_PATH_FILES,
    LintRule,
    ModuleContext,
    SharedContext,
    get_rule,
    rule,
    rule_catalogue,
    rule_codes,
)
from repro.analysis.lint.suppressions import SuppressionIndex

__all__ = [
    "DEEP_RULES",
    "DeepRule",
    "ENGINE_PATH_FILES",
    "ENGINE_PATH_SEGMENTS",
    "Finding",
    "LINT_REPORT_SCHEMA_VERSION",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "PERSISTED_PATH_FILES",
    "Severity",
    "SharedContext",
    "SuppressionIndex",
    "collect_python_files",
    "deep_rule_catalogue",
    "deep_rule_codes",
    "get_rule",
    "lint_paths",
    "lint_source",
    "resolve_rules",
    "rule",
    "rule_catalogue",
    "rule_codes",
    "run_deep_rules",
]
