"""Rule registry: per-rule codes, metadata, and the module context.

A rule is a callable ``check(module) -> Iterable[Finding]`` registered under
a stable code with :func:`rule`.  The engine (:mod:`repro.analysis.lint.
engine`) parses each file once into a :class:`ModuleContext` and hands it to
every selected rule; rules never re-read or re-parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.lint.findings import Finding
from repro.errors import ConfigurationError

#: Path segments (directory names) that mark the engine's hot paths — the
#: per-bit code where wall-clock reads and unseeded randomness would break
#: the serial==parallel determinism guarantee of the campaign engine.
#: ``baselines`` is included because baseline defenses (parrot, parity)
#: run inside the same deterministic fan-out as the MichiCAN nodes.
ENGINE_PATH_SEGMENTS = frozenset({"bus", "node", "can", "baselines"})

#: Individual hot-path files outside those directories (normalized-path
#: suffixes): the workload generator feeds frames into the deterministic
#: fan-out, so it is held to the same rules.
ENGINE_PATH_FILES = ("workloads/generator.py",)

#: Files holding persisted, schema-versioned dataclasses outside the
#: ``store.py``/``obs/`` defaults (normalized-path suffixes): fault plans
#: and chaos degradation curves are both written to disk and re-read.
PERSISTED_PATH_FILES = ("faults/plan.py", "experiments/chaos.py")


@dataclass
class SharedContext:
    """Run-wide state shared by all module contexts of one lint run.

    Attributes:
        event_vocabulary: Class names defined by the scanned tree's
            ``bus/events.py`` (or the built-in :mod:`repro.bus.events`
            fallback).  None when no vocabulary could be resolved — rules
            that need it must then skip.
    """

    event_vocabulary: Optional[FrozenSet[str]] = None


@dataclass
class ModuleContext:
    """One parsed Python file, as seen by the rules.

    Attributes:
        path: The path findings should report (as given to the engine).
        tree: The parsed AST of the whole module.
        source_lines: The raw source split into lines (1-based access via
            ``source_lines[line - 1]``).
        shared: Run-wide :class:`SharedContext`.
    """

    path: str
    tree: ast.Module
    source_lines: List[str]
    shared: SharedContext = field(default_factory=SharedContext)

    @property
    def path_segments(self) -> FrozenSet[str]:
        """Directory names on the module's path (file name excluded)."""
        normalized = self.path.replace("\\", "/")
        return frozenset(normalized.split("/")[:-1])

    @property
    def file_name(self) -> str:
        return self.path.replace("\\", "/").rsplit("/", 1)[-1]

    @property
    def in_engine_paths(self) -> bool:
        """True for modules on the deterministic hot path: anything under
        ``bus/``, ``node/``, ``can/`` or ``baselines/``, plus the workload
        generator (:data:`ENGINE_PATH_FILES`)."""
        if self.path_segments & ENGINE_PATH_SEGMENTS:
            return True
        normalized = self.path.replace("\\", "/")
        return any(normalized.endswith(suffix)
                   for suffix in ENGINE_PATH_FILES)

    @property
    def in_persisted_paths(self) -> bool:
        """True for modules holding persisted, schema-versioned dataclasses
        (``store.py`` anywhere, anything under ``obs/``, fault plans and
        chaos curves — :data:`PERSISTED_PATH_FILES`)."""
        if self.file_name == "store.py" or "obs" in self.path_segments:
            return True
        normalized = self.path.replace("\\", "/")
        return any(normalized.endswith(suffix)
                   for suffix in PERSISTED_PATH_FILES)

    @property
    def is_package_init(self) -> bool:
        return self.file_name == "__init__.py"


#: A rule inspects one module and yields findings.
RuleCheck = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: stable code + name + the check callable."""

    code: str
    name: str
    summary: str
    check: RuleCheck


_RULES: Dict[str, LintRule] = {}


def rule(code: str, name: str,
         summary: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register the decorated callable as rule ``code``.

    Codes are stable identifiers (``RC###``) used by ``--select`` /
    ``--ignore`` and by ``# repro: noqa[CODE]`` suppressions; names are the
    human-friendly aliases shown in the catalogue.
    """

    def decorate(check: RuleCheck) -> RuleCheck:
        if code in _RULES:
            raise ConfigurationError(f"lint rule {code!r} already registered")
        _RULES[code] = LintRule(code=code, name=name, summary=summary,
                                check=check)
        return check

    return decorate


def rule_codes() -> List[str]:
    """All registered rule codes, sorted."""
    return sorted(_RULES)


def get_rule(code: str) -> LintRule:
    try:
        return _RULES[code]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {code!r}; choose from {rule_codes()}"
        ) from None


def rule_catalogue() -> List[LintRule]:
    """All registered rules, sorted by code (for ``--list-rules`` and docs)."""
    return [_RULES[code] for code in rule_codes()]
