"""Domain rules: the invariants the test suite can only sample.

Each rule encodes one correctness property of the simulator that is cheap
to prove statically at PR time:

* **RC101 / RC102** — the engine's per-bit hot paths (``bus/``, ``node/``,
  ``can/``) must stay deterministic and replayable: no wall-clock reads, no
  global (unseeded) randomness.  The campaign engine's serial==parallel
  guarantee (PR 1) rests on this.
* **RC103** — bit-time quantities converted to float seconds must never be
  compared with ``==`` / ``!=``; compare integer bit times instead.
* **RC104** — mutable default arguments alias state across calls.
* **RC105** — events must come from the :mod:`repro.bus.events` vocabulary,
  so stream consumers (``BusProbe``, the trace recorder) stay total.
* **RC106** — persisted dataclasses (``store.py`` / ``obs/``) must be
  schema-versioned so layout changes fail loudly on load.
* **RC107** — bare ``except:`` swallows ``SystemExit`` and typos alike.
* **RC108** — package ``__init__`` files must export a complete, resolvable
  ``__all__`` so the typed public API is what mypy re-exports.
* **RC109** — fault injectors (``faults/``) must draw randomness only from
  RNGs seeded with the fault spec's explicit seed, so chaos campaigns
  replay bit-identically serial or parallel.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import ModuleContext, rule

# --------------------------------------------------------------- helpers


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``import <module>`` (including ``as`` aliases)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, int]:
    """Names imported via ``from <module> import ...`` -> import line."""
    names: Dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = node.lineno
    return names


def _finding(ctx: ModuleContext, code: str, name: str, message: str,
             node: ast.AST) -> Finding:
    return Finding(
        code=code,
        rule=name,
        message=message,
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", 0),
    )


# ------------------------------------------------------- RC101: wall clock

_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})


@rule("RC101", "no-wallclock",
      "no wall-clock reads in engine hot paths (bus/, node/, can/)")
def check_no_wallclock(ctx: ModuleContext) -> Iterator[Finding]:
    """The engine advances in simulated bit times only; a wall-clock read
    in ``bus/``/``node/``/``can/`` makes runs unreplayable."""
    if not ctx.in_engine_paths:
        return
    time_aliases = _module_aliases(ctx.tree, "time")
    datetime_aliases = _module_aliases(ctx.tree, "datetime")
    from_time = _from_imports(ctx.tree, "time")
    from_datetime = _from_imports(ctx.tree, "datetime")

    for name, line in from_time.items():
        if name in _TIME_FUNCS:
            yield Finding(
                code="RC101", rule="no-wallclock",
                message=(f"wall-clock function time.{name} imported into an "
                         "engine hot path; the engine must advance in "
                         "simulated bit times only"),
                path=ctx.path, line=line,
            )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted_parts(node.func)
        if not parts:
            continue
        if (len(parts) >= 2 and parts[0] in time_aliases
                and parts[1] in _TIME_FUNCS):
            yield _finding(
                ctx, "RC101", "no-wallclock",
                f"wall-clock call {'.'.join(parts)}() in an engine hot "
                "path; use the simulator's bit-time clock instead", node)
        elif (parts[0] in datetime_aliases
                and parts[-1] in _DATETIME_FACTORIES):
            yield _finding(
                ctx, "RC101", "no-wallclock",
                f"wall-clock call {'.'.join(parts)}() in an engine hot "
                "path; use the simulator's bit-time clock instead", node)
        elif (len(parts) == 2 and parts[0] in from_datetime
                and parts[1] in _DATETIME_FACTORIES):
            yield _finding(
                ctx, "RC101", "no-wallclock",
                f"wall-clock call {'.'.join(parts)}() in an engine hot "
                "path; use the simulator's bit-time clock instead", node)


# -------------------------------------------------- RC102: unseeded random

_GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes", "seed",
})


@rule("RC102", "no-unseeded-random",
      "no global/unseeded randomness in engine hot paths")
def check_no_unseeded_random(ctx: ModuleContext) -> Iterator[Finding]:
    """Engine code may only use an explicitly seeded ``random.Random(seed)``
    instance — the module-level RNG breaks the campaign engine's
    serial==parallel determinism guarantee."""
    if not ctx.in_engine_paths:
        return
    random_aliases = _module_aliases(ctx.tree, "random")
    from_random = _from_imports(ctx.tree, "random")

    for name, line in from_random.items():
        if name in _GLOBAL_RNG_FUNCS:
            yield Finding(
                code="RC102", rule="no-unseeded-random",
                message=(f"global RNG function random.{name} imported into "
                         "an engine hot path; use a seeded random.Random "
                         "instance"),
                path=ctx.path, line=line,
            )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted_parts(node.func)
        if not parts or len(parts) != 2 or parts[0] not in random_aliases:
            continue
        if parts[1] in _GLOBAL_RNG_FUNCS:
            yield _finding(
                ctx, "RC102", "no-unseeded-random",
                f"{'.'.join(parts)}() uses the global RNG in an engine hot "
                "path; use a seeded random.Random instance", node)
        elif parts[1] == "Random" and not node.args and not node.keywords:
            yield _finding(
                ctx, "RC102", "no-unseeded-random",
                "random.Random() without a seed in an engine hot path; "
                "pass an explicit seed", node)
        elif parts[1] == "SystemRandom":
            yield _finding(
                ctx, "RC102", "no-unseeded-random",
                "random.SystemRandom is inherently unseedable; engine "
                "randomness must be reproducible", node)


# ------------------------------------------------ RC103: float == bit time

#: Calls whose result is a float-valued time/load quantity: comparing these
#: with == is a latent precision bug — compare the integer bit times.
_FLOAT_TIME_FUNCS = frozenset({
    "seconds", "milliseconds", "bits_to_seconds", "bits_to_ms",
    "nominal_bit_time", "dominant_fraction", "busy_fraction",
})


def _is_float_quantity(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    if isinstance(node, ast.Call):
        parts = _dotted_parts(node.func)
        if parts and parts[-1] in _FLOAT_TIME_FUNCS:
            return f"float-valued call {parts[-1]}()"
    return None


@rule("RC103", "no-float-eq-bit-time",
      "no ==/!= on float bit-time quantities")
def check_no_float_eq(ctx: ModuleContext) -> Iterator[Finding]:
    """Bit-time quantities converted to float (seconds, ms, load fractions)
    must not be compared exactly; compare the underlying integer bit times
    or use an explicit tolerance."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in [node.left, *node.comparators]:
            reason = _is_float_quantity(operand)
            if reason is not None:
                yield _finding(
                    ctx, "RC103", "no-float-eq-bit-time",
                    f"exact ==/!= against {reason}; compare integer bit "
                    "times (or use an explicit tolerance)", node)
                break


# ------------------------------------------------ RC104: mutable defaults

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = _dotted_parts(node.func)
        return bool(parts) and parts[-1] in _MUTABLE_CALLS
    return False


@rule("RC104", "no-mutable-default",
      "no mutable default arguments")
def check_no_mutable_default(ctx: ModuleContext) -> Iterator[Finding]:
    """A mutable default is created once at function definition time and
    aliased by every call — use None plus an in-body default."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield _finding(
                    ctx, "RC104", "no-mutable-default",
                    f"mutable default argument in {node.name}(); use None "
                    "and create the object inside the function", default)


# ------------------------------------------------ RC105: event vocabulary

@rule("RC105", "event-vocabulary",
      "emit() only event types from the bus/events.py vocabulary")
def check_event_vocabulary(ctx: ModuleContext) -> Iterator[Finding]:
    """Every event handed to an ``emit()`` sink must be a class defined in
    the event vocabulary (``repro/bus/events.py``) — ad-hoc event types
    silently fall through BusProbe dispatch and trace decoding."""
    vocabulary = ctx.shared.event_vocabulary
    if vocabulary is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        parts = _dotted_parts(node.func)
        if not parts or parts[-1] != "emit":
            continue
        payload = node.args[0]
        if not isinstance(payload, ast.Call):
            continue
        ctor = payload.func
        if not isinstance(ctor, ast.Name):
            continue
        name = ctor.id
        if not name[:1].isupper():
            continue
        if name not in vocabulary:
            yield _finding(
                ctx, "RC105", "event-vocabulary",
                f"emit() of {name}, which is not in the bus/events.py "
                "vocabulary; define the event there so stream consumers "
                "can dispatch on it", payload)


def event_vocabulary_from_source(source: str) -> frozenset:
    """Class names defined at the top level of an ``events.py`` source."""
    tree = ast.parse(source)
    return frozenset(
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    )


# ------------------------------------------- RC106: schema-version discipline

def _class_methods(node: ast.ClassDef) -> Set[str]:
    return {
        item.name for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_field_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target,
                                                          ast.Name):
            names.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _module_constant_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for item in tree.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target,
                                                          ast.Name):
            names.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@rule("RC106", "schema-version-discipline",
      "persisted dataclasses (store.py, obs/) carry a SCHEMA_VERSION")
def check_schema_version(ctx: ModuleContext) -> Iterator[Finding]:
    """A class that round-trips through ``to_dict``/``from_dict`` in a
    persisted module must be schema-versioned — either a ``schema_version``
    field on the class or a module-level ``*SCHEMA_VERSION*`` constant —
    so stored artifacts fail loudly after a layout change."""
    if not ctx.in_persisted_paths:
        return
    module_versioned = any(
        "SCHEMA_VERSION" in name for name in _module_constant_names(ctx.tree)
    )
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = _class_methods(node)
        if not {"to_dict", "from_dict"} <= methods:
            continue
        if "schema_version" in _class_field_names(node) or module_versioned:
            continue
        yield _finding(
            ctx, "RC106", "schema-version-discipline",
            f"persisted class {node.name} defines to_dict/from_dict but "
            "carries no schema_version field and its module declares no "
            "SCHEMA_VERSION constant", node)


# ------------------------------------------------------ RC107: bare except

@rule("RC107", "no-bare-except", "no bare except clauses")
def check_no_bare_except(ctx: ModuleContext) -> Iterator[Finding]:
    """A bare ``except:`` catches SystemExit/KeyboardInterrupt and hides
    typos; name the exception types."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _finding(
                ctx, "RC107", "no-bare-except",
                "bare except: names no exception types; catch the specific "
                "errors this block can actually handle", node)


# ------------------------------------------------------ RC108: init exports

def _all_entries(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """The (line, entries) of a literal ``__all__`` assignment, if any."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if not isinstance(value, (ast.List, ast.Tuple)):
                    return (node.lineno, [])
                entries = [
                    elt.value for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                ]
                return (node.lineno, entries)
    return None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (imports, defs, classes, assigns)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            names.add(node.target.id)
    return names


def _imported_public_names(tree: ast.Module) -> Dict[str, int]:
    """Public names brought in by top-level ``from ... import`` -> line."""
    names: Dict[str, int] = {}
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        for alias in node.names:
            bound = alias.asname or alias.name
            if bound != "*" and not bound.startswith("_"):
                names.setdefault(bound, node.lineno)
    return names


@rule("RC108", "init-exports",
      "package __init__ exports a complete, resolvable __all__")
def check_init_exports(ctx: ModuleContext) -> Iterator[Finding]:
    """Package ``__init__`` files re-exporting the public API must keep
    ``__all__`` in sync: every public import listed, every entry bound —
    otherwise mypy's no_implicit_reexport hides the API from consumers."""
    if not ctx.is_package_init:
        return
    imported = _imported_public_names(ctx.tree)
    if not imported:
        return  # plain namespace marker, nothing re-exported
    entries = _all_entries(ctx.tree)
    if entries is None:
        yield Finding(
            code="RC108", rule="init-exports",
            message="package __init__ re-exports names but defines no "
                    "__all__",
            path=ctx.path, line=1)
        return
    line, listed = entries
    bindings = _top_level_bindings(ctx.tree)
    for name in sorted(set(listed) - bindings):
        yield Finding(
            code="RC108", rule="init-exports",
            message=f"__all__ entry {name!r} is not defined or imported in "
                    "this __init__",
            path=ctx.path, line=line)
    for name, import_line in sorted(imported.items()):
        if name not in listed:
            yield Finding(
                code="RC108", rule="init-exports",
                message=f"public import {name!r} is missing from __all__",
                path=ctx.path, line=import_line)


# ----------------------------------------- RC109: seeded fault injection

def _mentions_seed(node: ast.AST) -> bool:
    """Does this expression reference any name/attribute containing
    'seed'?  (``spec.seed``, ``seed + 1``, ``self._seed`` all count.)"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


@rule("RC109", "seeded-fault-injection",
      "fault injectors (faults/) use only explicitly seeded RNGs")
def check_seeded_fault_injection(ctx: ModuleContext) -> Iterator[Finding]:
    """Fault injectors must derive every random draw from the fault spec's
    explicit ``seed`` — the module-level RNG (or a ``random.Random()``
    seeded from entropy) would make chaos campaigns irreproducible and
    break the serial==parallel replay guarantee."""
    if "faults" not in ctx.path_segments:
        return
    random_aliases = _module_aliases(ctx.tree, "random")
    from_random = _from_imports(ctx.tree, "random")

    for name, line in from_random.items():
        if name in _GLOBAL_RNG_FUNCS:
            yield Finding(
                code="RC109", rule="seeded-fault-injection",
                message=(f"global RNG function random.{name} imported into "
                         "a fault injector; draw from random.Random(seed) "
                         "built from the fault spec's explicit seed"),
                path=ctx.path, line=line,
            )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted_parts(node.func)
        if not parts or len(parts) != 2 or parts[0] not in random_aliases:
            continue
        if parts[1] in _GLOBAL_RNG_FUNCS:
            yield _finding(
                ctx, "RC109", "seeded-fault-injection",
                f"{'.'.join(parts)}() draws from the global RNG in a fault "
                "injector; use a random.Random seeded from the fault "
                "spec's explicit seed", node)
        elif parts[1] == "SystemRandom":
            yield _finding(
                ctx, "RC109", "seeded-fault-injection",
                "random.SystemRandom is inherently unseedable; fault "
                "injection must replay bit-identically", node)
        elif parts[1] == "Random":
            arguments = list(node.args) + [k.value for k in node.keywords]
            if not arguments:
                yield _finding(
                    ctx, "RC109", "seeded-fault-injection",
                    "random.Random() without a seed in a fault injector; "
                    "pass the fault spec's explicit seed", node)
            elif not any(_mentions_seed(a) for a in arguments):
                yield _finding(
                    ctx, "RC109", "seeded-fault-injection",
                    "random.Random(...) seeded from something that is not "
                    "an explicit seed value; thread the fault spec's seed "
                    "through instead", node)


#: Imported for side effects by the engine; handy for tests.
ALL_RULE_MODULE_LOADED = True
