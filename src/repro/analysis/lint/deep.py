"""Interprocedural (whole-program) rules: RC201–RC205.

The per-file rules in :mod:`repro.analysis.lint.rules` only see one module
at a time, so a wall-clock read hiding two call hops below the simulator
step loop passes them.  These rules run on the project call graph
(:mod:`repro.analysis.callgraph`) instead:

========  =======================  ==========================================
RC201     deep-no-wallclock        a wall-clock read is *transitively*
                                   reachable from the simulator step loop or
                                   the firmware ISR
RC202     deep-no-unseeded-random  unseeded randomness is transitively
                                   reachable from the same entry points
RC203     fault-containment        an injected-fault exception can propagate
                                   uncaught past the campaign run boundary
RC204     event-never-consumed     a ``bus/events.py`` class is emitted (or
                                   defined) but nothing ever consumes it
RC205     event-never-emitted      a ``bus/events.py`` class is consumed but
                                   nothing ever emits it
========  =======================  ==========================================

Findings anchor at the *sink* (the offending call, the raise site, the
class definition), never at the transitive caller — so a
``# repro: noqa[RC201]`` suppression lives next to the code that needs the
exemption, and callers stay clean.

On fault containment (RC203): :class:`~repro.bus.simulator.Simulator.run`
deliberately lets :class:`~repro.errors.InjectedFaultError` propagate —
that is how a crash fault reaches the harness.  The boundary that must be
tight is the campaign's: ``Campaign.run`` (serial path) and
``_subprocess_worker`` (process path) must catch every injected-fault
exception, or one chaotic spec takes down the whole campaign instead of
producing a failure record.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.findings import Finding

if TYPE_CHECKING:  # imported lazily at runtime: callgraph imports this
    # package's rule helpers, so a module-level import would be circular.
    from repro.analysis.callgraph import (
        AnalysisCache,
        CallGraph,
        FileSummary,
        NodeKey,
        Project,
    )

#: Entry points of the deterministic hot path, matched by normalized path
#: suffix + the final segment of the function qualname.  ``step`` is listed
#: even though ``run`` dispatches to it because ``run``'s fast loop binds
#: node methods to bare names (statically unresolvable); the fan-out to
#: node ``output``/``observe`` implementations is only visible via ``step``.
ENTRY_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("bus/simulator.py", ("run", "run_until", "step",
                          "advance", "advance_until")),
    ("bus/fastforward.py", ("try_advance", "_notify_span")),
    ("core/detection.py", ("handler",)),
    # Observability listeners ride the engine's event delivery, so their
    # handlers must stay wallclock- and entropy-free like the hot loop.
    ("obs/tracing.py", ("_on_event", "_on_span_commit")),
    ("obs/flight.py", ("_on_event",)),
    ("obs/snapshot.py", ("observe",)),
)

#: Exception boundaries for RC203, matched by path suffix + *full*
#: qualname: no injected-fault exception may escape these uncaught.
FAULT_BOUNDARY_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("experiments/campaign.py", ("Campaign.run", "_subprocess_worker")),
)

#: Root of the injected-fault exception taxonomy (plus name-resolved
#: subclasses found in the project).
FAULT_EXCEPTION_ROOT = "InjectedFaultError"


@dataclass(frozen=True)
class DeepRule:
    """Catalogue metadata for one interprocedural rule."""

    code: str
    name: str
    summary: str


DEEP_RULES: Tuple[DeepRule, ...] = (
    DeepRule("RC201", "deep-no-wallclock",
             "no wall-clock read transitively reachable from the simulator "
             "step loop or firmware ISR"),
    DeepRule("RC202", "deep-no-unseeded-random",
             "no unseeded randomness transitively reachable from the "
             "simulator step loop or firmware ISR"),
    DeepRule("RC203", "fault-containment",
             "no injected-fault exception escapes the campaign run "
             "boundary uncaught"),
    DeepRule("RC204", "event-never-consumed",
             "every bus/events.py class is consumed somewhere"),
    DeepRule("RC205", "event-never-emitted",
             "every consumed bus/events.py class is emitted somewhere"),
)


def deep_rule_codes() -> List[str]:
    """All interprocedural rule codes, sorted."""
    return sorted(rule.code for rule in DEEP_RULES)


def deep_rule_catalogue() -> Tuple[DeepRule, ...]:
    """The interprocedural rules, for ``--list-rules`` and docs."""
    return DEEP_RULES


_GRAPH_CODES = frozenset({"RC201", "RC202", "RC203"})


# ----------------------------------------------------------- project scope


def expand_project_files(files: Sequence[str]) -> List[str]:
    """The graph's file set: ``files`` plus the rest of every package they
    belong to.

    Interprocedural facts need the whole program: linting a single module
    must still see its callers and callees.  Each requested file's
    enclosing top-level package (found by walking the ``__init__.py``
    chain upward) is walked in full; requested spellings win over the
    expansion's so findings keep the paths the user typed.
    """
    from repro.analysis.lint.engine import collect_python_files

    known = {os.path.abspath(path) for path in files}
    roots: Set[str] = set()
    for path in files:
        directory = os.path.dirname(os.path.abspath(path))
        top: Optional[str] = None
        while os.path.isfile(os.path.join(directory, "__init__.py")):
            top = directory
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
        if top is not None:
            roots.add(top)
    merged = list(files)
    for path in collect_python_files(sorted(roots)):
        absolute = os.path.abspath(path)
        if absolute not in known:
            known.add(absolute)
            merged.append(path)
    return merged


# ------------------------------------------------------------- rule bodies


def _entry_points(project: Project) -> List[NodeKey]:
    entries: List[NodeKey] = []
    for suffix, names in ENTRY_SPECS:
        entries.extend(project.find_functions(suffix, names))
    return entries


def _chain_text(graph: CallGraph, parents, node: NodeKey) -> str:
    chain = graph.call_chain(parents, node)
    return " -> ".join(qualname for _, qualname in chain)


def _reachable_sink_findings(graph: CallGraph, codes: Set[str],
                             ) -> List[Finding]:
    entries = _entry_points(graph.project)
    if not entries:
        return []
    parents = graph.reachable_from(entries)
    findings: List[Finding] = []
    for node in parents:
        fn = graph.project.function(node)
        if fn is None:
            continue
        path, _ = node
        chain: Optional[str] = None
        sink_groups = []
        if "RC201" in codes:
            sink_groups.append(("RC201", "deep-no-wallclock",
                                "wall-clock read",
                                "thread simulated time through as a "
                                "parameter instead",
                                fn.wallclock_sinks))
        if "RC202" in codes:
            sink_groups.append(("RC202", "deep-no-unseeded-random",
                                "unseeded randomness",
                                "thread a seeded random.Random through "
                                "instead",
                                fn.random_sinks))
        for code, rule_name, what, fix, sinks in sink_groups:
            for sink in sinks:
                if chain is None:
                    chain = _chain_text(graph, parents, node)
                findings.append(Finding(
                    code=code, rule=rule_name,
                    message=(f"{what} {sink.description} is reachable from "
                             f"the deterministic hot path: {chain}; {fix}"),
                    path=path, line=sink.line, column=sink.column))
    return findings


def _fault_escape_findings(graph: CallGraph) -> List[Finding]:
    boundaries: List[NodeKey] = []
    for suffix, qualnames in FAULT_BOUNDARY_SPECS:
        boundaries.extend(graph.project.find_functions(
            suffix, qualnames, match_qualname=True))
    if not boundaries:
        return []
    family = graph.project.exception_family(FAULT_EXCEPTION_ROOT)
    escaping = graph.escaping_exceptions()
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for boundary in boundaries:
        for exc, path, line in sorted(escaping.get(boundary, ())):
            if exc not in family:
                continue
            key = (path, line, exc)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="RC203", rule="fault-containment",
                message=(f"{exc} raised here can propagate uncaught past "
                         f"the campaign boundary {boundary[1]}; injected "
                         "faults must surface as failure records, not "
                         "crash the campaign"),
                path=path, line=line))
    return findings


def _event_liveness_findings(project: Project,
                             codes: Set[str]) -> List[Finding]:
    events_summary: Optional[FileSummary] = None
    for summary in project.summaries.values():
        if summary.path.replace("\\", "/").endswith("bus/events.py"):
            events_summary = summary
            break
    if events_summary is None:
        return []
    others = [summary for summary in project.summaries.values()
              if summary is not events_summary]
    # Abstract roots (classes other vocabulary classes derive from) are
    # not events themselves — nothing should instantiate them directly.
    vocab_bases = {
        base.split(".")[-1]
        for cls in events_summary.classes.values()
        for base in cls.bases
    }
    findings: List[Finding] = []
    for name in sorted(events_summary.class_lines):
        if name in vocab_bases:
            continue
        line = events_summary.class_lines[name]
        consumed = any(name in summary.consumed for summary in others)
        emitted = any(name in summary.instantiated
                      or name in summary.referenced for summary in others)
        if not consumed and "RC204" in codes:
            detail = ("emitted but never consumed" if emitted
                      else "neither emitted nor consumed")
            findings.append(Finding(
                code="RC204", rule="event-never-consumed",
                message=(f"event class {name} is {detail} outside "
                         "bus/events.py — dead vocabulary; drop it or "
                         "consume it"),
                path=events_summary.path, line=line))
        elif consumed and not emitted and "RC205" in codes:
            findings.append(Finding(
                code="RC205", rule="event-never-emitted",
                message=(f"event class {name} is consumed but never "
                         "emitted outside bus/events.py — that consumer "
                         "branch is dead; emit it or drop the handler"),
                path=events_summary.path, line=line))
    return findings


# --------------------------------------------------------------- top level


def run_deep_rules(files: Sequence[str],
                   codes: Optional[Sequence[str]] = None,
                   cache: Optional[AnalysisCache] = None,
                   ) -> Tuple[List[Finding], int]:
    """Run the interprocedural rules over ``files``.

    ``files`` is the already-collected list of requested ``*.py`` files;
    the analysis itself runs over the whole enclosing project (see
    :func:`expand_project_files`) but only findings whose sink falls in a
    *requested* file are reported.  Returns ``(findings, suppressed)``
    where suppressed counts findings silenced by a ``# repro: noqa``
    comment on the sink line.
    """
    from repro.analysis.callgraph import CallGraph, load_project

    wanted: Set[str] = set(codes if codes is not None else deep_rule_codes())
    if not wanted or not files:
        return [], 0

    project = load_project(expand_project_files(files), cache=cache)

    candidates: List[Finding] = []
    if wanted & _GRAPH_CODES:
        graph = CallGraph(project)
        if wanted & {"RC201", "RC202"}:
            candidates.extend(_reachable_sink_findings(graph, wanted))
        if "RC203" in wanted:
            candidates.extend(_fault_escape_findings(graph))
    if wanted & {"RC204", "RC205"}:
        candidates.extend(_event_liveness_findings(project, wanted))

    requested = {os.path.abspath(path) for path in files}
    suppression_cache: Dict[str, object] = {}
    findings: List[Finding] = []
    suppressed = 0
    emitted: Set[Tuple[str, int, int, str]] = set()
    for finding in candidates:
        if os.path.abspath(finding.path) not in requested:
            continue
        key = (finding.path, finding.line, finding.column, finding.code)
        if key in emitted:
            continue
        emitted.add(key)
        index = suppression_cache.get(finding.path)
        if index is None:
            summary = project.summaries.get(finding.path)
            index = (summary.suppression_index() if summary is not None
                     else None)
            suppression_cache[finding.path] = index
        if index is not None and index.is_suppressed(  # type: ignore[union-attr]
                finding.line, finding.code):
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings, suppressed
