"""Interprocedural (whole-program) rules: RC201–RC205, RC301–RC303 and
RC401–RC405.

The per-file rules in :mod:`repro.analysis.lint.rules` only see one module
at a time, so a wall-clock read hiding two call hops below the simulator
step loop passes them.  These rules run on the project call graph
(:mod:`repro.analysis.callgraph`) instead:

========  =======================  ==========================================
RC201     deep-no-wallclock        a wall-clock read is *transitively*
                                   reachable from the simulator step loop or
                                   the firmware ISR
RC202     deep-no-unseeded-random  unseeded randomness is transitively
                                   reachable from the same entry points
RC203     fault-containment        an injected-fault exception can propagate
                                   uncaught past the campaign run boundary
RC204     event-never-consumed     a ``bus/events.py`` class is emitted (or
                                   defined) but nothing ever consumes it
RC205     event-never-emitted      a ``bus/events.py`` class is consumed but
                                   nothing ever emits it
RC301     worker-shared-global     shared module/class state is mutated
                                   somewhere transitively reachable from a
                                   campaign worker entry point
RC302     unlocked-shared-cache    a cache/memo global is mutated without a
                                   lock on a worker-reachable path
RC303     pickle-safe-registration a scenario factory is registered as a
                                   lambda or nested function (unpicklable by
                                   reference — the static VC220/VC221)
RC401     thread-shared-state      shared mutable state is reached from >= 2
                                   thread roots with no common lock
                                   (Eraser-style lockset check)
RC402     async-blocking-call      a blocking call is reachable from an
                                   ``async def`` without await or an
                                   executor hand-off
RC403     signal-unsafe-handler    a non-reentrant operation (lock acquire,
                                   I/O) is reachable from a registered
                                   signal handler
RC404     fork-lock-safety         a process spawn can run while a live
                                   non-daemon thread holds a tracked lock
RC405     lock-order-cycle         a cycle in the lock-acquisition-order
                                   graph (deadlock potential)
========  =======================  ==========================================

The RC3xx family is the effect/purity analysis
(:mod:`repro.analysis.effects`): RC301/RC302 walk the BFS closure of the
worker entry points (:data:`WORKER_ENTRY_SPECS` plus every statically
resolvable registered factory) and flag global-mutation sites inside it;
the same machinery certifies scenario purity for the campaign result
cache (:mod:`repro.analysis.purity`).

The RC4xx family is the concurrency-safety analysis
(:mod:`repro.analysis.concurrency`): thread roots, locksets, signal
handlers, spawn edges and the lock-order graph lifted over the same
call graph; ``repro lint --deep --concurrency-report`` additionally
dumps the machine-readable facts behind the findings.

Findings anchor at the *sink* (the offending call, the raise site, the
class definition), never at the transitive caller — so a
``# repro: noqa[RC201]`` suppression lives next to the code that needs the
exemption, and callers stay clean.

On fault containment (RC203): :class:`~repro.bus.simulator.Simulator.run`
deliberately lets :class:`~repro.errors.InjectedFaultError` propagate —
that is how a crash fault reaches the harness.  The boundary that must be
tight is the campaign's: ``Campaign.run`` (serial path) and
``_subprocess_worker`` (process path) must catch every injected-fault
exception, or one chaotic spec takes down the whole campaign instead of
producing a failure record.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.findings import Finding

if TYPE_CHECKING:  # imported lazily at runtime: callgraph imports this
    # package's rule helpers, so a module-level import would be circular.
    from repro.analysis.callgraph import (
        AnalysisCache,
        CallGraph,
        CallSite,
        FileSummary,
        NodeKey,
        Project,
    )

#: Entry points of the deterministic hot path, matched by normalized path
#: suffix + the final segment of the function qualname.  ``step`` is listed
#: even though ``run`` dispatches to it because ``run``'s fast loop binds
#: node methods to bare names (statically unresolvable); the fan-out to
#: node ``output``/``observe`` implementations is only visible via ``step``.
ENTRY_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("bus/simulator.py", ("run", "run_until", "step",
                          "advance", "advance_until")),
    ("bus/fastforward.py", ("try_advance", "_notify_span")),
    ("core/detection.py", ("handler",)),
    # Observability listeners ride the engine's event delivery, so their
    # handlers must stay wallclock- and entropy-free like the hot loop.
    ("obs/tracing.py", ("_on_event", "_on_span_commit")),
    ("obs/flight.py", ("_on_event",)),
    ("obs/snapshot.py", ("observe",)),
)

#: Exception boundaries for RC203, matched by path suffix + *full*
#: qualname: no injected-fault exception may escape these uncaught.
FAULT_BOUNDARY_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("experiments/campaign.py", ("Campaign.run", "_subprocess_worker")),
    # The campaign service's long-lived worker loop: an injected fault
    # escaping here would kill the worker instead of reporting an error.
    ("experiments/service/supervisor.py", ("_pool_worker",)),
)

#: Campaign worker entry points for RC301/RC302, matched like
#: :data:`ENTRY_SPECS` (path suffix + last qualname segment).  Statically
#: resolvable registered scenario factories are added per project on top.
WORKER_ENTRY_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("experiments/campaign.py", ("_subprocess_worker", "execute_spec",
                                 "build")),
    ("experiments/service/supervisor.py", ("_pool_worker",)),
    ("bus/simulator.py", ("advance", "advance_until")),
)

#: Deep rules whose findings can only ever anchor in one fixed file.
#: ``repro lint --deep --changed`` errors when such a rule is explicitly
#: selected but its anchor file is outside the changed set — silence
#: there would mean "not checked", not "clean".
RULE_ANCHOR_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "RC204": ("bus/events.py",),
    "RC205": ("bus/events.py",),
}

#: Root of the injected-fault exception taxonomy (plus name-resolved
#: subclasses found in the project).
FAULT_EXCEPTION_ROOT = "InjectedFaultError"


@dataclass(frozen=True)
class DeepRule:
    """Catalogue metadata for one interprocedural rule."""

    code: str
    name: str
    summary: str


DEEP_RULES: Tuple[DeepRule, ...] = (
    DeepRule("RC201", "deep-no-wallclock",
             "no wall-clock read transitively reachable from the simulator "
             "step loop or firmware ISR"),
    DeepRule("RC202", "deep-no-unseeded-random",
             "no unseeded randomness transitively reachable from the "
             "simulator step loop or firmware ISR"),
    DeepRule("RC203", "fault-containment",
             "no injected-fault exception escapes the campaign run "
             "boundary uncaught"),
    DeepRule("RC204", "event-never-consumed",
             "every bus/events.py class is consumed somewhere"),
    DeepRule("RC205", "event-never-emitted",
             "every consumed bus/events.py class is emitted somewhere"),
    DeepRule("RC301", "worker-shared-global",
             "no shared module/class state is mutated on a path reachable "
             "from a campaign worker entry point or scenario factory"),
    DeepRule("RC302", "unlocked-shared-cache",
             "cache/memo globals on worker-reachable paths are only "
             "mutated under a lock"),
    DeepRule("RC303", "pickle-safe-registration",
             "scenario factories are registered as module-level functions "
             "(picklable by reference), never lambdas or nested defs"),
    DeepRule("RC401", "thread-shared-state",
             "no shared mutable state is reached from two thread roots "
             "without a common lock (Eraser-style lockset check)"),
    DeepRule("RC402", "async-blocking-call",
             "no blocking call is reachable from an async def without "
             "await or an executor hand-off"),
    DeepRule("RC403", "signal-unsafe-handler",
             "no non-reentrant operation (lock acquire, I/O) is reachable "
             "from a registered signal handler"),
    DeepRule("RC404", "fork-lock-safety",
             "no process spawn can run while a live non-daemon thread "
             "holds a tracked lock"),
    DeepRule("RC405", "lock-order-cycle",
             "the lock-acquisition-order graph is acyclic (no deadlock "
             "potential)"),
)


def deep_rule_codes() -> List[str]:
    """All interprocedural rule codes, sorted."""
    return sorted(rule.code for rule in DEEP_RULES)


def deep_rule_catalogue() -> Tuple[DeepRule, ...]:
    """The interprocedural rules, for ``--list-rules`` and docs."""
    return DEEP_RULES


_GRAPH_CODES = frozenset({"RC201", "RC202", "RC203", "RC301", "RC302",
                          "RC401", "RC402", "RC403", "RC404", "RC405"})

_CONCURRENCY_CODES = frozenset(
    {"RC401", "RC402", "RC403", "RC404", "RC405"})


# ----------------------------------------------------------- project scope


def expand_project_files(files: Sequence[str]) -> List[str]:
    """The graph's file set: ``files`` plus the rest of every package they
    belong to.

    Interprocedural facts need the whole program: linting a single module
    must still see its callers and callees.  Each requested file's
    enclosing top-level package (found by walking the ``__init__.py``
    chain upward) is walked in full; requested spellings win over the
    expansion's so findings keep the paths the user typed.
    """
    from repro.analysis.lint.engine import collect_python_files

    known = {os.path.abspath(path) for path in files}
    roots: Set[str] = set()
    for path in files:
        directory = os.path.dirname(os.path.abspath(path))
        top: Optional[str] = None
        while os.path.isfile(os.path.join(directory, "__init__.py")):
            top = directory
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
        if top is not None:
            roots.add(top)
    merged = list(files)
    for path in collect_python_files(sorted(roots)):
        absolute = os.path.abspath(path)
        if absolute not in known:
            known.add(absolute)
            merged.append(path)
    return merged


# ------------------------------------------------------------- rule bodies


def _entry_points(project: Project) -> List[NodeKey]:
    entries: List[NodeKey] = []
    for suffix, names in ENTRY_SPECS:
        entries.extend(project.find_functions(suffix, names))
    return entries


def _chain_text(
    graph: CallGraph,
    parents: "Mapping[NodeKey, Optional[Tuple[NodeKey, CallSite]]]",
    node: NodeKey,
) -> str:
    chain = graph.call_chain(parents, node)
    return " -> ".join(qualname for _, qualname in chain)


def _reachable_sink_findings(graph: CallGraph, codes: Set[str],
                             ) -> List[Finding]:
    entries = _entry_points(graph.project)
    if not entries:
        return []
    parents = graph.reachable_from(entries)
    findings: List[Finding] = []
    for node in parents:
        fn = graph.project.function(node)
        if fn is None:
            continue
        path, _ = node
        chain: Optional[str] = None
        sink_groups = []
        if "RC201" in codes:
            sink_groups.append(("RC201", "deep-no-wallclock",
                                "wall-clock read",
                                "thread simulated time through as a "
                                "parameter instead",
                                fn.wallclock_sinks))
        if "RC202" in codes:
            sink_groups.append(("RC202", "deep-no-unseeded-random",
                                "unseeded randomness",
                                "thread a seeded random.Random through "
                                "instead",
                                fn.random_sinks))
        for code, rule_name, what, fix, sinks in sink_groups:
            for sink in sinks:
                if chain is None:
                    chain = _chain_text(graph, parents, node)
                findings.append(Finding(
                    code=code, rule=rule_name,
                    message=(f"{what} {sink.description} is reachable from "
                             f"the deterministic hot path: {chain}; {fix}"),
                    path=path, line=sink.line, column=sink.column))
    return findings


def registered_factory_nodes(project: Project) -> List[NodeKey]:
    """Call-graph nodes of every statically resolvable registered scenario
    factory (``register_scenario`` sites with a name/attribute factory
    argument).  Loop variables and computed factories stay unresolved —
    the runtime registry (:mod:`repro.analysis.purity`) covers those."""
    nodes: Set[NodeKey] = set()
    for path, summary in project.summaries.items():
        for site in summary.registrations:
            if site.factory_kind == "nested":
                nodes.add((path, site.factory[0]))
                continue
            if site.factory_kind != "ref" or not site.factory:
                continue
            parts = site.factory
            if len(parts) == 1:
                if parts[0] in summary.functions:
                    nodes.add((path, parts[0]))
                    continue
                target = summary.from_imports.get(parts[0])
                if target is not None:
                    module_path = project.modules.get(target[0])
                    if module_path is not None and target[1] in \
                            project.summaries[module_path].functions:
                        nodes.add((module_path, target[1]))
            elif len(parts) == 2:
                module = summary.import_aliases.get(parts[0])
                if module is None:
                    continue
                module_path = project.modules.get(module)
                if module_path is not None and parts[1] in \
                        project.summaries[module_path].functions:
                    nodes.add((module_path, parts[1]))
    return sorted(nodes)


def worker_entry_points(project: Project) -> List[NodeKey]:
    """RC301/RC302 roots: the campaign worker machinery plus every
    statically resolvable registered factory."""
    entries: List[NodeKey] = []
    for suffix, names in WORKER_ENTRY_SPECS:
        entries.extend(project.find_functions(suffix, names))
    entries.extend(registered_factory_nodes(project))
    return entries


def _shared_state_findings(graph: CallGraph,
                           codes: Set[str]) -> List[Finding]:
    from repro.analysis.effects import is_cache_like

    entries = worker_entry_points(graph.project)
    if not entries:
        return []
    parents = graph.reachable_from(entries)
    findings: List[Finding] = []
    for node in parents:
        fn = graph.project.function(node)
        if fn is None:
            continue
        path, _ = node
        chain: Optional[str] = None
        for mutation in fn.mutations:
            if mutation.scope != "global":
                continue
            if is_cache_like(mutation.root):
                if "RC302" not in codes or mutation.locked:
                    continue
                if chain is None:
                    chain = _chain_text(graph, parents, node)
                findings.append(Finding(
                    code="RC302", rule="unlocked-shared-cache",
                    message=(f"unlocked mutation of shared cache "
                             f"{mutation.target} is reachable from a "
                             f"campaign worker entry point: {chain}; "
                             "guard it with a lock (a `with *lock*:` "
                             "block) or key it off immutable inputs"),
                    path=path, line=mutation.line,
                    column=mutation.column))
            else:
                if "RC301" not in codes:
                    continue
                if chain is None:
                    chain = _chain_text(graph, parents, node)
                findings.append(Finding(
                    code="RC301", rule="worker-shared-global",
                    message=(f"shared module state {mutation.target} is "
                             f"mutated on a worker-reachable path: "
                             f"{chain}; workers must stay effect-free "
                             "for memoized campaign results to be sound"),
                    path=path, line=mutation.line,
                    column=mutation.column))
    return findings


def _pickle_soundness_findings(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for path, summary in project.summaries.items():
        for site in summary.registrations:
            if site.factory_kind == "lambda":
                what = "a lambda"
            elif site.factory_kind == "nested":
                what = f"nested function {site.factory[0].split('.')[-1]}"
            else:
                continue
            scenario = f"scenario {site.scenario!r}" if site.scenario \
                else "a scenario"
            findings.append(Finding(
                code="RC303", rule="pickle-safe-registration",
                message=(f"{scenario} registers {what} as its factory; "
                         "factories must be module-level functions so "
                         "specs pickle by reference into subprocess "
                         "workers (the static form of VC220/VC221)"),
                path=path, line=site.line, column=site.column))
    return findings


def _fault_escape_findings(graph: CallGraph) -> List[Finding]:
    boundaries: List[NodeKey] = []
    for suffix, qualnames in FAULT_BOUNDARY_SPECS:
        boundaries.extend(graph.project.find_functions(
            suffix, qualnames, match_qualname=True))
    if not boundaries:
        return []
    family = graph.project.exception_family(FAULT_EXCEPTION_ROOT)
    escaping = graph.escaping_exceptions()
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for boundary in boundaries:
        for exc, path, line in sorted(escaping.get(boundary, ())):
            if exc not in family:
                continue
            key = (path, line, exc)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="RC203", rule="fault-containment",
                message=(f"{exc} raised here can propagate uncaught past "
                         f"the campaign boundary {boundary[1]}; injected "
                         "faults must surface as failure records, not "
                         "crash the campaign"),
                path=path, line=line))
    return findings


def _event_liveness_findings(project: Project,
                             codes: Set[str]) -> List[Finding]:
    events_summary: Optional[FileSummary] = None
    for summary in project.summaries.values():
        if summary.path.replace("\\", "/").endswith("bus/events.py"):
            events_summary = summary
            break
    if events_summary is None:
        return []
    others = [summary for summary in project.summaries.values()
              if summary is not events_summary]
    # Abstract roots (classes other vocabulary classes derive from) are
    # not events themselves — nothing should instantiate them directly.
    vocab_bases = {
        base.split(".")[-1]
        for cls in events_summary.classes.values()
        for base in cls.bases
    }
    findings: List[Finding] = []
    for name in sorted(events_summary.class_lines):
        if name in vocab_bases:
            continue
        line = events_summary.class_lines[name]
        consumed = any(name in summary.consumed for summary in others)
        emitted = any(name in summary.instantiated
                      or name in summary.referenced for summary in others)
        if not consumed and "RC204" in codes:
            detail = ("emitted but never consumed" if emitted
                      else "neither emitted nor consumed")
            findings.append(Finding(
                code="RC204", rule="event-never-consumed",
                message=(f"event class {name} is {detail} outside "
                         "bus/events.py — dead vocabulary; drop it or "
                         "consume it"),
                path=events_summary.path, line=line))
        elif consumed and not emitted and "RC205" in codes:
            findings.append(Finding(
                code="RC205", rule="event-never-emitted",
                message=(f"event class {name} is consumed but never "
                         "emitted outside bus/events.py — that consumer "
                         "branch is dead; emit it or drop the handler"),
                path=events_summary.path, line=line))
    return findings


# --------------------------------------------------------------- top level


def _dependent_files(graph: "CallGraph",
                     requested: Set[str]) -> Set[str]:
    """Absolute paths of files whose *deep* findings can change when the
    ``requested`` (changed) files change: the transitive call-graph
    neighbourhood, both directions.

    Deep findings anchor at sinks, so editing a caller can create or
    remove a finding anchored in an unchanged callee (a new call edge
    makes a blocking sink reachable), and editing a callee changes what
    escapes through its unchanged callers (RC203).  The symmetric
    closure is the conservative answer; the analysis already runs over
    the whole project either way, this only widens the reporting filter.
    """
    adjacency: Dict[str, Set[str]] = {}
    for (caller_path, _), out_edges in graph.edges.items():
        caller_abs = os.path.abspath(caller_path)
        for (callee_path, _), _site in out_edges:
            if callee_path == caller_path:
                continue
            callee_abs = os.path.abspath(callee_path)
            adjacency.setdefault(caller_abs, set()).add(callee_abs)
            adjacency.setdefault(callee_abs, set()).add(caller_abs)
    seen = set(requested)
    frontier = list(requested)
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency.get(current, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


def _filter_candidates(project: "Project",
                       candidates: Sequence[Finding],
                       requested: Set[str],
                       ) -> Tuple[List[Finding], int]:
    """Keep findings anchored in ``requested`` files, de-duplicated, with
    ``# repro: noqa`` suppressions counted (not silently dropped)."""
    suppression_cache: Dict[str, object] = {}
    findings: List[Finding] = []
    suppressed = 0
    emitted: Set[Tuple[str, int, int, str]] = set()
    for finding in candidates:
        if os.path.abspath(finding.path) not in requested:
            continue
        key = (finding.path, finding.line, finding.column, finding.code)
        if key in emitted:
            continue
        emitted.add(key)
        index = suppression_cache.get(finding.path)
        if index is None:
            summary = project.summaries.get(finding.path)
            index = (summary.suppression_index() if summary is not None
                     else None)
            suppression_cache[finding.path] = index
        if index is not None and index.is_suppressed(  # type: ignore[union-attr]
                finding.line, finding.code):
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings, suppressed


def run_deep_rules(files: Sequence[str],
                   codes: Optional[Sequence[str]] = None,
                   cache: Optional[AnalysisCache] = None,
                   include_dependents: bool = False,
                   ) -> Tuple[List[Finding], int]:
    """Run the interprocedural rules over ``files``.

    ``files`` is the already-collected list of requested ``*.py`` files;
    the analysis itself runs over the whole enclosing project (see
    :func:`expand_project_files`) but only findings whose sink falls in a
    *requested* file are reported.  With ``include_dependents`` (the
    ``--changed`` path) the requested set additionally covers the
    transitive call-graph neighbourhood of the given files, because a
    change in one file can move deep findings anchored in another (see
    :func:`_dependent_files`).  Returns ``(findings, suppressed)`` where
    suppressed counts findings silenced by a ``# repro: noqa`` comment
    on the sink line.
    """
    from repro.analysis.callgraph import CallGraph, load_project

    wanted: Set[str] = set(codes if codes is not None else deep_rule_codes())
    if not wanted or not files:
        return [], 0

    project = load_project(expand_project_files(files), cache=cache)

    candidates: List[Finding] = []
    graph: Optional[CallGraph] = None
    if wanted & _GRAPH_CODES or include_dependents:
        graph = CallGraph(project)
        if wanted & {"RC201", "RC202"}:
            candidates.extend(_reachable_sink_findings(graph, wanted))
        if "RC203" in wanted:
            candidates.extend(_fault_escape_findings(graph))
        if wanted & {"RC301", "RC302"}:
            candidates.extend(_shared_state_findings(graph, wanted))
        if wanted & _CONCURRENCY_CODES:
            from repro.analysis.concurrency import ConcurrencyAnalysis

            candidates.extend(ConcurrencyAnalysis(graph).findings(
                sorted(wanted & _CONCURRENCY_CODES)))
    if wanted & {"RC204", "RC205"}:
        candidates.extend(_event_liveness_findings(project, wanted))
    if "RC303" in wanted:
        candidates.extend(_pickle_soundness_findings(project))

    requested = {os.path.abspath(path) for path in files}
    if include_dependents and graph is not None:
        requested = _dependent_files(graph, requested)
    return _filter_candidates(project, candidates, requested)


def build_concurrency_report(files: Sequence[str],
                             cache: Optional[AnalysisCache] = None,
                             ) -> Dict[str, object]:
    """The machine-readable RC4xx report over ``files`` (the
    ``--concurrency-report`` payload): thread roots, handlers, spawns,
    the lock-order graph, and the unsuppressed findings anchored in the
    requested files.  Schema-versioned via
    :data:`repro.analysis.concurrency.CONCURRENCY_REPORT_SCHEMA_VERSION`.
    """
    from repro.analysis.callgraph import CallGraph, load_project
    from repro.analysis.concurrency import ConcurrencyAnalysis, build_report

    project = load_project(expand_project_files(files), cache=cache)
    graph = CallGraph(project)
    candidates = ConcurrencyAnalysis(graph).findings()
    findings, suppressed = _filter_candidates(
        project, candidates, {os.path.abspath(path) for path in files})
    return build_report(graph, findings, suppressed)
