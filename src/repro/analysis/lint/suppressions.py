"""``# repro: noqa`` suppression comments.

A finding is silenced when the physical line it is anchored to carries a
suppression comment:

* ``# repro: noqa`` silences every rule on that line;
* ``# repro: noqa[RC101]`` / ``# repro: noqa[RC101, RC104]`` silence only
  the listed codes.

The marker is namespaced (``repro:``) so it never collides with flake8 /
ruff ``# noqa`` handling, and suppressions are counted in the report so a
silenced rule stays visible in review.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Marker meaning "every code is suppressed on this line".
ALL_CODES = "*"


class SuppressionIndex:
    """Per-line suppression lookup for one source file."""

    def __init__(self, source_lines: List[str]) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        for number, text in enumerate(source_lines, start=1):
            if "#" not in text:
                continue
            match = _NOQA_RE.search(text)
            if not match:
                continue
            raw = match.group("codes")
            if raw is None:
                self._by_line[number] = frozenset({ALL_CODES})
            else:
                codes = frozenset(
                    part.strip().upper()
                    for part in raw.split(",")
                    if part.strip()
                )
                self._by_line[number] = codes or frozenset({ALL_CODES})

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when rule ``code`` is silenced on ``line``."""
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code.upper() in codes

    def __len__(self) -> int:
        return len(self._by_line)

    def to_mapping(self) -> Dict[int, List[str]]:
        """JSON-safe ``line -> sorted codes`` view (for the analysis cache)."""
        return {line: sorted(codes) for line, codes in self._by_line.items()}

    @classmethod
    def from_mapping(cls, mapping: Dict[int, List[str]]) -> "SuppressionIndex":
        """Rebuild an index from :meth:`to_mapping` output (cache load).

        JSON round-trips dict keys as strings, so keys are coerced back to
        integers here.
        """
        index = cls([])
        index._by_line = {
            int(line): frozenset(str(code) for code in codes)
            for line, codes in mapping.items()
        }
        return index
