"""Denial-of-Service attackers (Sec. III, Fig. 2).

* **Traditional DoS** floods the lowest-priority... rather, the lowest
  (highest-priority) identifier 0x000, starving every ECU.
* **Targeted DoS** floods an ID just below (higher priority than) the victim
  message, starving only IDs at or above it — the ParkSense attack in
  Sec. V-F injects 0x25F to starve IDs >= 0x260.
* **Random DoS** floods an arbitrary non-legitimate low ID.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.attacks.base import AttackerNode, ContinuousSource, _zero_payload
from repro.node.scheduler import TransmitQueue


class DosAttacker(AttackerNode):
    """Floods one identifier continuously (back-to-back frames)."""

    attack_name = "dos"

    def __init__(
        self,
        name: str,
        can_id: int,
        payload_fn: Callable[[int], bytes] = _zero_payload,
        limit: Optional[int] = None,
        start_bits: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name,
            scheduler=ContinuousSource(can_id, payload_fn, limit, start_bits),
            **kwargs,
        )
        self.attack_id = can_id

    @property
    def frames_injected(self) -> int:
        """Frames the attacker application has handed to its controller."""
        return self.scheduler.emitted  # type: ignore[union-attr]


class TraditionalDosAttacker(DosAttacker):
    """Floods CAN ID 0x000: blocks *all* other ECUs (traditional DoS)."""

    attack_name = "traditional-dos"

    def __init__(self, name: str, **kwargs: Any) -> None:
        super().__init__(name, can_id=0x000, **kwargs)


class TargetedDosAttacker(DosAttacker):
    """Floods an ID one below the victim: blocks IDs >= the victim only."""

    attack_name = "targeted-dos"

    def __init__(self, name: str, victim_id: int, **kwargs: Any) -> None:
        if victim_id <= 0:
            raise ValueError("victim ID 0x000 cannot be targeted from below")
        super().__init__(name, can_id=victim_id - 1, **kwargs)
        self.victim_id = victim_id


class RandomDosAttacker(AttackerNode):
    """Floods random non-legitimate high-priority IDs (Fig. 2's random DoS).

    Each injected frame picks a fresh ID below ``ceiling`` that is not in
    the legitimate set — the scattershot variant between traditional and
    targeted suspension.
    """

    attack_name = "random-dos"

    def __init__(
        self,
        name: str,
        legitimate_ids: Iterable[int],
        ceiling: int = 0x100,
        seed: int = 0,
        **kwargs: Any,
    ) -> None:
        import random as _random

        legitimate = frozenset(legitimate_ids)
        pool = [i for i in range(ceiling) if i not in legitimate]
        if not pool:
            raise ValueError("no non-legitimate IDs below the ceiling")
        rng = _random.Random(seed)

        def _next_id(_instance: int) -> bytes:
            return bytes(8)

        source = ContinuousSource(pool[0], _next_id)
        original_tick = source.tick

        def tick(time: int, queue: TransmitQueue) -> int:
            source.can_id = pool[rng.randrange(len(pool))]
            return original_tick(time, queue)

        source.tick = tick  # vary the ID per injected frame
        super().__init__(name, scheduler=source, **kwargs)
        self.id_pool = tuple(pool)
