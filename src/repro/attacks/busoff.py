"""The classic bus-off attack against a *legitimate* ECU (Sec. VI-A).

Cho & Shin showed that CAN's error handling can be weaponised: an attacker
that transmits a frame with the victim's ID and a dominant-biased payload at
the same instant as the victim forces a bit error *in the victim* — repeated
32 times, the victim is bus-off.  CANnon and follow-ups made the injection
stealthy.  The attacker protects itself the same way Parrot does: it resets
its own controller (clearing TEC/REC) whenever its counters climb.

MichiCAN was not designed to stop this attack on the defended ECU itself
(during the victim's own transmission the firmware must stay silent), but it
*does* punish every attacker retransmission that runs solo — which happens
as soon as the victim enters error-passive and its suspend window lets the
attacker's frame out alone.  The tests and the extension bench quantify
exactly that boundary.
"""

from __future__ import annotations

from typing import Any

from repro.attacks.base import AttackerNode
from repro.can.frame import CanFrame
from repro.node.scheduler import TransmitQueue


class _CollisionSource:
    """Keeps a forged frame (victim ID, dominant payload) always pending."""

    def __init__(self, victim_id: int, start_bits: int) -> None:
        self.victim_id = victim_id
        self.start_bits = start_bits
        self.emitted = 0
        self.messages: list = []

    def tick(self, time: int, queue: TransmitQueue) -> int:
        if time < self.start_bits or queue.has_pending:
            return 0
        # All-dominant payload: at the first divergent data bit the victim
        # transmits recessive, reads dominant, and takes the bit error.
        queue.enqueue(CanFrame(self.victim_id, bytes(8)), time)
        self.emitted += 1
        return 1


class BusOffAttacker(AttackerNode):
    """Forces a victim ECU into bus-off via synchronized collisions.

    Args:
        victim_id: The CAN ID of the victim's periodic message.
        start_bits: Stay silent until this time (reconnaissance phase).
        tec_reset_threshold: Reset the (attacker-controlled) controller when
            its own TEC exceeds this, clearing the counters — the CANnon-
            style self-preservation that makes the attack sustainable.
    """

    attack_name = "bus-off"

    def __init__(
        self,
        name: str,
        victim_id: int,
        start_bits: int = 0,
        tec_reset_threshold: int = 96,
        **kwargs: Any,
    ) -> None:
        super().__init__(
            name, scheduler=_CollisionSource(victim_id, start_bits), **kwargs
        )
        self.victim_id = victim_id
        self.tec_reset_threshold = tec_reset_threshold
        self.controller_resets = 0

    def output(self, time: int) -> int:
        if (self.faults.tec > self.tec_reset_threshold
                and not self.is_transmitting):
            self.faults.tec = 0
            self.faults.rec = 0
            self.controller_resets += 1
        return super().output(time)
