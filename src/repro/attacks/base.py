"""Attacker substrate: compromised-but-protocol-compliant ECUs (Sec. III).

The threat model assumes the adversary executes arbitrary code on a
compromised ECU but "cannot modify the protocol controller or violate
protocol specifications" — so every attacker here is a normal
:class:`~repro.node.controller.CanNode` whose *application* behaves
maliciously: flooding low IDs, spoofing other ECUs' IDs, toggling IDs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.can.frame import CanFrame
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicScheduler, TransmitQueue


def _zero_payload(_instance: int) -> bytes:
    return bytes(8)


class ContinuousSource:
    """Keeps the transmit queue non-empty: the 'continuously sending' DoS
    primitive.  Duck-typed like :class:`PeriodicScheduler`."""

    def __init__(
        self,
        can_id: int,
        payload_fn: Callable[[int], bytes] = _zero_payload,
        limit: Optional[int] = None,
        start_bits: int = 0,
    ) -> None:
        self.can_id = can_id
        self.payload_fn = payload_fn
        self.limit = limit
        self.start_bits = start_bits
        self.emitted = 0
        self.messages: List[object] = []  # scheduler API compatibility

    def add(self, message: object) -> None:
        raise NotImplementedError("ContinuousSource emits a single ID")

    def tick(self, time: int, queue: TransmitQueue) -> int:
        if time < self.start_bits or queue.has_pending:
            return 0
        if self.limit is not None and self.emitted >= self.limit:
            return 0
        queue.enqueue(CanFrame(self.can_id, self.payload_fn(self.emitted)), time)
        self.emitted += 1
        return 1

    # Fast-forward protocol (see repro.node.scheduler.PeriodicScheduler):
    # the source refills at most once per span — the first tick with an
    # empty queue enqueues, after which has_pending blocks until the
    # controller pops it (which only happens in per-bit stepping).

    def next_due(self, time: int, queue: TransmitQueue) -> Optional[int]:
        if queue.has_pending:
            return None
        if self.limit is not None and self.emitted >= self.limit:
            return None
        return max(time, self.start_bits)

    def fast_forward(self, start: int, end: int, queue: TransmitQueue) -> None:
        if queue.has_pending:
            return
        if self.limit is not None and self.emitted >= self.limit:
            return
        at = max(start, self.start_bits)
        if at >= end:
            return
        queue.enqueue(CanFrame(self.can_id, self.payload_fn(self.emitted)), at)
        self.emitted += 1


class AttackerNode(CanNode):
    """A compromised ECU.

    Args:
        name: Node name.
        flush_queue_on_bus_off: Real controllers lose their pending TX
            requests across the reset a bus-off forces; enable to model an
            attacker whose in-flight frame is dropped when it is bused off
            (needed for the Experiment-6 toggling behaviour).
    """

    #: Human-readable attack label, set by subclasses.
    attack_name = "generic"

    def __init__(
        self,
        name: str,
        scheduler: Optional[PeriodicScheduler] = None,
        flush_queue_on_bus_off: bool = False,
        auto_recover: bool = True,
    ) -> None:
        super().__init__(name, scheduler=scheduler, auto_recover=auto_recover)
        self.flush_queue_on_bus_off = flush_queue_on_bus_off
        self.bus_off_count = 0

    def _enter_bus_off(self, time: int) -> None:
        self.bus_off_count += 1
        if self.flush_queue_on_bus_off and self.queue.has_pending:
            # The frame that just failed is lost with the controller reset.
            failed = self.queue.peek()
            assert failed is not None
            self.queue.on_success(time)  # pop; mark as abandoned
            failed.completed_at = None
        super()._enter_bus_off(time)
