"""The Experiment-6 attacker: one node toggling between two CAN IDs.

"The attacker node is sending two different CAN IDs consecutively, e.g.
toggling between 0x050 and 0x051.  An ECU adds each message that it schedules
for transmission in a buffer until it is successfully transmitted.  After 32
(re)transmissions of either 0x050 or 0x051, the attacking ECU will go into
bus-off. [...] After its recovery, the other CAN message will be transmitted
(and the ECU will be bussed-off again)." — Sec. V-C

The bus-off forces a controller reset that drops the in-flight request, so
the *other* buffered ID goes next; the attacker application keeps refilling
the buffer alternately.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.attacks.base import AttackerNode
from repro.can.frame import CanFrame
from repro.node.scheduler import TransmitQueue


class _AlternatingSource:
    """Keeps one pending frame at a time, cycling through the attack IDs."""

    def __init__(self, can_ids: Sequence[int]) -> None:
        if len(can_ids) < 2:
            raise ValueError("toggling needs at least two CAN IDs")
        self.can_ids = list(can_ids)
        self.emitted = 0
        self.messages: list = []

    def tick(self, time: int, queue: TransmitQueue) -> int:
        if queue.has_pending:
            return 0
        can_id = self.can_ids[self.emitted % len(self.can_ids)]
        queue.enqueue(CanFrame(can_id, bytes(8)), time)
        self.emitted += 1
        return 1

    # Fast-forward protocol: refills at most once per span, at span start
    # (identical to what per-bit ticking would do — has_pending then blocks
    # every later tick until the controller pops the frame per-bit).

    def next_due(self, time: int, queue: TransmitQueue) -> "int | None":
        return None if queue.has_pending else time

    def fast_forward(self, start: int, end: int, queue: TransmitQueue) -> None:
        if queue.has_pending or start >= end:
            return
        can_id = self.can_ids[self.emitted % len(self.can_ids)]
        queue.enqueue(CanFrame(can_id, bytes(8)), start)
        self.emitted += 1


class ToggleAttacker(AttackerNode):
    """One compromised ECU alternating between several attack IDs."""

    attack_name = "toggle-dos"

    def __init__(self, name: str, can_ids: Sequence[int], **kwargs: Any) -> None:
        kwargs.setdefault("flush_queue_on_bus_off", True)
        super().__init__(name, scheduler=_AlternatingSource(can_ids), **kwargs)
        self.attack_ids = tuple(can_ids)
