"""Miscellaneous attacks: IDs above max(𝔼) (Definition IV.3).

These frames carry an ID no ECU listens to; they can only delay legitimate
traffic by at most one frame length, which the paper shows is far below
safety-critical deadlines — so MichiCAN deliberately does not counterattack
them.  The attacker exists so the benchmarks can demonstrate that bound.
"""

from __future__ import annotations

from typing import Any

from repro.attacks.base import AttackerNode, ContinuousSource
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler


class MiscellaneousAttacker(AttackerNode):
    """Injects an ID above every legitimate ID, continuously or periodically."""

    attack_name = "miscellaneous"

    def __init__(
        self,
        name: str,
        can_id: int,
        highest_legitimate_id: int,
        period_bits: int = 0,
        **kwargs: Any,
    ) -> None:
        if can_id <= highest_legitimate_id:
            raise ValueError(
                f"0x{can_id:X} is not above max(E)=0x{highest_legitimate_id:X}; "
                "that would be a DoS attack, not a miscellaneous one"
            )
        if period_bits <= 0:
            scheduler = ContinuousSource(can_id)
        else:
            scheduler = PeriodicScheduler([PeriodicMessage(can_id, period_bits)])
        super().__init__(name, scheduler=scheduler, **kwargs)
        self.attack_id = can_id
