"""Fabrication / spoofing and masquerade attackers (Sec. III).

A fabrication attack injects frames with a *legitimate* ID but attacker-
chosen data, at a higher frequency than the real sender so receivers act on
the forged values.  A masquerade attack chains suspension (DoS on the victim)
with fabrication of the victim's ID.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.attacks.base import AttackerNode, ContinuousSource
from repro.can.frame import CanFrame
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler


def _forged_payload(_instance: int) -> bytes:
    return b"\xFF" * 8


class SpoofingAttacker(AttackerNode):
    """Injects a legitimate ECU's CAN ID with forged data.

    Args:
        target_id: The victim ECU's CAN ID to spoof.
        period_bits: Injection period; None floods back-to-back.
    """

    attack_name = "spoofing"

    def __init__(
        self,
        name: str,
        target_id: int,
        period_bits: Optional[int] = None,
        payload_fn: Callable[[int], bytes] = _forged_payload,
        **kwargs: Any,
    ) -> None:
        if period_bits is None:
            scheduler = ContinuousSource(target_id, payload_fn)
        else:
            scheduler = PeriodicScheduler(
                [PeriodicMessage(target_id, period_bits, payload_fn=payload_fn)]
            )
        super().__init__(name, scheduler=scheduler, **kwargs)
        self.target_id = target_id


class MasqueradeAttacker(AttackerNode):
    """Suspension + fabrication: starve the victim, then speak as it.

    Phase 1 floods ``victim_id - 1`` (targeted DoS) for ``suppress_bits``;
    phase 2 fabricates the victim's ID periodically.  Against MichiCAN the
    attack dies in phase 1 — which is precisely the paper's argument for why
    DoS prevention matters ("They demonstrate why preventing DoS attacks is
    of utmost importance").
    """

    attack_name = "masquerade"

    def __init__(
        self,
        name: str,
        victim_id: int,
        suppress_bits: int,
        fabricate_period_bits: int,
        payload_fn: Callable[[int], bytes] = _forged_payload,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        if victim_id <= 0:
            raise ValueError("victim ID 0x000 cannot be masqueraded")
        self.victim_id = victim_id
        self.suppress_bits = suppress_bits
        self.fabricate_period_bits = fabricate_period_bits
        self._payload_fn = payload_fn
        self._dos_source = ContinuousSource(victim_id - 1)
        self._fabricated = 0

    def output(self, time: int) -> int:
        if time < self.suppress_bits:
            self._dos_source.tick(time, self.queue)
        else:
            due = self.suppress_bits + self._fabricated * self.fabricate_period_bits
            if time >= due and not self.queue.has_pending:
                self.queue.enqueue(
                    CanFrame(self.victim_id, self._payload_fn(self._fabricated)),
                    time,
                )
                self._fabricated += 1
        return super().output(time)
