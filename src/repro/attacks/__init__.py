"""Threat-model implementations: DoS, spoofing, masquerade, toggling."""

from repro.attacks.base import AttackerNode, ContinuousSource
from repro.attacks.busoff import BusOffAttacker
from repro.attacks.dos import (
    DosAttacker,
    RandomDosAttacker,
    TargetedDosAttacker,
    TraditionalDosAttacker,
)
from repro.attacks.miscellaneous import MiscellaneousAttacker
from repro.attacks.multi_id import ToggleAttacker
from repro.attacks.spoofing import MasqueradeAttacker, SpoofingAttacker

__all__ = [
    "AttackerNode",
    "BusOffAttacker",
    "ContinuousSource",
    "DosAttacker",
    "MasqueradeAttacker",
    "MiscellaneousAttacker",
    "RandomDosAttacker",
    "SpoofingAttacker",
    "TargetedDosAttacker",
    "ToggleAttacker",
    "TraditionalDosAttacker",
]
