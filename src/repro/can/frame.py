"""CAN 2.0A data-frame model.

:class:`CanFrame` is the application-level view of a frame: identifier, DLC
and payload.  Bit-level concerns (CRC, stuffing, field layout on the wire)
live in :mod:`repro.can.bitstream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.can.constants import (
    DLC_BITS,
    ID_BITS,
    MAX_DLC,
    MAX_STD_ID,
)
from repro.errors import FrameError

#: Identifier width and ceiling for CAN 2.0B extended frames.
EXTENDED_ID_BITS = 29
MAX_EXT_ID = (1 << EXTENDED_ID_BITS) - 1


def _validate_can_id(can_id: int, extended: bool) -> None:
    if not isinstance(can_id, int):
        raise FrameError(f"CAN ID must be an int, got {type(can_id).__name__}")
    ceiling = MAX_EXT_ID if extended else MAX_STD_ID
    if not 0 <= can_id <= ceiling:
        kind = "29-bit extended" if extended else "11-bit"
        raise FrameError(
            f"CAN ID 0x{can_id:X} out of range for {kind} identifiers "
            f"(0x0..0x{ceiling:X})"
        )


@dataclass(frozen=True)
class CanFrame:
    """A CAN data frame (11-bit standard or 29-bit extended identifier).

    Attributes:
        can_id: The message identifier; lower values are higher priority
            and win arbitration.  11 bits normally, 29 when ``extended``.
        data: Payload of 0-8 bytes.  The DLC is always ``len(data)``.
        extended: True for a CAN 2.0B extended (29-bit identifier) frame.

    >>> frame = CanFrame(0x173, bytes([1, 2, 3]))
    >>> frame.dlc
    3
    """

    can_id: int
    data: bytes = b""
    extended: bool = False
    remote: bool = False
    #: Requested data length of a remote frame (its DLC field); data frames
    #: derive the DLC from the payload.
    remote_dlc: int = 0

    def __post_init__(self) -> None:
        _validate_can_id(self.can_id, self.extended)
        if self.remote:
            if self.data:
                raise FrameError("remote frames carry no data field")
            if not 0 <= self.remote_dlc <= MAX_DLC:
                raise FrameError(
                    f"remote DLC {self.remote_dlc} out of range 0..{MAX_DLC}"
                )
        elif self.remote_dlc:
            raise FrameError("remote_dlc is only meaningful for remote frames")
        if not isinstance(self.data, (bytes, bytearray)):
            raise FrameError(
                f"payload must be bytes, got {type(self.data).__name__}"
            )
        if len(self.data) > MAX_DLC:
            raise FrameError(
                f"payload of {len(self.data)} bytes exceeds the classical CAN "
                f"maximum of {MAX_DLC}"
            )
        if isinstance(self.data, bytearray):
            object.__setattr__(self, "data", bytes(self.data))

    @property
    def dlc(self) -> int:
        """Data length code: payload length, or the requested length for
        remote frames."""
        if self.remote:
            return self.remote_dlc
        return len(self.data)

    @property
    def id_width(self) -> int:
        """Identifier width in bits (11 or 29)."""
        return EXTENDED_ID_BITS if self.extended else ID_BITS

    def id_bits(self) -> List[int]:
        """All identifier bits, MSB first (11 or 29 of them)."""
        width = self.id_width
        return [(self.can_id >> (width - 1 - i)) & 1 for i in range(width)]

    def base_id_bits(self) -> List[int]:
        """The 11 base identifier bits (the 11 MSBs for extended frames)."""
        return self.id_bits()[:ID_BITS]

    def extension_id_bits(self) -> List[int]:
        """The 18 extension bits of an extended frame."""
        if not self.extended:
            raise FrameError("standard frames have no identifier extension")
        return self.id_bits()[ID_BITS:]

    def dlc_bits(self) -> List[int]:
        """The 4 DLC bits, MSB first."""
        return [(self.dlc >> (DLC_BITS - 1 - i)) & 1 for i in range(DLC_BITS)]

    def data_bits(self) -> List[int]:
        """The payload bits, each byte MSB first."""
        bits: List[int] = []
        for byte in self.data:
            bits.extend((byte >> (7 - i)) & 1 for i in range(8))
        return bits

    def priority_key(self) -> Tuple[int, int]:
        """Sort key mirroring arbitration: lower base ID wins; on equal
        base IDs a standard frame beats an extended one (dominant RTR vs
        recessive SRR)."""
        if self.extended:
            return (self.can_id >> (EXTENDED_ID_BITS - ID_BITS), 1)
        return (self.can_id, 0)

    def __str__(self) -> str:
        width = 8 if self.extended else 3
        tag = "x" if self.extended else ""
        if self.remote:
            return f"CAN 0x{self.can_id:0{width}X}{tag} RTR [{self.dlc}]"
        payload = self.data.hex(" ") if self.data else "<empty>"
        return f"CAN 0x{self.can_id:0{width}X}{tag} [{self.dlc}] {payload}"


@dataclass(frozen=True)
class TimestampedFrame:
    """A frame together with the bus time (bit index) at which an event
    (start of SOF, or successful completion) occurred."""

    frame: CanFrame
    time: int
    sender: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        who = f" from {self.sender}" if self.sender else ""
        return f"[t={self.time}] {self.frame}{who}"
