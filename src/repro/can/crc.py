"""CRC-15-CAN implementation per ISO 11898-1.

The CRC is computed over the un-stuffed bit sequence from SOF through the end
of the data field and is transmitted MSB-first in the 15-bit CRC field.  The
generator polynomial is ``x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1``
(0x4599 with the implicit leading term dropped).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.can.constants import CRC15_MASK, CRC15_POLY, CRC_BITS

_TOP_BIT = 1 << (CRC_BITS - 1)


def crc15_update(crc: int, bit: int) -> int:
    """Advance the CRC register by one input ``bit`` (0 or 1).

    This mirrors the shift-register formulation in ISO 11898-1: the next bit
    is XORed with the register MSB; if the result is 1, the register is
    shifted and XORed with the polynomial, otherwise only shifted.
    """
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")
    crc_next = bit ^ ((crc >> (CRC_BITS - 1)) & 1)
    crc = (crc << 1) & CRC15_MASK
    if crc_next:
        crc ^= CRC15_POLY & CRC15_MASK
    return crc


def crc15(bits: Iterable[int]) -> int:
    """Compute the CRC-15 of an un-stuffed bit sequence (MSB-first fields).

    >>> crc15([])
    0
    """
    crc = 0
    for bit in bits:
        crc = crc15_update(crc, bit)
    return crc


def crc15_bits(bits: Iterable[int]) -> List[int]:
    """Return the 15 CRC bits for ``bits``, MSB first, ready to transmit."""
    value = crc15(bits)
    return [(value >> (CRC_BITS - 1 - i)) & 1 for i in range(CRC_BITS)]
