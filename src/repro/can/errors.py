"""Typed representation of the five CAN error classes (Sec. II-B).

These are *protocol events*, not Python exceptions: a controller that detects
one reacts by transmitting an error flag, not by unwinding the stack.  Python
exceptions for API misuse live in :mod:`repro.errors`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CanErrorType(enum.Enum):
    """The five error classes defined by the CAN specification."""

    #: Transmitter read back a bus level different from the one it drove.
    BIT = "bit"
    #: Six consecutive bits of equal polarity inside the stuffed region.
    STUFF = "stuff"
    #: A fixed-format field (delimiter, EOF) held an illegal level.
    FORM = "form"
    #: Transmitter saw no dominant bit in the ACK slot.
    ACK = "ack"
    #: Receiver's computed CRC disagreed with the received CRC field.
    CRC = "crc"


@dataclass(frozen=True)
class CanError:
    """A protocol error detected by one node at one bit time.

    Attributes:
        error_type: Which of the five error classes occurred.
        time: Bus time (in bit times) at which the error was detected.
        node_name: Name of the detecting node.
        detail: Free-form human-readable context (field name, bit index, ...).
        as_transmitter: True if the detecting node was transmitting the frame.
    """

    error_type: CanErrorType
    time: int
    node_name: str
    detail: str = ""
    as_transmitter: bool = False

    def __str__(self) -> str:
        role = "tx" if self.as_transmitter else "rx"
        text = f"[t={self.time}] {self.node_name} {self.error_type.value} error ({role})"
        if self.detail:
            text += f": {self.detail}"
        return text
