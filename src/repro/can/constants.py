"""Protocol constants for CAN 2.0A (classical CAN, 11-bit identifiers).

All widths are in bits.  Field names follow ISO 11898-1 and Fig. 1a of the
MichiCAN paper.  The constants here are the single source of truth for the
frame serializer (:mod:`repro.can.bitstream`), the controller state machine
(:mod:`repro.node.controller`) and the MichiCAN detection/prevention logic
(:mod:`repro.core`).
"""

from __future__ import annotations

# --- bus levels -----------------------------------------------------------
#: Dominant bus level.  Electrically driven; wins on the wired-AND bus.
DOMINANT = 0
#: Recessive bus level.  The idle level; overwritten by any dominant driver.
RECESSIVE = 1

# --- frame field widths (CAN 2.0A data frame) ------------------------------
SOF_BITS = 1
ID_BITS = 11
RTR_BITS = 1
IDE_BITS = 1
R0_BITS = 1
DLC_BITS = 4
CRC_BITS = 15
CRC_DELIMITER_BITS = 1
ACK_SLOT_BITS = 1
ACK_DELIMITER_BITS = 1
EOF_BITS = 7

#: Highest valid 11-bit identifier.
MAX_STD_ID = (1 << ID_BITS) - 1
#: Number of distinct 11-bit identifiers (the paper's "2,048 unique messages").
NUM_STD_IDS = 1 << ID_BITS
#: Maximum payload length in bytes for classical CAN.
MAX_DLC = 8

# --- stuffing ---------------------------------------------------------------
#: A stuff bit is inserted after this many equal consecutive bits.
STUFF_RUN = 5
#: Observing this many equal consecutive bits in the stuffed region is an error.
STUFF_ERROR_RUN = 6

# --- error signalling -------------------------------------------------------
#: Length of the active error flag (dominant bits).
ACTIVE_ERROR_FLAG_BITS = 6
#: Length of the passive error flag (recessive bits).
PASSIVE_ERROR_FLAG_BITS = 6
#: Length of the error delimiter (recessive bits) that follows either flag.
ERROR_DELIMITER_BITS = 8
#: Inter-frame space (intermission) between frames.
IFS_BITS = 3
#: Extra wait for an error-passive node that transmitted the previous frame.
SUSPEND_TRANSMISSION_BITS = 8

#: Recessive bits after which a new frame may start (EOF tail + IFS); the
#: paper's "the next CAN message can only be transmitted after at least 11
#: recessive bits".
BUS_IDLE_RECESSIVE_BITS = 11

# --- fault confinement (Fig. 1b) ---------------------------------------------
#: TEC/REC threshold at which a node leaves error-active for error-passive.
ERROR_PASSIVE_THRESHOLD = 128
#: TEC threshold at which a node goes bus-off.
BUS_OFF_THRESHOLD = 256
#: TEC increment for a transmitter that detects an error in its own frame.
TEC_ERROR_INCREMENT = 8
#: REC increment for a receiver that detects an error.
REC_ERROR_INCREMENT = 1
#: TEC decrement after a successful transmission.
TEC_SUCCESS_DECREMENT = 1
#: REC decrement after a successful reception.
REC_SUCCESS_DECREMENT = 1
#: Number of 11-recessive-bit sequences required to recover from bus-off.
BUS_OFF_RECOVERY_SEQUENCES = 128

# --- CRC ----------------------------------------------------------------------
#: CRC-15-CAN generator polynomial, x^15+x^14+x^10+x^8+x^7+x^4+x^3+1 -> 0x4599.
CRC15_POLY = 0x4599
CRC15_MASK = (1 << CRC_BITS) - 1

# --- MichiCAN frame positions (Sec. IV-E of the paper) --------------------------
#: Un-stuffed bit position of the RTR bit: 1 SOF + 11 ID.
FRAME_POS_RTR = 12
#: Position at which MichiCAN enables CAN_TX multiplexing and pulls low
#: (Algorithm 1 line 20: ``cnt == 13``).
COUNTERATTACK_START_POS = 13
#: Position at which MichiCAN releases the bus (Algorithm 1 line 16:
#: ``cnt == 20``).
COUNTERATTACK_END_POS = 20

#: Average CAN frame length in bits including stuff bits used by the paper's
#: bus-load and bus-off-time analysis (``s_f = 125``).
AVERAGE_FRAME_BITS = 125

# --- common bus speeds (bit/s) ---------------------------------------------------
BUS_SPEED_50K = 50_000
BUS_SPEED_125K = 125_000
BUS_SPEED_250K = 250_000
BUS_SPEED_500K = 500_000
BUS_SPEED_1M = 1_000_000


def nominal_bit_time(bus_speed_bps: int) -> float:
    """Return the nominal bit time in seconds for ``bus_speed_bps``.

    >>> nominal_bit_time(500_000)
    2e-06
    """
    if bus_speed_bps <= 0:
        raise ValueError(f"bus speed must be positive, got {bus_speed_bps}")
    return 1.0 / bus_speed_bps


def bits_to_seconds(bits: float, bus_speed_bps: int) -> float:
    """Convert a duration in bit times to seconds at ``bus_speed_bps``."""
    return bits * nominal_bit_time(bus_speed_bps)


def bits_to_ms(bits: float, bus_speed_bps: int) -> float:
    """Convert a duration in bit times to milliseconds at ``bus_speed_bps``."""
    return bits_to_seconds(bits, bus_speed_bps) * 1e3
