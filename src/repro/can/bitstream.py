"""Bit-level serialization of CAN frames: field layout and bit stuffing.

The serializer produces, for a :class:`~repro.can.frame.CanFrame`, the exact
sequence of bus levels a compliant transmitter drives, together with a
per-bit annotation (which field, whether it is a stuff bit).  The controller
uses the annotations to distinguish *arbitration* (where losing is not an
error) from the body (where a mismatch is a bit error), and to find the ACK
slot where the transmitter itself drives recessive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.can.constants import (
    ACK_DELIMITER_BITS,
    ACK_SLOT_BITS,
    CRC_DELIMITER_BITS,
    DOMINANT,
    EOF_BITS,
    RECESSIVE,
    STUFF_RUN,
)
from repro.can.crc import crc15_bits
from repro.can.frame import CanFrame
from repro.errors import FrameError


class Field(enum.Enum):
    """Fields of CAN 2.0A/2.0B data frames in wire order."""

    SOF = "sof"
    ID = "id"                # base identifier (11 bits)
    SRR = "srr"              # substitute remote request (extended only)
    EXT_ID = "ext_id"        # identifier extension (18 bits, extended only)
    RTR = "rtr"
    IDE = "ide"
    R1 = "r1"                # reserved bit 1 (extended only)
    R0 = "r0"
    DLC = "dlc"
    DATA = "data"
    CRC = "crc"
    CRC_DELIM = "crc_delim"
    ACK_SLOT = "ack_slot"
    ACK_DELIM = "ack_delim"
    EOF = "eof"


#: Fields subject to bit stuffing (SOF through CRC sequence).
STUFFED_FIELDS = frozenset({
    Field.SOF, Field.ID, Field.SRR, Field.EXT_ID, Field.RTR, Field.IDE,
    Field.R1, Field.R0, Field.DLC, Field.DATA, Field.CRC,
})

#: Fields during which losing the bus to a dominant level is *arbitration*,
#: not a bit error.  For standard frames that is the identifier and the RTR;
#: extended frames additionally arbitrate through SRR, IDE and the 18-bit
#: extension (a standard frame's dominant RTR/IDE beats them — "standard
#: wins over extended on equal base IDs").
ARBITRATION_FIELDS = frozenset(
    {Field.ID, Field.SRR, Field.IDE, Field.EXT_ID, Field.RTR}
)

#: Arbitration fields located before the (real) RTR bit: a dominant
#: overwrite of a recessive *stuff* bit here is the ISO no-TEC exception.
PRE_RTR_ARBITRATION_FIELDS = frozenset(
    {Field.ID, Field.SRR, Field.IDE, Field.EXT_ID}
)


@dataclass(frozen=True)
class WireBit:
    """One bit of the stuffed wire-level stream.

    Attributes:
        level: 0 (dominant) or 1 (recessive).
        field: Frame field this bit belongs to (stuff bits inherit the field
            of the run they terminate).
        is_stuff: True if this is an inserted stuff bit.
        unstuffed_index: Index of this bit in the *un-stuffed* frame, counted
            from SOF = 0.  Stuff bits carry the index of the preceding real
            bit.
    """

    level: int
    field: Field
    is_stuff: bool
    unstuffed_index: int


def unstuffed_frame_bits(frame: CanFrame) -> List[Tuple[int, Field]]:
    """Return the un-stuffed (level, field) sequence for a data frame.

    The CRC is computed here, over SOF..DATA, as the transmitter would.
    The ACK slot is recessive from the transmitter's point of view.
    Standard layout: SOF, ID(11), RTR, IDE(d), r0, DLC, ...
    Extended layout: SOF, base ID(11), SRR(r), IDE(r), ext ID(18), RTR,
    r1, r0, DLC, ...
    """
    rtr_level = RECESSIVE if frame.remote else DOMINANT
    bits: List[Tuple[int, Field]] = [(DOMINANT, Field.SOF)]
    if frame.extended:
        bits.extend((b, Field.ID) for b in frame.base_id_bits())
        bits.append((RECESSIVE, Field.SRR))
        bits.append((RECESSIVE, Field.IDE))
        bits.extend((b, Field.EXT_ID) for b in frame.extension_id_bits())
        bits.append((rtr_level, Field.RTR))
        bits.append((DOMINANT, Field.R1))
    else:
        bits.extend((b, Field.ID) for b in frame.id_bits())
        bits.append((rtr_level, Field.RTR))
        bits.append((DOMINANT, Field.IDE))  # standard (11-bit) frame
    bits.append((DOMINANT, Field.R0))
    bits.extend((b, Field.DLC) for b in frame.dlc_bits())
    if not frame.remote:
        bits.extend((b, Field.DATA) for b in frame.data_bits())
    crc = crc15_bits([level for level, _field in bits])
    bits.extend((b, Field.CRC) for b in crc)
    bits.append((RECESSIVE, Field.CRC_DELIM))
    bits.append((RECESSIVE, Field.ACK_SLOT))
    bits.append((RECESSIVE, Field.ACK_DELIM))
    bits.extend((RECESSIVE, Field.EOF) for _ in range(EOF_BITS))
    return bits


def stuff(levels_and_fields: Sequence[Tuple[int, Field]]) -> List[WireBit]:
    """Insert stuff bits into the stuffed region of an un-stuffed sequence.

    After :data:`~repro.can.constants.STUFF_RUN` consecutive equal levels
    within the stuffed region, a bit of opposite polarity is inserted.  The
    inserted bit itself participates in subsequent run counting, per ISO
    11898-1.
    """
    wire: List[WireBit] = []
    run_level = -1
    run_length = 0
    for index, (level, fld) in enumerate(levels_and_fields):
        in_stuffed_region = fld in STUFFED_FIELDS
        wire.append(WireBit(level, fld, False, index))
        if not in_stuffed_region:
            run_length = 0
            run_level = -1
            continue
        if level == run_level:
            run_length += 1
        else:
            run_level = level
            run_length = 1
        if run_length == STUFF_RUN:
            stuff_level = RECESSIVE if level == DOMINANT else DOMINANT
            wire.append(WireBit(stuff_level, fld, True, index))
            run_level = stuff_level
            run_length = 1
    return wire


def serialize_frame(frame: CanFrame) -> List[WireBit]:
    """Serialize ``frame`` to its stuffed wire-level bit sequence.

    The result covers SOF through the last EOF bit.  Intermission is bus
    state, not part of the frame, and is handled by the controller.
    """
    return stuff(unstuffed_frame_bits(frame))


#: Bounded memo for :func:`serialize_frame_cached`; keyed by the (frozen,
#: hashable) frame itself.  256 distinct frames covers every workload in the
#: repo with room to spare while bounding memory for adversarial ID sweeps.
_SERIALIZE_CACHE: dict = {}
_SERIALIZE_CACHE_MAX = 256


def serialize_frame_cached(frame: CanFrame) -> List[WireBit]:
    """Memoized :func:`serialize_frame` for hot retransmission paths.

    A flooding attacker re-serializes the same frame on every one of its
    ~32 (re)transmission attempts per bus-off cycle, and the fast-forward
    engine needs a *stable* stream object per frame so its per-stream plans
    (level prefix sums, parser snapshots) can be reused across attempts.
    Callers must treat the returned list as immutable.
    """
    stream = _SERIALIZE_CACHE.get(frame)
    if stream is None:
        stream = serialize_frame(frame)
        if len(_SERIALIZE_CACHE) >= _SERIALIZE_CACHE_MAX:
            # Value-deterministic FIFO memo: entries are pure functions of
            # the frame, so worker results never depend on cache state.
            _SERIALIZE_CACHE.pop(next(iter(_SERIALIZE_CACHE)))  # repro: noqa[RC302]
        _SERIALIZE_CACHE[frame] = stream  # repro: noqa[RC302]
    return stream


def frame_wire_length(frame: CanFrame) -> int:
    """Total number of wire bits (including stuff bits) for ``frame``."""
    return len(serialize_frame(frame))


def stuff_bit_count(frame: CanFrame) -> int:
    """Number of stuff bits inserted when transmitting ``frame``."""
    return sum(1 for bit in serialize_frame(frame) if bit.is_stuff)


def destuff(levels: Sequence[int]) -> List[int]:
    """Remove stuff bits from a raw level sequence of the *stuffed region*.

    This is a convenience used by tests and by trace decoding; the online
    (incremental) destuffer used by receivers lives in
    :mod:`repro.node.rxparser`.

    Raises:
        FrameError: if six consecutive equal levels are found (a stuff error
            on a real bus) or a stuff bit has the wrong polarity.
    """
    out: List[int] = []
    run_level = -1
    run_length = 0
    expect_stuff = False
    for position, level in enumerate(levels):
        if level not in (0, 1):
            raise FrameError(f"invalid bus level {level!r} at position {position}")
        if expect_stuff:
            if level == run_level:
                raise FrameError(
                    f"stuff error: six consecutive {level}s ending at position {position}"
                )
            run_level = level
            run_length = 1
            expect_stuff = False
            continue
        out.append(level)
        if level == run_level:
            run_length += 1
        else:
            run_level = level
            run_length = 1
        if run_length == STUFF_RUN:
            expect_stuff = True
    return out


def max_stuff_bits(dlc: int, extended: bool = False) -> int:
    """Analytic upper bound on stuff bits for a frame with ``dlc`` data bytes.

    The stuffed region is 34 + 8*dlc bits long for standard frames (SOF..CRC)
    and 54 + 8*dlc for extended ones; the classic worst case inserts one
    stuff bit per 4 bits after the first run of 5.
    """
    if not 0 <= dlc <= 8:
        raise FrameError(f"DLC must be 0..8, got {dlc}")
    region = (54 if extended else 34) + 8 * dlc
    return (region - 1) // 4
