"""Integer interval sets: the scalable representation of detection ranges.

MichiCAN's detection set 𝔻 is a union of contiguous ID ranges ([0, own]
minus a handful of legitimate IDs).  For 11-bit identifiers a plain ``set``
works; for the 29-bit extended identifiers of CAN 2.0B enumeration is
impossible, so FSM generation queries *interval* subset/disjointness
instead.  :class:`IdIntervalSet` provides exactly those queries in
O(log n) per prefix.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError

Interval = Tuple[int, int]  # inclusive [lo, hi]


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and merge overlapping/adjacent intervals."""
    cleaned = []
    for lo, hi in intervals:
        if lo > hi:
            raise ConfigurationError(f"empty interval [{lo}, {hi}]")
        cleaned.append((lo, hi))
    cleaned.sort()
    merged: List[Interval] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class IdIntervalSet:
    """An immutable set of integers stored as disjoint inclusive intervals."""

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals = _normalize(intervals)
        self._starts = [lo for lo, _hi in self._intervals]

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_ids(cls, ids: Iterable[int]) -> "IdIntervalSet":
        """Build from individual integers (merges runs automatically)."""
        ordered = sorted(set(ids))
        intervals: List[Interval] = []
        for value in ordered:
            if intervals and value == intervals[-1][1] + 1:
                intervals[-1] = (intervals[-1][0], value)
            else:
                intervals.append((value, value))
        return cls(intervals)

    @classmethod
    def from_range_minus(
        cls, lo: int, hi: int, excluded: Iterable[int]
    ) -> "IdIntervalSet":
        """[lo, hi] minus the ``excluded`` integers — the exact shape of a
        MichiCAN detection range (Definition IV.4)."""
        if lo > hi:
            return cls()
        holes = sorted({e for e in excluded if lo <= e <= hi})
        intervals: List[Interval] = []
        cursor = lo
        for hole in holes:
            if cursor <= hole - 1:
                intervals.append((cursor, hole - 1))
            cursor = hole + 1
        if cursor <= hi:
            intervals.append((cursor, hi))
        return cls(intervals)

    # --------------------------------------------------------------- queries

    def __contains__(self, value: int) -> bool:
        index = bisect_right(self._starts, value) - 1
        if index < 0:
            return False
        lo, hi = self._intervals[index]
        return lo <= value <= hi

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdIntervalSet):
            return self._intervals == other._intervals
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._intervals))

    def __repr__(self) -> str:
        parts = ", ".join(f"[{lo:#x}, {hi:#x}]" for lo, hi in self._intervals)
        return f"IdIntervalSet({parts})"

    def intervals(self) -> Sequence[Interval]:
        return tuple(self._intervals)

    def iter_ids(self) -> Iterator[int]:
        """Iterate all members (only sensible for small sets)."""
        for lo, hi in self._intervals:
            yield from range(lo, hi + 1)

    def covers_range(self, lo: int, hi: int) -> bool:
        """True iff every integer in [lo, hi] is a member."""
        if lo > hi:
            return True
        index = bisect_right(self._starts, lo) - 1
        if index < 0:
            return False
        interval_lo, interval_hi = self._intervals[index]
        return interval_lo <= lo and hi <= interval_hi

    def intersects_range(self, lo: int, hi: int) -> bool:
        """True iff any integer in [lo, hi] is a member."""
        if lo > hi:
            return False
        index = bisect_right(self._starts, hi) - 1
        if index < 0:
            return False
        _interval_lo, interval_hi = self._intervals[index]
        return interval_hi >= lo

    def count_in_range(self, lo: int, hi: int) -> int:
        """Number of members within [lo, hi]."""
        if lo > hi:
            return 0
        total = 0
        for interval_lo, interval_hi in self._intervals:
            overlap_lo = max(lo, interval_lo)
            overlap_hi = min(hi, interval_hi)
            if overlap_lo <= overlap_hi:
                total += overlap_hi - overlap_lo + 1
        return total

    # ------------------------------------------------------------ operations

    def union(self, other: "IdIntervalSet") -> "IdIntervalSet":
        return IdIntervalSet(list(self._intervals) + list(other._intervals))


def as_interval_set(
    ids: Union[IdIntervalSet, Iterable[int]]
) -> IdIntervalSet:
    """Coerce an iterable of IDs (or an existing set) to an interval set."""
    if isinstance(ids, IdIntervalSet):
        return ids
    return IdIntervalSet.from_ids(ids)
