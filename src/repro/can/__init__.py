"""CAN 2.0A data-link substrate: frames, CRC-15, bit stuffing, error types."""

from repro.can.bitstream import (
    ARBITRATION_FIELDS,
    Field,
    STUFFED_FIELDS,
    WireBit,
    destuff,
    frame_wire_length,
    max_stuff_bits,
    serialize_frame,
    stuff,
    stuff_bit_count,
    unstuffed_frame_bits,
)
from repro.can.constants import (
    DOMINANT,
    MAX_DLC,
    MAX_STD_ID,
    NUM_STD_IDS,
    RECESSIVE,
    bits_to_ms,
    bits_to_seconds,
    nominal_bit_time,
)
from repro.can.crc import crc15, crc15_bits, crc15_update
from repro.can.errors import CanError, CanErrorType
from repro.can.frame import EXTENDED_ID_BITS, MAX_EXT_ID, CanFrame, TimestampedFrame
from repro.can.intervals import IdIntervalSet, as_interval_set

__all__ = [
    "ARBITRATION_FIELDS",
    "CanError",
    "CanErrorType",
    "CanFrame",
    "DOMINANT",
    "EXTENDED_ID_BITS",
    "Field",
    "IdIntervalSet",
    "MAX_DLC",
    "MAX_EXT_ID",
    "MAX_STD_ID",
    "NUM_STD_IDS",
    "RECESSIVE",
    "STUFFED_FIELDS",
    "TimestampedFrame",
    "WireBit",
    "as_interval_set",
    "bits_to_ms",
    "bits_to_seconds",
    "crc15",
    "crc15_bits",
    "crc15_update",
    "destuff",
    "frame_wire_length",
    "max_stuff_bits",
    "nominal_bit_time",
    "serialize_frame",
    "stuff",
    "stuff_bit_count",
    "unstuffed_frame_bits",
]
