"""Multi-bus topologies: lock-stepped segments and a gateway ECU.

Every vehicle in the paper's evaluation has *two* CAN buses; a central
gateway ECU bridges them, forwarding a routed subset of messages.  This
module provides:

* :class:`MultiBusSimulation` — several :class:`CanBusSimulator` segments
  advanced in lock-step on a shared bit clock (valid when the segments run
  the same bus speed, as the paper's do);
* :class:`RouteTable` / :class:`GatewayNode` — a store-and-forward gateway
  with one port (a full CAN node) per segment and per-route ID filters.

Segmentation is itself a defense-relevant property: a DoS attacker on one
bus cannot starve the other, and a gateway port can be a
:class:`~repro.core.defense.MichiCanNode`, placing MichiCAN at the one spot
that sees both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.errors import ConfigurationError
from repro.node.controller import CanNode
from repro.node.filters import AcceptanceFilter, FilterBank


class MultiBusSimulation:
    """Advance several bus segments on a shared bit clock."""

    def __init__(self) -> None:
        self.buses: Dict[str, CanBusSimulator] = {}
        self.time = 0

    def add_bus(self, name: str, sim: CanBusSimulator) -> CanBusSimulator:
        if name in self.buses:
            raise ConfigurationError(f"duplicate bus name {name!r}")
        speeds = {bus.bus_speed for bus in self.buses.values()}
        if speeds and sim.bus_speed not in speeds:
            raise ConfigurationError(
                "lock-step simulation requires equal bus speeds"
            )
        self.buses[name] = sim
        return sim

    def bus(self, name: str) -> CanBusSimulator:
        try:
            return self.buses[name]
        except KeyError:
            raise ConfigurationError(f"no bus named {name!r}") from None

    def step(self) -> None:
        for sim in self.buses.values():
            sim.step()
        self.time += 1

    def run(self, bits: int) -> int:
        for _ in range(bits):
            self.step()
        return self.time

    def run_until(self, predicate: Callable[["MultiBusSimulation"], bool],
                  limit: int) -> Optional[int]:
        for _ in range(limit):
            self.step()
            if predicate(self):
                return self.time
        return None


@dataclass(frozen=True)
class Route:
    """Forward frames arriving on ``source`` that match ``filters`` to
    every bus in ``destinations``."""

    source: str
    destinations: tuple
    filters: FilterBank = field(default_factory=FilterBank)


class RouteTable:
    """The gateway's routing configuration."""

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        self.routes: List[Route] = list(routes)

    def add(self, source: str, destinations: Iterable[str],
            can_ids: Optional[Iterable[int]] = None) -> Route:
        """Convenience: route exact IDs (or everything when None)."""
        bank = FilterBank(
            [AcceptanceFilter.exact(i) for i in can_ids]
            if can_ids is not None else []
        )
        route = Route(source, tuple(destinations), bank)
        self.routes.append(route)
        return route

    def destinations_for(self, source: str, frame: CanFrame) -> List[str]:
        result: List[str] = []
        for route in self.routes:
            if route.source == source and route.filters.accepts(frame):
                for destination in route.destinations:
                    if destination not in result:
                        result.append(destination)
        return result


class GatewayNode:
    """A gateway ECU: one CAN port per segment, store-and-forward routing.

    Args:
        name: Gateway name; ports are named ``{name}@{bus}``.
        simulation: The multi-bus simulation to attach to.
        routes: The routing table.
        port_factory: Builds each port node; defaults to a plain
            :class:`CanNode`.  Pass a factory returning a
            :class:`~repro.core.defense.MichiCanNode` to defend a segment
            from the gateway.
    """

    def __init__(
        self,
        name: str,
        simulation: MultiBusSimulation,
        routes: RouteTable,
        port_factory: Optional[Callable[[str, str], CanNode]] = None,
    ) -> None:
        self.name = name
        self.simulation = simulation
        self.routes = routes
        self.ports: Dict[str, CanNode] = {}
        self.forwarded = 0
        self.dropped = 0
        factory = port_factory or (
            lambda port_name, _bus: CanNode(port_name)
        )
        for bus_name, sim in simulation.buses.items():
            port = factory(f"{name}@{bus_name}", bus_name)
            sim.add_node(port)
            self.ports[bus_name] = port
            port.on_frame_received(self._make_handler(bus_name))

    def _make_handler(
            self, source_bus: str) -> "Callable[[int, CanFrame], None]":
        def handler(time: int, frame: CanFrame) -> None:
            destinations = self.routes.destinations_for(source_bus, frame)
            if not destinations:
                self.dropped += 1
                return
            for destination in destinations:
                # Store-and-forward: the frame re-enters arbitration on the
                # destination bus from now (its reception end time).
                self.ports[destination].queue.enqueue(frame, time)
            self.forwarded += 1

        return handler

    def port(self, bus_name: str) -> CanNode:
        return self.ports[bus_name]
