"""Channel-fault injection: sporadic bit flips on the medium.

Sec. IV-E's false-positive argument: "although MichiCAN could potentially
flag a legitimate node as an attacker due to a bit flip, a node needs to
encounter 32 consecutive errors for the TEC to reach a level that would
trigger a bus-off condition.  In case of sporadic errors, the likelihood of
hitting this threshold is near zero."  :class:`NoisyWire` makes that claim
testable: it flips resolved bus levels at a configurable rate, modelling EMI
on the differential pair.

Physical realism note: a real disturbance can flip in either direction
(coupled energy can push the differential voltage across either threshold),
so both polarities are supported; ``dominant_flips_only`` restricts noise to
recessive->dominant, the common coupling failure mode.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.bus.wire import Wire
from repro.can.constants import DOMINANT, RECESSIVE


class NoisyWire(Wire):
    """A wire that corrupts a random subset of resolved bit levels.

    Args:
        flip_probability: Per-bit probability of corruption.
        seed: RNG seed (the fault pattern is deterministic given the seed).
        dominant_flips_only: If True only recessive bits can be corrupted
            (to dominant); otherwise both directions flip.
        record: Keep the (post-noise) level history.
    """

    def __init__(
        self,
        flip_probability: float,
        seed: int = 0,
        dominant_flips_only: bool = False,
        record: bool = True,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip probability must be in [0, 1], got {flip_probability}"
            )
        super().__init__(record=record)
        self.flip_probability = flip_probability
        self.dominant_flips_only = dominant_flips_only
        self._rng = random.Random(seed)
        #: Times at which a flip was injected.
        self.flips: List[int] = []
        self._time = 0

    def drive(self, levels: Iterable[int]) -> int:
        level = super().drive(levels)
        corrupted = level
        if self._rng.random() < self.flip_probability:
            if level == RECESSIVE:
                corrupted = DOMINANT
            elif not self.dominant_flips_only:
                corrupted = RECESSIVE
        if corrupted != level:
            self.flips.append(self._time)
            self._level = corrupted
            if self.record:
                self.history[-1] = corrupted
        self._time += 1
        return self._level


class BurstNoiseWire(Wire):
    """A wire with scheduled noise bursts (EMI events of known extent).

    Args:
        bursts: (start, length, level) triples; during [start, start+length)
            the bus is forced to ``level`` regardless of drivers.
    """

    def __init__(
        self, bursts: List[Tuple[int, int, int]], record: bool = True
    ) -> None:
        super().__init__(record=record)
        for start, length, level in bursts:
            if start < 0 or length <= 0 or level not in (DOMINANT, RECESSIVE):
                raise ValueError(f"invalid burst ({start}, {length}, {level})")
        self.bursts = sorted(bursts)
        self._time = 0

    def _forced_level(self) -> Optional[int]:
        for start, length, level in self.bursts:
            if start <= self._time < start + length:
                return level
        return None

    def drive(self, levels: Iterable[int]) -> int:
        level = super().drive(levels)
        forced = self._forced_level()
        if forced is not None and forced != level:
            self._level = forced
            if self.record:
                self.history[-1] = forced
        self._time += 1
        return self._level
