"""Deprecated channel-noise wires, kept as shims over :mod:`repro.faults`.

Sec. IV-E's false-positive argument: "although MichiCAN could potentially
flag a legitimate node as an attacker due to a bit flip, a node needs to
encounter 32 consecutive errors for the TEC to reach a level that would
trigger a bus-off condition.  In case of sporadic errors, the likelihood of
hitting this threshold is near zero."  :class:`NoisyWire` made that claim
testable before the fault-injection subsystem existed; both classes now
compile down to :class:`~repro.faults.wire.FaultInjectingWire` fault specs
and exist only for backwards compatibility.  New code should build a
:class:`~repro.faults.plan.FaultPlan` with ``wire.flip`` / ``wire.burst``
specs (the :func:`~repro.faults.plan.flip_fault` /
:func:`~repro.faults.plan.burst_fault` helpers build the common cases).

Removal timeline: every in-repo caller has been migrated; both shims emit
:class:`DeprecationWarning` now and will be deleted (along with the
``repro.bus.noise`` module and its ``repro.bus`` re-exports) in the
release after next.  Only the shim-coverage tests in
``tests/bus/test_noise.py`` may keep importing them until then.
"""

from __future__ import annotations

import warnings
from typing import List, Tuple, cast

from repro.can.constants import DOMINANT, RECESSIVE
from repro.faults.plan import FaultSpec, FaultWindow
from repro.faults.wire import FaultInjectingWire, FlipFault


class NoisyWire(FaultInjectingWire):
    """Deprecated: a wire that corrupts a random subset of bit levels.

    Equivalent to a :class:`FaultInjectingWire` running one always-active
    ``wire.flip`` fault.

    Args:
        flip_probability: Per-bit probability of corruption.
        seed: RNG seed (the fault pattern is deterministic given the seed).
        dominant_flips_only: If True only recessive bits can be corrupted
            (to dominant); otherwise both directions flip.
        record: Keep the (post-noise) level history.
    """

    def __init__(
        self,
        flip_probability: float,
        seed: int = 0,
        dominant_flips_only: bool = False,
        record: bool = True,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip probability must be in [0, 1], got {flip_probability}"
            )
        warnings.warn(
            "NoisyWire is deprecated; use FaultInjectingWire with a "
            "'wire.flip' FaultSpec (repro.faults)",
            DeprecationWarning, stacklevel=2)
        spec = FaultSpec(
            name="noise", kind="wire.flip", window=FaultWindow(),
            params={"flip_probability": flip_probability,
                    "dominant_flips_only": dominant_flips_only},
            seed=seed)
        super().__init__([spec], record=record)
        self.flip_probability = flip_probability
        self.dominant_flips_only = dominant_flips_only
        self._flip_fault = cast(FlipFault, self.injectors[0])

    @property
    def flips(self) -> List[int]:
        """Times at which a flip was injected."""
        return self._flip_fault.flips


class BurstNoiseWire(FaultInjectingWire):
    """Deprecated: a wire with scheduled noise bursts (EMI events).

    Equivalent to a :class:`FaultInjectingWire` running one windowed
    ``wire.burst`` fault per burst.

    Args:
        bursts: (start, length, level) triples; during [start, start+length)
            the bus is forced to ``level`` regardless of drivers.  When
            bursts overlap the earliest-starting one wins.
    """

    def __init__(
        self, bursts: List[Tuple[int, int, int]], record: bool = True
    ) -> None:
        for start, length, level in bursts:
            if start < 0 or length <= 0 or level not in (DOMINANT, RECESSIVE):
                raise ValueError(f"invalid burst ({start}, {length}, {level})")
        warnings.warn(
            "BurstNoiseWire is deprecated; use FaultInjectingWire with "
            "'wire.burst' FaultSpecs (repro.faults)",
            DeprecationWarning, stacklevel=2)
        self.bursts = sorted(bursts)
        # Later injectors override earlier ones, so compiling in reverse
        # sorted order preserves the historical first-match-wins rule for
        # overlapping bursts.
        specs = [
            FaultSpec(
                name=f"burst_{index}", kind="wire.burst",
                window=FaultWindow(start, start + length),
                params={"level": level})
            for index, (start, length, level)
            in enumerate(reversed(self.bursts))
        ]
        super().__init__(specs, record=record)
