"""The synchronous bit-time simulation engine.

:class:`CanBusSimulator` advances global time one nominal bit time per step.
Each step has two phases: every node states what it drives, the wired-AND
level is resolved, and every node observes the result.  This mirrors how the
paper's metrics are defined — in integer bit times at a fixed bus speed —
and keeps the engine deterministic and replayable.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.bus.events import Event
from repro.bus.wire import Wire
from repro.can.constants import BUS_SPEED_500K
from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # the engine only needs these for typing
    from repro.bus.fastforward import FastForwardEngine, FastForwardStats
    from repro.node.controller import CanNode

_DEPRECATION_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _DEPRECATION_WARNED:
        # Dedup set for warnings only: never observable in results.
        _DEPRECATION_WARNED.add(key)  # repro: noqa[RC301]
        warnings.warn(message, DeprecationWarning, stacklevel=3)


class CanBusSimulator:
    """Discrete bit-level simulator for one CAN bus segment.

    Args:
        bus_speed: Nominal bus speed in bit/s; only used for time conversion
            (the engine itself is unit-less: one step == one bit).
        record_wire: Keep the full per-bit level history (needed by the
            trace recorder; disable only for very long runs).
        wire_history_bits: Bound the recorded history to a ring buffer of
            the last N bits (see :class:`~repro.bus.wire.Wire`); long
            observed runs then use constant memory, and the evicted-bit
            count is exposed as ``sim.wire.dropped_bits``.

    Example:
        >>> from repro.node.controller import CanNode
        >>> from repro.can.frame import CanFrame
        >>> sim = CanBusSimulator()
        >>> a, b = CanNode("a"), CanNode("b")
        >>> sim.add_node(a); sim.add_node(b)
        >>> a.send(CanFrame(0x100, b"\\x01"))
        >>> _ = sim.advance(200)
    """

    def __init__(
        self,
        bus_speed: int = BUS_SPEED_500K,
        record_wire: bool = True,
        wire_history_bits: Optional[int] = None,
    ) -> None:
        if bus_speed <= 0:
            raise ConfigurationError(f"bus speed must be positive, got {bus_speed}")
        self.bus_speed = bus_speed
        self.wire = Wire(record=record_wire, max_history=wire_history_bits)
        self.nodes: List[CanNode] = []
        self._names: Dict[str, CanNode] = {}
        self.time = 0
        self.events: List[Event] = []
        self._events_by_type: Dict[type, List[Event]] = {}
        self._event_listeners: List[Callable[[Event], None]] = []
        self._stop_requested = False
        self._outputs: List[int] = []
        #: Default fast-forward policy for :meth:`advance`/:meth:`advance_until`
        #: when no per-call ``policy`` is given: "auto" (chunk uncontended
        #: spans) or "off" (always per-bit).
        self.fast_forward_policy: str = "auto"
        self._ff_engine: Optional["FastForwardEngine"] = None

    # ------------------------------------------------------------- topology

    def add_node(self, node: CanNode) -> CanNode:
        """Attach ``node`` to the bus.  Names must be unique."""
        if node.name in self._names:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self._names[node.name] = node
        self.nodes.append(node)
        node.attach(self._record_event)
        return node

    def add_nodes(self, *nodes: CanNode) -> "CanBusSimulator":
        """Attach several nodes at once; returns ``self`` for chaining."""
        for node in nodes:
            self.add_node(node)
        return self

    def node(self, name: str) -> CanNode:
        """Look a node up by name."""
        try:
            return self._names[name]
        except KeyError:
            raise ConfigurationError(f"no node named {name!r}") from None

    # ---------------------------------------------------------------- events

    def _record_event(self, event: Event) -> None:
        self.events.append(event)
        bucket = self._events_by_type.get(type(event))
        if bucket is None:
            bucket = self._events_by_type[type(event)] = []
        bucket.append(event)
        for listener in self._event_listeners:
            listener(event)

    def on_event(
        self, listener: Callable[[Event], None]
    ) -> Callable[[], None]:
        """Register a live event listener (called as events happen).

        Returns a zero-argument unsubscribe handle: calling it detaches the
        listener again (idempotently), so probes and recorders do not
        accumulate forever on a reused simulator.
        """
        self._event_listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._event_listeners:
                self._event_listeners.remove(listener)

        return unsubscribe

    def off_event(self, listener: Callable[[Event], None]) -> None:
        """Detach a listener registered with :meth:`on_event`."""
        try:
            self._event_listeners.remove(listener)
        except ValueError:
            raise ConfigurationError(
                "listener is not subscribed to this simulator") from None

    def events_of(self, event_type: type) -> List[Event]:
        """All recorded events of ``event_type`` (or a subclass).

        Exact-type queries — every call site in the repo — are O(matches)
        via a per-type index maintained in :meth:`_record_event` instead of
        a linear rescan of the whole event list.  Base-class queries fall
        back to the scan to preserve exact stream order across subtypes.
        """
        buckets = [bucket for recorded, bucket in self._events_by_type.items()
                   if issubclass(recorded, event_type)]
        if not buckets:
            return []
        if len(buckets) == 1:
            return list(buckets[0])
        return [e for e in self.events if isinstance(e, event_type)]

    def request_stop(self) -> None:
        """Ask :meth:`run` to stop after the current bit (usable from
        listeners/callbacks)."""
        self._stop_requested = True

    # ------------------------------------------------------------------- run

    def step(self) -> int:
        """Advance one bit time; return the resolved bus level.

        This is the engine primitive (gateways and instrumentation call it
        directly, once per bit); for multi-bit advancement prefer
        :meth:`advance`, which fast-forwards uncontended spans.
        """
        if not self.nodes:
            raise SimulationError("cannot step a bus with no nodes")
        outputs = [node.output(self.time) for node in self.nodes]
        level = self.wire.drive(outputs)
        for node in self.nodes:
            node.observe(self.time, level)
        self.time += 1
        return level

    def _resolve_policy(self, policy: Optional[str]) -> str:
        if policy is None:
            policy = self.fast_forward_policy
        if policy not in ("auto", "off"):
            raise ConfigurationError(
                f"unknown fast-forward policy {policy!r}; expected 'auto' or 'off'"
            )
        return policy

    def _engine(self) -> "FastForwardEngine":
        engine = self._ff_engine
        if engine is None:
            # Imported lazily: the engine pulls in node/core modules that
            # the simulator itself must not depend on at import time.
            from repro.bus.fastforward import FastForwardEngine

            engine = self._ff_engine = FastForwardEngine(self)
        return engine

    @property
    def ff_stats(self) -> "FastForwardStats":
        """Fast-forward span counters (all zero until spans commit)."""
        return self._engine().stats

    def _instrumented(self) -> bool:
        # Instrumented simulators (subclass or per-instance step() override)
        # keep the one-call-per-bit contract.
        return ("step" in self.__dict__
                or type(self).step is not CanBusSimulator.step)

    def _step_bits(self, deadline: int) -> None:
        """Per-bit stepping until ``deadline`` or a requested stop."""
        if self._instrumented():
            while self.time < deadline and not self._stop_requested:
                self.step()
            return
        # The campaign layer multiplies total simulated bits, so this loop
        # is the hottest path in the repo: bind the per-node methods once,
        # reuse one outputs buffer, and avoid the step() dispatch per bit.
        nodes = self.nodes
        drive = self.wire.drive
        output_methods = [node.output for node in nodes]
        observe_methods = [node.observe for node in nodes]
        outputs = self._outputs
        if len(outputs) != len(nodes):
            outputs = self._outputs = [0] * len(nodes)
        time = self.time
        while time < deadline and not self._stop_requested:
            if len(nodes) != len(output_methods):  # topology changed mid-run
                output_methods = [node.output for node in nodes]
                observe_methods = [node.observe for node in nodes]
                outputs = self._outputs = [0] * len(nodes)
            for index, output in enumerate(output_methods):
                outputs[index] = output(time)
            level = drive(outputs)
            for observe in observe_methods:
                observe(time, level)
            time += 1
            self.time = time

    def advance(self, bits: int, *, policy: Optional[str] = None) -> int:
        """Advance the clock ``bits`` bit times (or until :meth:`request_stop`).

        Under the "auto" policy (the default) the engine fast-forwards
        uncontended spans — single-transmitter frame bodies and idle gaps —
        and drops to per-bit stepping everywhere a protocol decision can
        happen (SOF/arbitration, commit window, error frames, bus-off
        recovery, counterattacks).  Committed spans are bit-exact: state,
        wire history and the event stream match per-bit stepping (see
        :mod:`repro.bus.fastforward`).  Pass ``policy="off"`` to force
        per-bit stepping for the whole call.

        Returns the time actually reached.
        """
        if bits < 0:
            raise ConfigurationError(f"cannot run for negative time {bits}")
        if not self.nodes and bits > 0:
            raise SimulationError("cannot step a bus with no nodes")
        policy = self._resolve_policy(policy)
        self._stop_requested = False
        deadline = self.time + bits
        if policy == "off" or self._instrumented():
            self._step_bits(deadline)
            return self.time
        from repro.bus.fastforward import RETRY_INTERVAL_BITS

        try_advance = self._engine().try_advance
        while self.time < deadline and not self._stop_requested:
            if try_advance(deadline) == 0:
                chunk = self.time + RETRY_INTERVAL_BITS
                self._step_bits(chunk if chunk < deadline else deadline)
        return self.time

    def advance_until(
        self,
        predicate: Callable[["CanBusSimulator"], bool],
        limit: int,
        *,
        policy: Optional[str] = None,
    ) -> Optional[int]:
        """Advance until ``predicate(self)`` holds, at most ``limit`` bits.

        Under "auto" the predicate is evaluated after every committed span
        or stepped bit — chunk granularity, which is exact for predicates
        over controller/firmware state (spans are decision-free, so such
        predicates cannot flip inside one).  Pass ``policy="off"`` for
        strict per-bit evaluation.  Returns the time at which the predicate
        first held, or None if the limit was reached (or a stop was
        requested) first.
        """
        if limit < 0:
            raise ConfigurationError(f"cannot run for negative time {limit}")
        policy = self._resolve_policy(policy)
        self._stop_requested = False
        deadline = self.time + limit
        if policy == "off" or self._instrumented():
            while self.time < deadline:
                self.step()
                if predicate(self):
                    return self.time
                if self._stop_requested:
                    return None
            return None
        try_advance = self._engine().try_advance
        while self.time < deadline:
            if try_advance(deadline) == 0:
                self.step()
            if predicate(self):
                return self.time
            if self._stop_requested:
                return None
        return None

    def run(self, bits: int) -> int:
        """Deprecated alias for :meth:`advance` (one release grace period).

        .. deprecated:: PR 6
            Use ``advance(bits)``; ``run`` will be removed next release.
        """
        _warn_once(
            "run",
            "CanBusSimulator.run() is deprecated; use advance(bits) "
            "(identical semantics, fast-forward engine included)",
        )
        return self.advance(bits)

    def run_until(
        self, predicate: Callable[["CanBusSimulator"], bool], limit: int
    ) -> Optional[int]:
        """Deprecated alias for :meth:`advance_until` with ``policy="off"``.

        .. deprecated:: PR 6
            Use ``advance_until(predicate, limit)``; ``run_until`` will be
            removed next release.  The alias pins ``policy="off"`` to keep
            the historical strictly-per-bit predicate timing.
        """
        _warn_once(
            "run_until",
            "CanBusSimulator.run_until() is deprecated; use "
            "advance_until(predicate, limit)",
        )
        return self.advance_until(predicate, limit, policy="off")

    # ------------------------------------------------------------ conversions

    def seconds(self, bits: Optional[int] = None) -> float:
        """Convert ``bits`` (default: current time) to seconds."""
        value = self.time if bits is None else bits
        return value / self.bus_speed

    def milliseconds(self, bits: Optional[int] = None) -> float:
        """Convert ``bits`` (default: current time) to milliseconds."""
        return self.seconds(bits) * 1e3
