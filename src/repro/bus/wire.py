"""The physical medium: a wired-AND CAN bus.

A dominant (0) level driven by any node overwrites recessive (1) levels from
all others — the property arbitration, ACK and error signalling all rely on.
The wire optionally records every resolved level for the logic-analyzer
substitute (:mod:`repro.trace`); recording can be bounded to a ring buffer
of the last N bits so long observed runs do not grow memory linearly.
Independently of recording, the wire keeps exact occupancy counters
(``total_bits`` / ``dominant_bits``) so bus load is always O(1) to read.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat
from typing import Iterable, List, MutableSequence, Optional

from repro.can.constants import DOMINANT, RECESSIVE


def resolve(levels: Iterable[int]) -> int:
    """Resolve simultaneous drive levels with wired-AND semantics.

    An empty collection yields the idle (recessive) level.
    """
    for level in levels:
        if level == DOMINANT:
            return DOMINANT
        if level != RECESSIVE:
            raise ValueError(f"invalid drive level {level!r}")
    return RECESSIVE


class Wire:
    """A CAN bus segment with optional (optionally bounded) level recording.

    Args:
        record: Keep the resolved per-bit level history.
        max_history: When set, keep only the last ``max_history`` bits (a
            ring buffer); older bits are dropped and counted in
            :attr:`dropped_bits`.  Unbounded (a plain list) when None.

    Attributes:
        history: Resolved levels when recording is on — a list covering all
            of t=0.. when unbounded, a deque covering the trailing window
            when bounded.
        total_bits: Bits resolved since construction (recording or not).
        dominant_bits: How many of those resolved dominant.
    """

    def __init__(self, record: bool = True,
                 max_history: Optional[int] = None) -> None:
        if max_history is not None and max_history <= 0:
            raise ValueError(
                f"max_history must be positive, got {max_history}")
        self.record = record
        self.max_history = max_history
        self.history: MutableSequence[int]
        if record and max_history is not None:
            self.history = deque(maxlen=max_history)
        else:
            self.history = []
        self.total_bits = 0
        self.dominant_bits = 0
        self._level = RECESSIVE

    @property
    def level(self) -> int:
        """The most recently resolved bus level."""
        return self._level

    @property
    def dropped_bits(self) -> int:
        """Recorded bits evicted by the bounded window (0 when unbounded
        or recording is off)."""
        if not self.record:
            return 0
        return self.total_bits - len(self.history)

    def dominant_fraction(self) -> float:
        """Fraction of all resolved bits that were dominant — exact over
        the whole run even when the history window is bounded or off."""
        if not self.total_bits:
            return 0.0
        return self.dominant_bits / self.total_bits

    def drive(self, levels: Iterable[int]) -> int:
        """Resolve one bit time of simultaneous drives; record and return it."""
        level = resolve(levels)
        self._level = level
        self.total_bits += 1
        if level == DOMINANT:
            self.dominant_bits += 1
        if self.record:
            self.history.append(level)
        return level

    def extend_history(self, levels: "List[int]", dominant: int) -> None:
        """Batch-append pre-resolved levels (the fast-forward commit path).

        The caller has already resolved every bit of an uncontended span
        (wired-AND over all drivers) and counted its dominant levels;
        counters, :attr:`level` and the recorded history end up exactly as
        if :meth:`drive` had run once per bit.
        """
        count = len(levels)
        if not count:
            return
        self.total_bits += count
        self.dominant_bits += dominant
        self._level = levels[-1]
        if self.record:
            self.history.extend(levels)

    def extend_recessive(self, count: int) -> None:
        """Batch-append ``count`` recessive (idle) bits."""
        if count <= 0:
            return
        self.total_bits += count
        self._level = RECESSIVE
        if self.record:
            self.history.extend(repeat(RECESSIVE, count))

    def _override_level(self, level: int) -> int:
        """Replace the most recently resolved level (fault injection).

        Keeps the O(1) occupancy counters and the recorded history
        consistent with the corrupted level, so ``dominant_fraction()``
        and :mod:`repro.trace` see what the nodes see.
        """
        if level not in (DOMINANT, RECESSIVE):
            raise ValueError(f"invalid override level {level!r}")
        if not self.total_bits:
            raise ValueError("no resolved bit to override yet")
        if level == self._level:
            return level
        if self._level == DOMINANT:
            self.dominant_bits -= 1
        else:
            self.dominant_bits += 1
        self._level = level
        if self.record:
            self.history[-1] = level
        return level

    def recessive_run_ending_at(self, time: Optional[int] = None) -> int:
        """Length of the recessive run ending at ``time`` (default: now).

        With a bounded window the run is measured within the window only
        (it cannot see evicted bits); asking about a time before the window
        start raises.
        """
        if not self.record:
            raise ValueError("wire recording is disabled")
        dropped = self.dropped_bits
        end = self.total_bits if time is None else time + 1
        end -= dropped
        if end < 0:
            raise ValueError(
                f"time {time} precedes the recorded window "
                f"(first recorded bit is t={dropped})")
        run = 0
        for index in range(end - 1, -1, -1):
            if self.history[index] != RECESSIVE:
                break
            run += 1
        return run
