"""The physical medium: a wired-AND CAN bus.

A dominant (0) level driven by any node overwrites recessive (1) levels from
all others — the property arbitration, ACK and error signalling all rely on.
The wire optionally records every resolved level for the logic-analyzer
substitute (:mod:`repro.trace`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.can.constants import DOMINANT, RECESSIVE


def resolve(levels: Iterable[int]) -> int:
    """Resolve simultaneous drive levels with wired-AND semantics.

    An empty collection yields the idle (recessive) level.
    """
    for level in levels:
        if level == DOMINANT:
            return DOMINANT
        if level != RECESSIVE:
            raise ValueError(f"invalid drive level {level!r}")
    return RECESSIVE


class Wire:
    """A CAN bus segment with optional full level recording.

    Attributes:
        history: Per-bit resolved levels since t=0 when recording is on.
    """

    def __init__(self, record: bool = True) -> None:
        self.record = record
        self.history: List[int] = []
        self._level = RECESSIVE

    @property
    def level(self) -> int:
        """The most recently resolved bus level."""
        return self._level

    def drive(self, levels: Iterable[int]) -> int:
        """Resolve one bit time of simultaneous drives; record and return it."""
        self._level = resolve(levels)
        if self.record:
            self.history.append(self._level)
        return self._level

    def recessive_run_ending_at(self, time: Optional[int] = None) -> int:
        """Length of the recessive run ending at ``time`` (default: now)."""
        if not self.record:
            raise ValueError("wire recording is disabled")
        end = len(self.history) if time is None else time + 1
        run = 0
        for index in range(end - 1, -1, -1):
            if self.history[index] != RECESSIVE:
                break
            run += 1
        return run
