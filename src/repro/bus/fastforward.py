"""Frame-level fast-forward: chunked clock advancement across uncontended spans.

The per-bit loop in :class:`~repro.bus.simulator.CanBusSimulator` pays the
full output/resolve/observe cost for every bit, yet MichiCAN's decisions (and
every other protocol decision in the repo) concentrate in a handful of bit
positions: SOF and arbitration, the ID/commit window where the firmware
tracks and may counterattack, error frames, and the ACK/EOF trailer.  The
stretches in between — frame bodies with a single synchronized transmitter,
and idle recessive gaps (including the 1408-bit bus-off recovery wait) — are
decision-free.  This module advances the clock across those spans in one
step each.

Two span kinds are recognised:

**Body spans** — exactly one node is TRANSMITTING somewhere inside its
precompiled stuffed bitstream, every other node is either a synchronized
receiver (its parser was reset at this frame's SOF and fed every bit since,
so ``parser.raw_index == tx_index - 1``) or bus-off.  The wire levels for
the rest of the stuffed region are then exactly the transmitter's stream
slice, and every receiver's parser state at the end of the span is a pure
function of the stream — precomputed once per stream and restored from a
snapshot.  The span ends at the CRC delimiter so ACK, EOF, intermission and
every error path stay per-bit.

**Idle spans** — every node is IDLE with an empty queue (or bus-off).  The
bus stays recessive until the earliest scheduler due time, the earliest
bus-off recovery bit or the caller's deadline, whichever comes first.

The determinism contract: a committed span changes simulator state exactly
as the same number of per-bit steps would — same wire history and counters,
same parser/controller/firmware state, same queue contents enqueued at the
same times — and emits **zero** events (the chunked regions are event-free
by construction, which is why probes, listeners and recorders see a
byte-identical event stream).  Whenever any precondition fails the engine
simply declines (:meth:`FastForwardEngine.try_advance` returns 0) and the
caller steps per-bit; unknown node types, instance-patched hooks, fault
injectors and custom wires therefore never see a behaviour change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.bus.wire import Wire
from repro.can.bitstream import Field, WireBit
from repro.can.constants import (
    BUS_IDLE_RECESSIVE_BITS,
    BUS_OFF_RECOVERY_SEQUENCES,
    DOMINANT,
    RECESSIVE,
)
from repro.core.detection import FirmwarePhase
from repro.node.controller import CanNode, ControllerState
from repro.node.rxparser import RxParser

if TYPE_CHECKING:
    from repro.bus.simulator import CanBusSimulator

#: The two fast-forward policies accepted by ``advance()``/``advance_until``.
FAST_FORWARD_POLICIES: Tuple[str, ...] = ("auto", "off")

#: Type of a policy value ("auto" or "off").
FastForwardPolicy = str

#: Spans shorter than this are not worth the commit bookkeeping.
MIN_SPAN_BITS = 8

#: After a declined span attempt the caller steps this many bits before the
#: next eligibility check, bounding check overhead to ~1/16 per bit while
#: delaying span entry by at most one frame's arbitration window.
RETRY_INTERVAL_BITS = 16

_PLAIN = 0
_MICHICAN = 1
_UNSAFE = 2
_PASSIVE = 3

_BASE_OUTPUT = CanNode.output
_BASE_OBSERVE = CanNode.observe

_michican_cls: type = None  # type: ignore[assignment]


def _michican_class() -> type:
    # Imported lazily to keep bus -> core -> node import edges acyclic.
    global _michican_cls
    if _michican_cls is None:
        from repro.core.defense import MichiCanNode

        _michican_cls = MichiCanNode
    return _michican_cls


_CLASS_KIND: Dict[type, int] = {}


def _class_kind(cls: type) -> int:
    """Classify a node class: plain controller, MichiCAN, or unsafe.

    Plain means the class inherits :meth:`CanNode.output` and
    :meth:`CanNode.observe` unchanged (attackers, restbus nodes, IDS taps);
    anything overriding either hook — baseline defenders, spoofers —
    is opaque to the engine and forces per-bit stepping.
    :class:`MichiCanNode` is special-cased because its firmware state is
    catch-up-able when it sits in WAIT_SOF.  Pseudo-nodes declaring
    ``ff_passive = True`` (e.g. the snapshot recorder) promise to always
    drive recessive and to take no protocol action; the engine skips them
    in eligibility checks and instead clamps spans to their
    ``next_sample_at()`` so every sample still lands on a per-bit step.
    """
    kind = _CLASS_KIND.get(cls)
    if kind is None:
        if cls is _michican_class():
            kind = _MICHICAN
        elif getattr(cls, "ff_passive", False):
            kind = _PASSIVE
        elif (getattr(cls, "output", None) is _BASE_OUTPUT
                and getattr(cls, "observe", None) is _BASE_OBSERVE):
            kind = _PLAIN
        else:
            kind = _UNSAFE
        _CLASS_KIND[cls] = kind
    return kind


def _scheduler_safe(scheduler: object) -> bool:
    """True when the scheduler's tick() effects can be replayed in O(1).

    Requires the class to implement the fast-forward protocol
    (``next_due``/``fast_forward``) and the instance to not carry a
    patched ``tick`` (e.g. the random-ID attacker's per-frame mutation).
    """
    if "tick" in getattr(scheduler, "__dict__", ()):
        return False
    cls = type(scheduler)
    return (getattr(cls, "fast_forward", None) is not None
            and getattr(cls, "next_due", None) is not None)


class FramePlan:
    """Per-bitstream precomputation shared by every span over that stream.

    Holds the raw level sequence, dominant-count prefix sums (O(1) wire
    counter updates), nearest-dominant indices in both directions (O(1)
    leading/trailing recessive-run queries for firmware and bus-off
    catch-up) and memoized end-of-span parser snapshots.
    """

    __slots__ = ("stream", "levels", "dominant_prefix", "body_end",
                 "next_dominant", "prev_dominant", "_snapshots")

    def __init__(self, stream: List[WireBit]) -> None:
        self.stream = stream
        levels = [bit.level for bit in stream]
        self.levels = levels
        total = len(levels)
        prefix = [0] * (total + 1)
        count = 0
        for index, level in enumerate(levels):
            if level == DOMINANT:
                count += 1
            prefix[index + 1] = count
        self.dominant_prefix = prefix
        body_end = total
        for index, bit in enumerate(stream):
            if bit.field is Field.CRC_DELIM:
                body_end = index
                break
        self.body_end = body_end
        next_dominant = [total] * (total + 1)
        nearest = total
        for index in range(total - 1, -1, -1):
            if levels[index] == DOMINANT:
                nearest = index
            next_dominant[index] = nearest
        self.next_dominant = next_dominant
        prev_dominant = [-1] * total
        nearest = -1
        for index in range(total):
            if levels[index] == DOMINANT:
                nearest = index
            prev_dominant[index] = nearest
        self.prev_dominant = prev_dominant
        self._snapshots: Dict[int, tuple] = {}

    def parser_state_at(self, end: int) -> tuple:
        """Parser state after reset-at-SOF plus feeding ``levels[1:end]``.

        Every receiver synchronized to this stream reaches exactly this
        state at raw index ``end - 1`` (the parser is deterministic in the
        fed levels), so one scratch replay serves all receivers of all
        retransmissions of the frame.
        """
        state = self._snapshots.get(end)
        if state is None:
            scratch = RxParser()
            feed = scratch.feed
            for level in self.levels[1:end]:
                feed(level)
            state = scratch.snapshot()
            self._snapshots[end] = state
        return state


class FastForwardStats:
    """Span counters exposed as ``sim.ff_stats`` for benchmarks and tests."""

    __slots__ = ("body_spans", "body_bits", "idle_spans", "idle_bits")

    def __init__(self) -> None:
        self.body_spans = 0
        self.body_bits = 0
        self.idle_spans = 0
        self.idle_bits = 0

    @property
    def fast_bits(self) -> int:
        """Total bits advanced without per-bit stepping."""
        return self.body_bits + self.idle_bits

    def as_dict(self) -> Dict[str, int]:
        return {
            "body_spans": self.body_spans,
            "body_bits": self.body_bits,
            "idle_spans": self.idle_spans,
            "idle_bits": self.idle_bits,
        }


@dataclass(frozen=True)
class SpanCommit:
    """One committed fast-forward span, reported to :meth:`on_span` hooks.

    Not a bus event: spans are an *engine* artifact (the bit engine never
    produces them), so they ride a separate listener channel and stay out
    of ``sim.events`` — the event stream remains engine-identical.
    """

    kind: str  #: "body" or "idle"
    start: int  #: first bit time covered by the span
    end: int  #: one past the last bit time covered
    node: Optional[str] = None  #: transmitter name for body spans

    @property
    def bits(self) -> int:
        return self.end - self.start


class FastForwardEngine:
    """Plans and commits fast-forward spans for one simulator."""

    def __init__(self, sim: "CanBusSimulator") -> None:
        self.sim = sim
        self.stats = FastForwardStats()
        self._plans: Dict[int, FramePlan] = {}
        self._span_listeners: List[Callable[[SpanCommit], None]] = []

    def on_span(self, listener: Callable[[SpanCommit], None],
                ) -> Callable[[], None]:
        """Subscribe to span commits; returns an unsubscribe handle.

        Listeners fire after the span's state changes are applied.  They
        exist for diagnostics (trace annotation, flight recording) — span
        commits carry no protocol information that the event stream does
        not, because committed regions are event-free by construction.
        """
        self._span_listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._span_listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify_span(self, commit: SpanCommit) -> None:
        for listener in list(self._span_listeners):
            listener(commit)

    # ------------------------------------------------------------- planning

    def _plan(self, stream: List[WireBit]) -> FramePlan:
        # Keyed by stream identity: serialize_frame_cached() hands the same
        # list object to every (re)transmission of a frame, and the plan
        # keeps the stream alive so the id cannot be recycled underneath.
        key = id(stream)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= 128:
                self._plans.pop(next(iter(self._plans)))
            plan = self._plans[key] = FramePlan(stream)
        return plan

    def try_advance(self, deadline: int) -> int:
        """Fast-forward one span if the bus state allows it.

        Returns the number of bits advanced (0 = the caller must step
        per-bit; nothing was changed).
        """
        sim = self.sim
        if not sim.nodes:
            return 0  # stepping an empty bus must keep raising
        if deadline - sim.time < MIN_SPAN_BITS:
            return 0
        if type(sim.wire) is not Wire:
            return 0  # fault-injecting or custom wires resolve per-bit
        transmitter = None
        active: List[CanNode] = []
        for node in sim.nodes:
            kind = _class_kind(type(node))
            if kind == _UNSAFE:
                return 0
            if kind == _PASSIVE:
                # Spans never cross a sampler's next capture time, so the
                # sample itself always happens on a per-bit step (exact
                # clock and wire counters).
                sample_at = node.next_sample_at()
                if sample_at is not None and sample_at < deadline:
                    if sample_at <= sim.time:
                        return 0
                    deadline = sample_at
                continue
            active.append(node)
            if node._start_tx_next or node._drive_dominant_once:
                return 0
            if "output" in node.__dict__ or "observe" in node.__dict__:
                return 0  # node-fault injector wrappers installed
            if not node.listen_only and not _scheduler_safe(node.scheduler):
                return 0
            if kind == _MICHICAN:
                firmware = node.firmware
                if (firmware.phase is not FirmwarePhase.WAIT_SOF
                        or firmware.drive_level != RECESSIVE
                        or node._was_attacking
                        or node._reported_detections != len(firmware.detections)):
                    return 0
            state = node.state
            if state is ControllerState.TRANSMITTING:
                if transmitter is not None:
                    return 0  # contended bus: arbitration stays per-bit
                transmitter = node
            elif (state is not ControllerState.IDLE
                    and state is not ControllerState.RECEIVING
                    and state is not ControllerState.BUS_OFF):
                return 0  # error flags, delimiters, intermission, suspend
        if transmitter is not None:
            return self._body_span(transmitter, deadline, active)
        return self._idle_span(deadline, active)

    # ----------------------------------------------------------- body spans

    def _body_span(self, tx: CanNode, deadline: int,
                   nodes: List[CanNode]) -> int:
        sim = self.sim
        start = sim.time
        index0 = tx._tx_index
        if index0 < 1:
            return 0  # SOF bit itself stays per-bit (parser reset happens there)
        plan = self._plan(tx._tx_stream)
        index1 = plan.body_end
        span = index1 - index0
        if span < MIN_SPAN_BITS or start + span > deadline:
            # Deadline-clamped spans would need snapshots at arbitrary
            # indices; declining keeps the snapshot cache exact and small.
            return 0
        if tx.parser.raw_index != index0 - 1 or tx.parser.drive_ack_next:
            return 0
        levels = plan.levels
        first_dominant = plan.next_dominant[index0]
        has_dominant = first_dominant < index1
        leading = (first_dominant if has_dominant else index1) - index0
        if has_dominant:
            trailing = index1 - 1 - plan.prev_dominant[index1 - 1]
        else:
            trailing = span
        michican = _michican_class()
        for node in nodes:
            if node is not tx:
                state = node.state
                if state is ControllerState.RECEIVING:
                    parser = node.parser
                    if parser.raw_index != index0 - 1 or parser.drive_ack_next:
                        return 0  # unsynchronized receiver: will error per-bit
                elif state is ControllerState.BUS_OFF:
                    if node.auto_recover:
                        run = node._busoff_recessive_run
                        gained = ((run + leading) // BUS_IDLE_RECESSIVE_BITS
                                  - run // BUS_IDLE_RECESSIVE_BITS)
                        if (node._busoff_sequences + gained
                                >= BUS_OFF_RECOVERY_SEQUENCES):
                            return 0  # recovery would fire mid-span
                else:
                    return 0  # a node sitting IDLE mid-frame: per-bit
            if type(node) is michican:
                # A dominant bit arriving with the 11-recessive credit
                # already earned would be a SOF from the firmware's view.
                if (has_dominant and node.firmware._cnt_sof + leading
                        >= BUS_IDLE_RECESSIVE_BITS):
                    return 0
        # ---------------------------------------------------------- commit
        end_time = start + span
        dominant = plan.dominant_prefix[index1] - plan.dominant_prefix[index0]
        sim.wire.extend_history(levels[index0:index1], dominant)
        parser_state = plan.parser_state_at(index1)
        last_time = end_time - 1
        for node in nodes:
            if not node.listen_only:
                node.scheduler.fast_forward(start, end_time, node.queue)
            node._time = last_time
            if node is tx:
                tx._tx_index = index1
                tx._sent_this_bit = levels[index1 - 1]
                tx.parser.restore(parser_state)
            elif node.state is ControllerState.RECEIVING:
                node.parser.restore(parser_state)
                node._sent_this_bit = RECESSIVE
            else:  # BUS_OFF
                node._sent_this_bit = RECESSIVE
                if node.auto_recover:
                    run = node._busoff_recessive_run
                    node._busoff_sequences += (
                        (run + leading) // BUS_IDLE_RECESSIVE_BITS
                        - run // BUS_IDLE_RECESSIVE_BITS)
                    node._busoff_recessive_run = (
                        trailing if has_dominant else run + span)
            if type(node) is michican:
                node.firmware.catch_up_wait_sof(span, has_dominant, trailing)
        sim.time = end_time
        self.stats.body_spans += 1
        self.stats.body_bits += span
        if self._span_listeners:
            self._notify_span(SpanCommit("body", start, end_time, tx.name))
        return span

    # ----------------------------------------------------------- idle spans

    def _idle_span(self, deadline: int, nodes: List[CanNode]) -> int:
        sim = self.sim
        start = sim.time
        end = deadline
        for node in nodes:
            state = node.state
            if state is ControllerState.IDLE:
                if node.queue.has_pending:
                    return 0  # about to start transmitting
                if not node.listen_only:
                    due = node.scheduler.next_due(start, node.queue)
                    if due is not None:
                        if due <= start:
                            return 0
                        if due < end:
                            end = due
            elif state is ControllerState.BUS_OFF:
                if node.auto_recover:
                    run = node._busoff_recessive_run
                    target = (BUS_OFF_RECOVERY_SEQUENCES - node._busoff_sequences
                              + run // BUS_IDLE_RECESSIVE_BITS)
                    # Recovery fires while observing this bit; it (and the
                    # idle re-entry it triggers) must stay per-bit.
                    recovery_bit = (start + BUS_IDLE_RECESSIVE_BITS * target
                                    - run - 1)
                    if recovery_bit < end:
                        end = recovery_bit
            else:
                return 0
        span = end - start
        if span < MIN_SPAN_BITS:
            return 0
        # ---------------------------------------------------------- commit
        sim.wire.extend_recessive(span)
        last_time = end - 1
        michican = _michican_class()
        for node in nodes:
            if not node.listen_only:
                node.scheduler.fast_forward(start, end, node.queue)
            node._time = last_time
            node._sent_this_bit = RECESSIVE
            if node.state is ControllerState.BUS_OFF and node.auto_recover:
                run = node._busoff_recessive_run
                node._busoff_sequences += (
                    (run + span) // BUS_IDLE_RECESSIVE_BITS
                    - run // BUS_IDLE_RECESSIVE_BITS)
                node._busoff_recessive_run = run + span
            if type(node) is michican:
                node.firmware.catch_up_wait_sof(span, False, 0)
        sim.time = end
        self.stats.idle_spans += 1
        self.stats.idle_bits += span
        if self._span_listeners:
            self._notify_span(SpanCommit("idle", start, end))
        return span
