"""Typed trace events emitted by nodes and the simulator.

Every interesting protocol occurrence becomes one event; the recorder
(:mod:`repro.trace`) and the experiment harness
(:mod:`repro.experiments.runner`) consume the stream.  Events are plain
frozen dataclasses so they can be compared and asserted on in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.can.errors import CanError
from repro.can.frame import CanFrame

if TYPE_CHECKING:  # avoid a bus <-> node circular import at runtime
    from repro.node.faults import ErrorState


@dataclass(frozen=True)
class Event:
    """Base event: a time-stamped occurrence attributed to one node."""

    time: int
    node: str


@dataclass(frozen=True)
class FrameStarted(Event):
    """A node began transmitting a frame (its SOF bit).

    ``enqueued_at`` is when the frame entered the transmit queue, so
    trace consumers can reconstruct queueing delay without access to
    the node's mailboxes.
    """

    frame: CanFrame
    attempt: int = 1
    enqueued_at: int = 0


@dataclass(frozen=True)
class FrameTransmitted(Event):
    """A node completed a frame transmission (acknowledged, EOF done)."""

    frame: CanFrame
    attempts: int = 1
    started_at: int = 0


@dataclass(frozen=True)
class FrameReceived(Event):
    """A node received a complete, valid frame."""

    frame: CanFrame


@dataclass(frozen=True)
class ArbitrationLost(Event):
    """A transmitter lost arbitration and continued as receiver."""

    frame: CanFrame
    bit_position: int = 0


@dataclass(frozen=True)
class ErrorDetected(Event):
    """A node detected a protocol error and will signal an error frame."""

    error: CanError


@dataclass(frozen=True)
class ErrorStateChanged(Event):
    """A node's fault-confinement state changed (Fig. 1b transition)."""

    old_state: ErrorState
    new_state: ErrorState
    tec: int = 0
    rec: int = 0


@dataclass(frozen=True)
class BusOffEntered(Event):
    """A node reached TEC >= 256 and left the bus."""

    tec: int = 256


@dataclass(frozen=True)
class BusOffRecovered(Event):
    """A bus-off node observed 128 x 11 recessive bits and rejoined."""


@dataclass(frozen=True)
class OverloadSignalled(Event):
    """A node began transmitting an overload flag (dominant during the
    first two intermission bits)."""

    consecutive: int = 1


@dataclass(frozen=True)
class CounterattackStarted(Event):
    """MichiCAN began pulling the bus dominant against a malicious frame."""

    target_id: Optional[int] = None
    detection_bit: int = 0


@dataclass(frozen=True)
class CounterattackEnded(Event):
    """MichiCAN released the bus (TX multiplexing disabled)."""


@dataclass(frozen=True)
class AttackDetected(Event):
    """A defense flagged an in-flight frame as malicious."""

    attack_kind: str = ""
    target_id: Optional[int] = None
    detection_bit: int = 0
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class FaultActivated(Event):
    """A fault injector entered its activation window."""

    fault: str = ""
    kind: str = ""


@dataclass(frozen=True)
class FaultDeactivated(Event):
    """A fault injector left its activation window."""

    fault: str = ""
    kind: str = ""
