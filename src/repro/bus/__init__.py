"""Bus medium and discrete bit-level simulation engine."""

from repro.bus.events import (
    ArbitrationLost,
    AttackDetected,
    BusOffEntered,
    BusOffRecovered,
    CounterattackEnded,
    CounterattackStarted,
    ErrorDetected,
    ErrorStateChanged,
    Event,
    FaultActivated,
    FaultDeactivated,
    FrameReceived,
    FrameStarted,
    FrameTransmitted,
    OverloadSignalled,
)
from repro.bus.gateway import (
    GatewayNode,
    MultiBusSimulation,
    Route,
    RouteTable,
)
from repro.bus.fastforward import (
    FAST_FORWARD_POLICIES,
    FastForwardEngine,
    FastForwardStats,
)
from repro.bus.noise import BurstNoiseWire, NoisyWire
from repro.bus.simulator import CanBusSimulator
from repro.bus.wire import Wire, resolve

__all__ = [
    "ArbitrationLost",
    "AttackDetected",
    "BusOffEntered",
    "BusOffRecovered",
    "BurstNoiseWire",
    "CanBusSimulator",
    "FAST_FORWARD_POLICIES",
    "FastForwardEngine",
    "FastForwardStats",
    "GatewayNode",
    "MultiBusSimulation",
    "NoisyWire",
    "Route",
    "RouteTable",
    "CounterattackEnded",
    "CounterattackStarted",
    "ErrorDetected",
    "ErrorStateChanged",
    "Event",
    "FaultActivated",
    "FaultDeactivated",
    "FrameReceived",
    "FrameStarted",
    "FrameTransmitted",
    "OverloadSignalled",
    "Wire",
    "resolve",
]
