"""Content-addressed campaign result cache, gated by the purity manifest.

A :class:`~repro.experiments.campaign.RunRecord` may be replayed instead
of re-simulated only when the effect analysis has certified the spec's
scenario as **pure** (:mod:`repro.analysis.purity`): replaying an impure
run could silently diverge from what a fresh run would produce.  The
cache is therefore constructed around a :class:`PurityManifest` and
refuses to cache (or serve) any scenario whose verdict is not ``"pure"``.

Addressing: one JSON file per entry under the cache directory, named by
the **spec hash** — a SHA-256 over the canonical spec dict, the
scenario's transitive slice hash from the manifest, and the campaign +
cache schema versions.  Flipping any spec field changes the spec dict;
editing any file in the scenario's execution slice changes the slice
hash; either way the address moves and the stale entry is simply never
found again (no invalidation pass needed).

Robustness follows the analysis-cache discipline: corrupted, truncated,
version-skewed or colliding entries degrade silently to a miss (the spec
re-runs), and writes are atomic (tmp + rename) so a killed campaign
never leaves a torn entry behind.

Replay is **verbatim**: the stored record round-trips through
``RunRecord.to_dict()`` unchanged, so a warm report's records are
byte-identical to the cold report that populated the cache.  The
``cache_hit`` marker is runtime-only state, deliberately excluded from
serialization.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.analysis.purity import PurityManifest
from repro.experiments.campaign import (
    SCHEMA_VERSION as CAMPAIGN_SCHEMA_VERSION,
)
from repro.experiments.campaign import RunRecord, ScenarioSpec

#: Bump when the entry layout or the hashing recipe changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory, next to the analysis cache.
DEFAULT_CACHE_DIR = os.path.join(".repro_cache", "results")


class ResultCache:
    """Content-addressed store of completed :class:`RunRecord` payloads.

    Args:
        directory: Where entries live (one ``<hash>.json`` per record).
            Created lazily on the first :meth:`put`.
        manifest: The purity manifest that certifies scenarios and
            carries their slice hashes.  Without one (``None``) every
            lookup and store is a no-op — the cache degrades to "off"
            rather than guessing.

    Attributes:
        hits: Lookups served from disk this session.
        misses: Lookups that fell through to a fresh run.
        stores: Entries written this session.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR,
                 manifest: Optional[PurityManifest] = None) -> None:
        self.directory = os.fspath(directory)
        self.manifest = manifest
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------ hashing

    def spec_hash(self, spec: ScenarioSpec) -> Optional[str]:
        """The content address of ``spec``, or ``None`` when uncacheable.

        ``None`` means "never cache this": no manifest, a scenario the
        manifest does not certify as pure, or a missing slice hash.
        """
        if self.manifest is None:
            return None
        if self.manifest.verdict(spec.scenario) != "pure":
            return None
        slice_hash = self.manifest.slice_hash(spec.scenario)
        if not slice_hash:
            return None
        blob = json.dumps(
            {
                "cache_schema": CACHE_SCHEMA_VERSION,
                "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
                "slice_hash": slice_hash,
                "spec": spec.to_dict(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    # ------------------------------------------------------------- lookup

    def get(self, spec: ScenarioSpec) -> Optional[RunRecord]:
        """The cached record for ``spec``, or ``None`` (a miss).

        A served record has ``cache_hit=True`` set; everything the
        serializer sees is the stored payload, verbatim.
        """
        digest = self.spec_hash(spec)
        if digest is None:
            return None
        entry = self._load_entry(self._entry_path(digest))
        if entry is None:
            self.misses += 1
            return None
        # Collision/corruption guard: the entry must describe this spec.
        if entry.get("spec") != spec.to_dict():
            self.misses += 1
            return None
        try:
            record = RunRecord.from_dict(entry["record"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self.misses += 1
            return None
        record.cache_hit = True
        self.hits += 1
        return record

    @staticmethod
    def _load_entry(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None  # missing, torn or foreign file: a miss
        if not isinstance(data, dict) \
                or data.get("schema_version") != CACHE_SCHEMA_VERSION \
                or data.get(
                    "campaign_schema_version") != CAMPAIGN_SCHEMA_VERSION:
            return None
        return data

    # -------------------------------------------------------------- store

    def put(self, spec: ScenarioSpec, record: RunRecord) -> bool:
        """Store ``record`` under ``spec``'s content address.

        Returns True when an entry was written; False when the spec is
        uncacheable (see :meth:`spec_hash`) or the write failed (a cache
        write failure is never allowed to fail the campaign).
        """
        digest = self.spec_hash(spec)
        if digest is None:
            return False
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "campaign_schema_version": CAMPAIGN_SCHEMA_VERSION,
            "spec_hash": digest,
            "spec": spec.to_dict(),
            "record": record.to_dict(),
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".result-", suffix=".tmp")
        except OSError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self._entry_path(digest))
        except OSError:
            return False
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        self.stores += 1
        return True

    # ---------------------------------------------------------- reporting

    def render_stats(self) -> str:
        """One status line for CLI output."""
        return (f"result cache: {self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} stored -> {self.directory}")
