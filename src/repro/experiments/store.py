"""Persistence for campaign reports: write / load / merge, schema-versioned.

A stored report is one JSON document produced by
:meth:`~repro.experiments.campaign.CampaignReport.to_dict`.  The
``schema_version`` field is checked on load so a future layout change fails
loudly instead of silently misreading old files.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Union

from repro.errors import ConfigurationError
from repro.experiments.campaign import SCHEMA_VERSION, CampaignReport

PathLike = Union[str, "os.PathLike[str]"]


def save_report(report: CampaignReport, path: PathLike) -> str:
    """Write ``report`` as JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return os.fspath(path)


def load_report(path: PathLike) -> CampaignReport:
    """Load a stored report, validating its schema version."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"report {os.fspath(path)!r} has schema version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return CampaignReport.from_dict(data)


def merge_reports(*reports: CampaignReport) -> CampaignReport:
    """Concatenate several reports into one (records in argument order).

    Wall time adds up (total compute spent); the worker count keeps the
    maximum, as the merged report no longer describes a single pool.
    """
    if not reports:
        raise ConfigurationError("cannot merge zero reports")
    merged = CampaignReport(records=[], n_workers=1, wall_seconds=0.0)
    for report in reports:
        merged.records.extend(report.records)
        merged.failures.extend(report.failures)
        merged.n_workers = max(merged.n_workers, report.n_workers)
        merged.wall_seconds += report.wall_seconds
    return merged


class ResultStore:
    """A directory of named campaign reports (``<name>.json`` files)."""

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or name.startswith("."):
            raise ConfigurationError(f"invalid report name {name!r}")
        return os.path.join(self.root, f"{name}.json")

    def write(self, name: str, report: CampaignReport) -> str:
        """Persist ``report`` under ``name``; returns the file path."""
        return save_report(report, self._path(name))

    def load(self, name: str) -> CampaignReport:
        return load_report(self._path(name))

    def names(self) -> List[str]:
        """Stored report names, sorted."""
        return sorted(
            entry[:-len(".json")]
            for entry in os.listdir(self.root)
            if entry.endswith(".json")
        )

    def merge(self, *names: str) -> CampaignReport:
        """Load and merge the named reports (all of them when none given)."""
        chosen = names or tuple(self.names())
        return merge_reports(*(self.load(name) for name in chosen))

    # ------------------------------------------------- snapshot sidecars

    def _snapshot_path(self, name: str, spec_name: str) -> str:
        safe = spec_name.replace(os.sep, "_").replace("#", "_")
        return os.path.join(self.root, f"{name}.{safe}.snapshots.jsonl")

    def write_snapshots(self, name: str, report: CampaignReport) -> List[str]:
        """Write each record's snapshot timeline as a JSONL sidecar next to
        the report; returns the paths written (instrumented records only)."""
        from repro.obs.snapshot import write_snapshots as _write

        self._path(name)  # validate the report name
        paths = []
        for record in report.records:
            if not record.snapshots:
                continue
            paths.append(_write(
                record.snapshots,
                self._snapshot_path(name, record.spec.name),
                meta={"report": name, "spec": record.spec.name},
            ))
        return paths

    def load_snapshots(self, name: str, spec_name: str
                       ) -> List[Dict[str, Any]]:
        """Load one record's snapshot timeline sidecar."""
        from repro.obs.snapshot import read_snapshots as _read

        return _read(self._snapshot_path(name, spec_name))
