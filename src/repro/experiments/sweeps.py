"""Parameter-sweep machinery: systematic variation beyond single runs.

The paper reports point measurements; the simulator can afford curves.
These sweeps are reusable drivers behind the extension benchmarks:

* :func:`sweep_attack_ids` — bus-off time and detection bit position across
  attacker identifiers (exposes the best/worst-case band of Table III);
* :func:`sweep_attacker_dlc` — the DLC dependence of the bit-error position
  (the paper's Sec. IV-E case analysis);
* :func:`sweep_restbus_load` — bus-off time vs benign load, the measured
  curve behind the T = base/(1-b) closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.attacks.dos import DosAttacker
from repro.bus.events import AttackDetected, BusOffEntered, FrameStarted
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.defense import MichiCanNode
from repro.experiments.config import RunConfig
from repro.node.controller import CanNode
from repro.trace.framelog import FINAL_PASSIVE_FRAME_BITS
from repro.workloads.matrix import theoretical_bus_load
from repro.workloads.restbus import RestbusNode
from repro.workloads.vehicles import vehicle_buses

if TYPE_CHECKING:
    from repro.experiments.scenarios import ExperimentSetup


@dataclass(frozen=True)
class FightSample:
    """One measured bus-off fight."""

    attack_id: int
    dlc: int
    detection_bit: int
    busoff_bits: Optional[int]

    @property
    def eradicated(self) -> bool:
        return self.busoff_bits is not None


def dos_fight_setup(
    attack_id: int,
    dlc: int = 8,
    detection_ids: Iterable[int] = range(0x100),
    bus_speed: int = 50_000,
    extra_nodes: Optional[Sequence[CanNode]] = None,
    name: str = "dos_fight",
) -> "ExperimentSetup":
    """A defender-vs-flooding-attacker bus, ready to run.

    The one-fight topology behind :func:`sweep_attack_ids` /
    :func:`sweep_attacker_dlc`, exposed as a named scenario factory for the
    campaign engine.
    """
    from repro.experiments.scenarios import ExperimentSetup

    sim = CanBusSimulator(bus_speed=bus_speed)
    defender = sim.add_node(MichiCanNode("defender", detection_ids))
    for node in extra_nodes or ():
        sim.add_node(node)
    attacker = sim.add_node(DosAttacker(
        "attacker", attack_id, payload_fn=lambda n, d=dlc: bytes(d)))
    return ExperimentSetup(sim, defender, (attacker,), name)


def single_frame_fight_setup(
    attack_id: int = 0x064,
    bus_speed: int = 50_000,
    name: str = "single_frame_fight",
) -> "ExperimentSetup":
    """A defender against one queued malicious frame (the speed-sweep fight).

    The attacker is a plain controller with a single pending frame; the
    defender's counterattacks force retransmissions until bus-off, so the
    first :class:`~repro.trace.framelog.BusOffEpisode` spans exactly the
    paper's bus-off time.
    """
    from repro.experiments.scenarios import ExperimentSetup

    sim = CanBusSimulator(bus_speed=bus_speed)
    defender = sim.add_node(MichiCanNode("defender", range(0x100)))
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(attack_id, bytes(8)))
    return ExperimentSetup(sim, defender, (attacker,), name)


def restbus_fight_setup(
    vehicle: str = "veh_d",
    bus: int = 1,
    target_load: float = 0.12,
    attack_id: int = 0x064,
    defender_id: int = 0x173,
    bus_speed: int = 50_000,
    name: Optional[str] = None,
) -> "ExperimentSetup":
    """Exp. 3's topology on any of the eight vehicle buses at any load.

    Replays the chosen vehicle bus thinned to ``target_load`` (0 disables
    the restbus entirely), with a MichiCAN defender and a DoS attacker —
    the parameterized scenario behind the restbus and load sweeps.
    """
    from repro.experiments.scenarios import ExperimentSetup, detection_ids_for

    if not 0.0 <= target_load < 0.8:
        raise ValueError(f"target load {target_load} outside the sane range")
    if bus not in (1, 2):
        raise ValueError(f"vehicle buses are numbered 1 or 2, got {bus}")
    matrix = vehicle_buses(vehicle)[bus - 1]
    sim = CanBusSimulator(bus_speed=bus_speed)
    if target_load > 0:
        native = theoretical_bus_load(matrix, sim.bus_speed)
        scale = max(1.0, native / target_load)
        sim.add_node(RestbusNode("restbus", matrix, sim.bus_speed,
                                 time_scale=scale))
        detection_ids = detection_ids_for(defender_id, matrix.all_ids())
    else:
        detection_ids = detection_ids_for(defender_id, [])
    defender = sim.add_node(MichiCanNode("michican", detection_ids))
    attacker = sim.add_node(DosAttacker("attacker", attack_id))
    return ExperimentSetup(sim, defender, (attacker,), name or matrix.name)


def _run_fight(
    attack_id: int,
    dlc: int = 8,
    detection_ids: Iterable[int] = range(0x100),
    limit: int = 6_000,
    extra_nodes: Optional[Sequence[CanNode]] = None,
) -> FightSample:
    setup = dos_fight_setup(attack_id, dlc=dlc, detection_ids=detection_ids,
                            extra_nodes=extra_nodes)
    sim, attacker = setup.sim, setup.attackers[0]
    sim.advance_until(lambda s: attacker.is_bus_off, limit)
    detections = sim.events_of(AttackDetected)
    detection_bit = detections[0].detection_bit if detections else 0
    busoffs = sim.events_of(BusOffEntered)
    busoff_bits: Optional[int] = None
    if busoffs:
        first = next(e.time for e in sim.events_of(FrameStarted)
                     if e.node == "attacker")
        busoff_bits = busoffs[0].time + FINAL_PASSIVE_FRAME_BITS - first
    return FightSample(attack_id, dlc, detection_bit, busoff_bits)


def sweep_attack_ids(
    attack_ids: Sequence[int],
    detection_ids: Iterable[int] = range(0x100),
) -> List[FightSample]:
    """Fight every attacker ID once on a clean bus."""
    return [_run_fight(attack_id, detection_ids=detection_ids)
            for attack_id in attack_ids]


def sweep_attacker_dlc(
    dlcs: Sequence[int] = tuple(range(9)),
    attack_id: int = 0x0AA,
) -> List[FightSample]:
    """Fight the same ID with every payload length (Sec. IV-E cases)."""
    return [_run_fight(attack_id, dlc=dlc) for dlc in dlcs]


def sweep_restbus_load(
    target_loads: Sequence[float],
    vehicle: str = "veh_d",
    duration_bits: int = 60_000,
) -> Dict[float, float]:
    """Mean bus-off bits as a function of benign load (measured curve).

    Returns target_load -> mean episode bits over the window.
    """
    results: Dict[float, float] = {}
    for load in target_loads:
        setup = restbus_fight_setup(vehicle=vehicle, target_load=load,
                                    name=f"load_{load:.2f}")
        result = setup.run(config=RunConfig(duration_bits=duration_bits))
        stats = result.attacker_stats["attacker"]
        results[load] = stats["mean_ms"] / 1e3 * setup.sim.bus_speed
    return results
