"""The campaign engine: declarative scenario specs + parallel fan-out.

The paper's large studies — the Table II grid, the restbus sweep over all
eight vehicle buses, the speed sweep — are all "build a bus from parameters,
run it for a window, keep the :class:`ExperimentResult`".  This module makes
that shape first-class:

* a **scenario registry** maps names to factories that build a ready-to-run
  :class:`~repro.experiments.scenarios.ExperimentSetup` from keyword
  parameters;
* a :class:`ScenarioSpec` is the declarative, pickle-safe description of one
  run (factory name + params + seed + duration) that any worker process can
  rebuild into a fresh simulator;
* a :class:`Campaign` fans a list of specs out over ``multiprocessing``
  workers (serial fallback for ``n_workers=1``) and collects a
  JSON-serializable :class:`CampaignReport`.

Determinism guarantee: workers re-seed the ``random`` module from
``spec.seed`` before building, and factories that take a ``seed`` parameter
receive it explicitly — so a campaign run serially and a campaign run with
any worker count produce bit-identical :class:`ExperimentResult` payloads.
Only the timing fields (wall seconds, steps/s, worker name) differ.
"""

from __future__ import annotations

import inspect
import random
import time as _time
from dataclasses import dataclass, field
from multiprocessing import current_process, get_context
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult

#: Bump when the report dict layout changes incompatibly.
SCHEMA_VERSION = 1

#: A factory takes keyword params and returns an object with
#: ``run(duration_bits) -> ExperimentResult`` (an ``ExperimentSetup``).
ScenarioFactory = Callable[..., Any]


# --------------------------------------------------------------- registry

_REGISTRY: Dict[str, ScenarioFactory] = {}


def register_scenario(name: str, factory: ScenarioFactory) -> ScenarioFactory:
    """Register ``factory`` under ``name`` for spec-driven rebuilding."""
    if name in _REGISTRY:
        raise ConfigurationError(f"scenario {name!r} already registered")
    _REGISTRY[name] = factory
    return factory


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_factory(name: str) -> ScenarioFactory:
    """Look a factory up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_summary(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    doc = scenario_factory(name).__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _register_builtin_scenarios() -> None:
    from repro.experiments import scenarios, sweeps

    for number, factory in scenarios.EXPERIMENTS.items():
        register_scenario(f"exp{number}", factory)
    register_scenario("multi_attacker", scenarios.multi_attacker_experiment)
    register_scenario("michican_vs_parrot", scenarios.michican_defense_setup)
    register_scenario("dos_fight", sweeps.dos_fight_setup)
    register_scenario("single_frame_fight", sweeps.single_frame_fight_setup)
    register_scenario("restbus_fight", sweeps.restbus_fight_setup)


_register_builtin_scenarios()


# ------------------------------------------------------------------ specs

@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment run.

    Plain data (name + params + seed + duration): pickle-safe, so it can
    cross a process boundary, and JSON-safe, so it can be stored and
    replayed later.

    Attributes:
        scenario: Registered factory name (see :func:`scenario_names`).
        params: Keyword arguments for the factory.
        seed: Deterministic seed; re-seeds ``random`` before the build and
            is forwarded to factories that accept a ``seed`` parameter.
        duration_bits: Simulated window length handed to ``setup.run()``.
        label: Optional display name; defaults to ``scenario#seed``.
        metrics: Attach a :class:`~repro.obs.probe.BusProbe` for the run
            and embed its summary in the result (off by default so the
            un-instrumented hot path stays the baseline).
        snapshot_every_bits: With ``metrics``, additionally sample a
            telemetry snapshot every N simulated bits into the record's
            JSONL-ready timeline.
    """

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    duration_bits: int = 20_000
    label: Optional[str] = None
    metrics: bool = False
    snapshot_every_bits: Optional[int] = None

    @property
    def name(self) -> str:
        return self.label or f"{self.scenario}#{self.seed}"

    def build(self) -> Any:
        """Rebuild a fresh, fully-wired ``ExperimentSetup`` from the spec."""
        factory = scenario_factory(self.scenario)
        random.seed(self.seed)
        kwargs = dict(self.params)
        if "seed" not in kwargs:
            try:
                accepts_seed = "seed" in inspect.signature(factory).parameters
            except (TypeError, ValueError):  # builtins without signatures
                accepts_seed = False
            if accepts_seed:
                kwargs["seed"] = self.seed
        return factory(**kwargs)

    def run(self) -> ExperimentResult:
        """Build and run the scenario; convenience for one-off use."""
        return self.build().run(self.duration_bits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "params": dict(self.params),
            "seed": self.seed,
            "duration_bits": self.duration_bits,
            "label": self.label,
            "metrics": self.metrics,
            "snapshot_every_bits": self.snapshot_every_bits,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            scenario=data["scenario"],
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            duration_bits=data.get("duration_bits", 20_000),
            label=data.get("label"),
            metrics=data.get("metrics", False),
            snapshot_every_bits=data.get("snapshot_every_bits"),
        )


# ---------------------------------------------------------------- records

@dataclass
class RunRecord:
    """One executed spec: the result plus per-run throughput metrics.

    ``wall_seconds`` / ``steps_per_second`` / ``worker`` are *timing
    metadata* — excluded from the determinism contract and from
    :meth:`CampaignReport.payload_equal` comparisons.
    """

    spec: ScenarioSpec
    result: ExperimentResult
    wall_seconds: float
    steps_per_second: float
    worker: str
    snapshots: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
            "wall_seconds": self.wall_seconds,
            "steps_per_second": self.steps_per_second,
            "worker": self.worker,
            "snapshots": [dict(snapshot) for snapshot in self.snapshots],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            result=ExperimentResult.from_dict(data["result"]),
            wall_seconds=data.get("wall_seconds", 0.0),
            steps_per_second=data.get("steps_per_second", 0.0),
            worker=data.get("worker", ""),
            snapshots=list(data.get("snapshots", [])),
        )


@dataclass
class CampaignReport:
    """The JSON-serializable outcome of one campaign."""

    records: List[RunRecord]
    n_workers: int
    wall_seconds: float
    schema_version: int = SCHEMA_VERSION

    @property
    def results(self) -> List[ExperimentResult]:
        return [record.result for record in self.records]

    def result_of(self, name: str) -> ExperimentResult:
        """The result of the spec whose :attr:`ScenarioSpec.name` matches."""
        for record in self.records:
            if record.spec.name == name:
                return record.result
        raise KeyError(f"no spec named {name!r} in this report")

    def total_steps(self) -> int:
        return sum(record.spec.duration_bits for record in self.records)

    def metrics_totals(self) -> Optional[Dict[str, Any]]:
        """Campaign-wide totals aggregated over every instrumented record
        (see :meth:`~repro.obs.probe.MetricsSummary.aggregate`), or
        ``None`` when no record carried metrics."""
        from repro.obs.probe import MetricsSummary

        summaries = [record.result.metrics for record in self.records
                     if record.result.metrics is not None]
        if not summaries:
            return None
        return MetricsSummary.aggregate(summaries)

    def payload_equal(self, other: "CampaignReport") -> bool:
        """True when both reports carry identical specs and results —
        the serial-vs-parallel determinism check (timing fields ignored)."""
        mine = [(r.spec.to_dict(), r.result.to_dict()) for r in self.records]
        theirs = [(r.spec.to_dict(), r.result.to_dict())
                  for r in other.records]
        return mine == theirs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignReport":
        return cls(
            records=[RunRecord.from_dict(r) for r in data.get("records", [])],
            n_workers=data.get("n_workers", 1),
            wall_seconds=data.get("wall_seconds", 0.0),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    def render(self) -> str:
        """Human-readable summary: every run's Table II block + throughput."""
        lines = [
            f"campaign: {len(self.records)} runs, "
            f"{self.n_workers} worker(s), "
            f"{self.total_steps()} bits in {self.wall_seconds:.2f} s"
        ]
        for record in self.records:
            lines.append("")
            lines.append(f"[{record.spec.name}] "
                         f"{record.steps_per_second:,.0f} steps/s "
                         f"on {record.worker}")
            lines.append(record.result.render())
            if record.snapshots:
                lines.append(f"  snapshots: {len(record.snapshots)} "
                             f"(every {record.spec.snapshot_every_bits} bits)")
        totals = self.metrics_totals()
        if totals is not None:
            from repro.obs.probe import render_totals

            lines.append("")
            lines.append("campaign-wide telemetry totals:")
            lines.append(render_totals(totals))
        return "\n".join(lines)


# -------------------------------------------------------------- execution

def execute_spec(spec: ScenarioSpec) -> RunRecord:
    """Build, run and measure one spec (the worker entry point)."""
    setup = spec.build()
    probe = recorder = None
    sim = getattr(setup, "sim", None)
    if spec.metrics and sim is not None:
        from repro.obs.probe import BusProbe
        from repro.obs.snapshot import SnapshotRecorder

        probe = BusProbe(sim)
        if spec.snapshot_every_bits:
            recorder = SnapshotRecorder(probe, spec.snapshot_every_bits)
            sim.add_node(recorder)
    started = _time.perf_counter()
    result = setup.run(spec.duration_bits)
    wall = _time.perf_counter() - started
    steps = getattr(sim, "time", spec.duration_bits)
    if probe is not None:
        result.metrics = probe.summary()
        probe.close()
    return RunRecord(
        spec=spec,
        result=result,
        wall_seconds=wall,
        steps_per_second=steps / wall if wall > 0 else 0.0,
        worker=current_process().name,
        snapshots=list(recorder.snapshots) if recorder is not None else [],
    )


class Campaign:
    """Execute a list of :class:`ScenarioSpec` over worker processes.

    Args:
        specs: The runs, in order.  Report records keep this order
            regardless of which worker finishes first.
        n_workers: Process count; ``1`` runs everything in-process (no
            multiprocessing import-side effects, easier debugging).

    Example:
        >>> from repro.experiments.campaign import Campaign, ScenarioSpec
        >>> specs = [ScenarioSpec("exp4", duration_bits=5_000, seed=s)
        ...          for s in range(4)]
        >>> report = Campaign(specs, n_workers=2).run()
        >>> len(report.results)
        4
    """

    def __init__(self, specs: Sequence[ScenarioSpec], n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"worker count must be positive, got {n_workers}")
        for spec in specs:
            scenario_factory(spec.scenario)  # fail fast on unknown names
        self.specs = list(specs)
        self.n_workers = n_workers

    def run(self) -> CampaignReport:
        started = _time.perf_counter()
        if self.n_workers == 1 or len(self.specs) <= 1:
            records = [execute_spec(spec) for spec in self.specs]
        else:
            workers = min(self.n_workers, len(self.specs))
            with get_context().Pool(processes=workers) as pool:
                records = pool.map(execute_spec, self.specs)
        return CampaignReport(
            records=records,
            n_workers=self.n_workers,
            wall_seconds=_time.perf_counter() - started,
        )
