"""The campaign engine: declarative scenario specs + parallel fan-out.

The paper's large studies — the Table II grid, the restbus sweep over all
eight vehicle buses, the speed sweep — are all "build a bus from parameters,
run it for a window, keep the :class:`ExperimentResult`".  This module makes
that shape first-class:

* a **scenario registry** maps names to factories that build a ready-to-run
  :class:`~repro.experiments.scenarios.ExperimentSetup` from keyword
  parameters;
* a :class:`ScenarioSpec` is the declarative, pickle-safe description of one
  run (factory name + params + seed + duration + optional
  :class:`~repro.faults.plan.FaultPlan`) that any worker process can
  rebuild into a fresh simulator;
* a :class:`Campaign` fans a list of specs out over worker processes
  (serial fallback for ``n_workers=1``) and collects a JSON-serializable
  :class:`CampaignReport`.

Determinism guarantee: workers re-seed the ``random`` module from
``spec.seed`` before building, and factories that take a ``seed`` parameter
receive it explicitly — so a campaign run serially and a campaign run with
any worker count produce bit-identical :class:`ExperimentResult` payloads.
Only the timing fields (wall seconds, steps/s, worker name) differ.

Robustness guarantee: a worker that raises, crashes hard, or exceeds the
per-spec wall-clock timeout does not abort the fan-out.  The spec is
retried with exponential backoff up to ``max_retries`` times; a spec that
never completes becomes a structured :class:`RunFailure` in the report.
With a ``checkpoint`` path every completed record is persisted
incrementally (JSONL), and ``run(resume=True)`` skips the specs the
checkpoint already holds.
"""

from __future__ import annotations

import inspect
import json
import os
import random
import time as _time
from dataclasses import dataclass, field
from multiprocessing import current_process, get_context
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult
from repro.faults.plan import FaultPlan

#: Bump when the report dict layout changes incompatibly.
#: v2: reports carry a ``failures`` list; specs carry a ``faults`` plan.
#: v3: records and failures carry optional flight-recorder dumps.
SCHEMA_VERSION = 3

#: A factory takes keyword params and returns an object with
#: ``run(duration_bits) -> ExperimentResult`` (an ``ExperimentSetup``).
ScenarioFactory = Callable[..., Any]


# --------------------------------------------------------------- registry

_REGISTRY: Dict[str, ScenarioFactory] = {}


def register_scenario(name: str, factory: ScenarioFactory) -> ScenarioFactory:
    """Register ``factory`` under ``name`` for spec-driven rebuilding."""
    if name in _REGISTRY:
        raise ConfigurationError(f"scenario {name!r} already registered")
    _REGISTRY[name] = factory
    return factory


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_factory(name: str) -> ScenarioFactory:
    """Look a factory up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_summary(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    doc = scenario_factory(name).__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _register_builtin_scenarios() -> None:
    from repro.experiments import chaos, scenarios, sweeps

    for number, factory in scenarios.EXPERIMENTS.items():
        register_scenario(f"exp{number}", factory)
    register_scenario("multi_attacker", scenarios.multi_attacker_experiment)
    register_scenario("michican_vs_parrot", scenarios.michican_defense_setup)
    register_scenario("dos_fight", sweeps.dos_fight_setup)
    register_scenario("single_frame_fight", sweeps.single_frame_fight_setup)
    register_scenario("restbus_fight", sweeps.restbus_fight_setup)
    register_scenario("chaos_fight", chaos.chaos_fight_setup)
    register_scenario("chaos_benign", chaos.chaos_benign_setup)
    register_scenario("restbus_baseline", scenarios.restbus_baseline)


# ------------------------------------------------------------------ specs

@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment run.

    Plain data (name + params + seed + duration): pickle-safe, so it can
    cross a process boundary, and JSON-safe, so it can be stored and
    replayed later.

    Attributes:
        scenario: Registered factory name (see :func:`scenario_names`).
        params: Keyword arguments for the factory.
        seed: Deterministic seed; re-seeds ``random`` before the build and
            is forwarded to factories that accept a ``seed`` parameter.
        duration_bits: Simulated window length handed to ``setup.run()``.
        label: Optional display name; defaults to ``scenario#seed``.
        metrics: Attach a :class:`~repro.obs.probe.BusProbe` for the run
            and embed its summary in the result (off by default so the
            un-instrumented hot path stays the baseline).
        snapshot_every_bits: With ``metrics``, additionally sample a
            telemetry snapshot every N simulated bits into the record's
            JSONL-ready timeline.
        faults: Optional :class:`~repro.faults.plan.FaultPlan` applied to
            the freshly built simulator before the run (chaos wiring).
        engine: "fast" (default) runs through the fast-forward engine,
            "bit" forces per-bit stepping — both produce identical results
            (the differential suite enforces this); "bit" exists for
            engine-comparison benchmarks and as an escape hatch.
    """

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    duration_bits: int = 20_000
    label: Optional[str] = None
    metrics: bool = False
    snapshot_every_bits: Optional[int] = None
    faults: Optional[FaultPlan] = None
    engine: str = "fast"

    @property
    def name(self) -> str:
        return self.label or f"{self.scenario}#{self.seed}"

    def build(self) -> Any:
        """Rebuild a fresh, fully-wired ``ExperimentSetup`` from the spec."""
        factory = scenario_factory(self.scenario)
        random.seed(self.seed)
        kwargs = dict(self.params)
        if "seed" not in kwargs:
            try:
                accepts_seed = "seed" in inspect.signature(factory).parameters
            except (TypeError, ValueError):  # builtins without signatures
                accepts_seed = False
            if accepts_seed:
                kwargs["seed"] = self.seed
        setup = factory(**kwargs)
        if self.faults is not None:
            sim = getattr(setup, "sim", None)
            if sim is not None:
                from repro.faults.apply import apply_fault_plan

                apply_fault_plan(sim, self.faults)
        return setup

    def run_config(self) -> "RunConfig":
        """The :class:`~repro.experiments.config.RunConfig` this spec maps to."""
        from repro.experiments.config import RunConfig

        return RunConfig(duration_bits=self.duration_bits, engine=self.engine)

    def run(self) -> ExperimentResult:
        """Build and run the scenario; convenience for one-off use."""
        return self.build().run(config=self.run_config())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "params": dict(self.params),
            "seed": self.seed,
            "duration_bits": self.duration_bits,
            "label": self.label,
            "metrics": self.metrics,
            "snapshot_every_bits": self.snapshot_every_bits,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        faults_data = data.get("faults")
        return cls(
            scenario=data["scenario"],
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            duration_bits=data.get("duration_bits", 20_000),
            label=data.get("label"),
            metrics=data.get("metrics", False),
            snapshot_every_bits=data.get("snapshot_every_bits"),
            faults=None if not faults_data else FaultPlan.from_dict(faults_data),
            engine=data.get("engine", "fast"),
        )


def spec_key(spec: ScenarioSpec) -> str:
    """Canonical identity of a spec (checkpoint/resume bookkeeping)."""
    return json.dumps(spec.to_dict(), sort_keys=True)


# ---------------------------------------------------------------- records

@dataclass
class RunRecord:
    """One executed spec: the result plus per-run throughput metrics.

    ``wall_seconds`` / ``steps_per_second`` / ``worker`` /
    ``spawn_overhead_seconds`` are *timing metadata* — excluded from the
    determinism contract and from :meth:`CampaignReport.payload_equal`
    comparisons.  ``spawn_overhead_seconds`` is the parallel fan-out tax:
    parent-observed wall time minus the worker's in-process run time
    (process spawn, import replay, result pickling); always 0.0 on the
    serial path.

    ``cache_hit`` marks a record replayed from the content-addressed
    result cache (:mod:`repro.experiments.resultcache`) instead of
    simulated.  It is *runtime-only* state: deliberately excluded from
    :meth:`to_dict`, so a replayed record serializes byte-identically to
    the cold run that populated the cache.
    """

    spec: ScenarioSpec
    result: ExperimentResult
    wall_seconds: float
    steps_per_second: float
    worker: str
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    spawn_overhead_seconds: float = 0.0
    #: Final flight-recorder dump, when the campaign ran with ``flight_dir``.
    flight: Optional[Dict[str, Any]] = None
    #: Runtime-only replay marker; never serialized (see class docstring).
    cache_hit: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
            "wall_seconds": self.wall_seconds,
            "steps_per_second": self.steps_per_second,
            "worker": self.worker,
            "snapshots": [dict(snapshot) for snapshot in self.snapshots],
            "spawn_overhead_seconds": self.spawn_overhead_seconds,
            "flight": None if self.flight is None else dict(self.flight),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            result=ExperimentResult.from_dict(data["result"]),
            wall_seconds=data.get("wall_seconds", 0.0),
            steps_per_second=data.get("steps_per_second", 0.0),
            worker=data.get("worker", ""),
            snapshots=list(data.get("snapshots", [])),
            spawn_overhead_seconds=data.get("spawn_overhead_seconds", 0.0),
            flight=data.get("flight"),
        )


#: Failure kinds a spec can end with after exhausting its retries.
#: ``"poison"`` is produced only by the campaign service's supervisor:
#: a spec that killed enough workers to be quarantined.
FAILURE_KINDS = ("error", "crash", "timeout", "poison")


@dataclass
class RunFailure:
    """One spec that never completed: what happened, after how many tries.

    ``kind`` is ``"error"`` (the worker raised), ``"crash"`` (the worker
    process died without reporting), ``"timeout"`` (the per-spec
    wall-clock budget ran out and the worker was terminated) or
    ``"poison"`` (the campaign service quarantined a spec that kept
    killing its workers).
    """

    spec: ScenarioSpec
    kind: str
    error: str
    attempts: int
    wall_seconds: float = 0.0
    worker: str = ""
    #: The crashed worker's last flight-recorder dump (``flight_dir`` runs).
    flight: Optional[Dict[str, Any]] = None
    #: On-disk path of that dump, for ``repro trace postmortem``.
    flight_path: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "flight": None if self.flight is None else dict(self.flight),
            "flight_path": self.flight_path,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunFailure":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            kind=data.get("kind", "error"),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
            wall_seconds=data.get("wall_seconds", 0.0),
            worker=data.get("worker", ""),
            flight=data.get("flight"),
            flight_path=data.get("flight_path", ""),
        )


@dataclass
class CampaignReport:
    """The JSON-serializable outcome of one campaign."""

    records: List[RunRecord]
    n_workers: int
    wall_seconds: float
    schema_version: int = SCHEMA_VERSION
    failures: List[RunFailure] = field(default_factory=list)

    @property
    def results(self) -> List[ExperimentResult]:
        return [record.result for record in self.records]

    def cache_hits(self) -> int:
        """How many records were replayed from the result cache.

        Runtime-only (``cache_hit`` never serializes): a report loaded
        back from JSON reports 0 regardless of how it was produced.
        """
        return sum(1 for record in self.records if record.cache_hit)

    def result_of(self, name: str) -> ExperimentResult:
        """The result of the spec whose :attr:`ScenarioSpec.name` matches."""
        for record in self.records:
            if record.spec.name == name:
                return record.result
        raise KeyError(f"no spec named {name!r} in this report")

    def total_steps(self) -> int:
        return sum(record.spec.duration_bits for record in self.records)

    def metrics_totals(self) -> Optional[Dict[str, Any]]:
        """Campaign-wide totals aggregated over every instrumented record
        (see :meth:`~repro.obs.probe.MetricsSummary.aggregate`), or
        ``None`` when no record carried metrics."""
        from repro.obs.probe import MetricsSummary

        summaries = [record.result.metrics for record in self.records
                     if record.result.metrics is not None]
        if not summaries:
            return None
        return MetricsSummary.aggregate(summaries)

    def payload_equal(self, other: "CampaignReport") -> bool:
        """True when both reports carry identical specs and results —
        the serial-vs-parallel determinism check (timing fields ignored)."""
        mine = [(r.spec.to_dict(), r.result.to_dict()) for r in self.records]
        theirs = [(r.spec.to_dict(), r.result.to_dict())
                  for r in other.records]
        return mine == theirs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "records": [record.to_dict() for record in self.records],
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignReport":
        return cls(
            records=[RunRecord.from_dict(r) for r in data.get("records", [])],
            n_workers=data.get("n_workers", 1),
            wall_seconds=data.get("wall_seconds", 0.0),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
            failures=[RunFailure.from_dict(f)
                      for f in data.get("failures", [])],
        )

    def spawn_overhead_seconds(self) -> float:
        """Total parallel fan-out tax across all records."""
        return sum(record.spawn_overhead_seconds for record in self.records)

    def mean_spawn_overhead_seconds(self) -> float:
        """Mean per-record fan-out tax (0.0 with no records).

        This is the number the ``<1.1x`` speedup warning is really
        about: when it rivals the mean per-record run time, process
        fan-out cannot pay for itself on these windows.
        """
        if not self.records:
            return 0.0
        return self.spawn_overhead_seconds() / len(self.records)

    def worker_utilization(self) -> Optional[float]:
        """Fraction of the pool's wall-clock capacity spent simulating.

        ``sum(per-record run seconds) / (campaign wall * n_workers)``:
        1.0 means every worker simulated the whole time, values near
        ``1/n_workers`` mean the fan-out was effectively serial (spawn
        overhead, stragglers, or an empty queue).  ``None`` when it
        cannot be estimated.
        """
        if not self.records or self.wall_seconds <= 0 or self.n_workers < 1:
            return None
        busy = sum(record.wall_seconds for record in self.records)
        return busy / (self.wall_seconds * self.n_workers)

    def parallel_speedup(self) -> Optional[float]:
        """Estimated speedup vs serial execution of the same specs.

        The serial-equivalent time is the sum of per-record in-worker run
        times; the ratio against the campaign's wall clock estimates what
        the fan-out bought.  None when it cannot be estimated (no records
        or no wall time).
        """
        serial_equivalent = sum(r.wall_seconds for r in self.records)
        if not self.records or self.wall_seconds <= 0:
            return None
        return serial_equivalent / self.wall_seconds

    def render(self) -> str:
        """Human-readable summary: every run's Table II block + throughput."""
        lines = [
            f"campaign: {len(self.records)} runs, "
            f"{self.n_workers} worker(s), "
            f"{self.total_steps()} bits in {self.wall_seconds:.2f} s"
        ]
        if self.failures:
            lines[0] += f", {len(self.failures)} failed"
        hits = self.cache_hits()
        if hits:
            lines.append(
                f"result cache: {hits} of {len(self.records)} record(s) "
                f"replayed without simulation")
        if self.n_workers > 1:
            speedup = self.parallel_speedup()
            if speedup is not None:
                overhead = self.spawn_overhead_seconds()
                mean_overhead = self.mean_spawn_overhead_seconds()
                utilization = self.worker_utilization()
                utilization_text = (
                    f"{utilization:.0%}" if utilization is not None else "n/a")
                lines.append(
                    f"parallel speedup ~{speedup:.2f}x vs serial "
                    f"(spawn overhead {overhead:.2f} s total, "
                    f"{mean_overhead * 1000:.0f} ms mean "
                    f"across {len(self.records)} worker runs; "
                    f"worker utilization {utilization_text})")
                if speedup < 1.1:
                    mean_run = (sum(r.wall_seconds for r in self.records)
                                / len(self.records) if self.records else 0.0)
                    lines.append(
                        f"WARNING: parallel fan-out gained <1.1x over serial "
                        f"— mean spawn overhead {mean_overhead * 1000:.0f} ms "
                        f"vs mean run {mean_run * 1000:.0f} ms per spec "
                        f"(utilization {utilization_text}); use n_workers=1, "
                        f"longer duration_bits, or the batched campaign "
                        f"service (`repro serve`)")
        for record in self.records:
            lines.append("")
            cached = " (cached)" if record.cache_hit else ""
            lines.append(f"[{record.spec.name}] "
                         f"{record.steps_per_second:,.0f} steps/s "
                         f"on {record.worker}{cached}")
            lines.append(record.result.render())
            if record.snapshots:
                lines.append(f"  snapshots: {len(record.snapshots)} "
                             f"(every {record.spec.snapshot_every_bits} bits)")
        for failure in self.failures:
            lines.append("")
            lines.append(f"[{failure.spec.name}] FAILED ({failure.kind} "
                         f"after {failure.attempts} attempt(s)): "
                         f"{failure.error}")
        totals = self.metrics_totals()
        if totals is not None:
            from repro.obs.probe import render_totals

            lines.append("")
            lines.append("campaign-wide telemetry totals:")
            lines.append(render_totals(totals))
        return "\n".join(lines)


# -------------------------------------------------------------- execution

#: The worker's live flight recorder, reachable from its SIGTERM handler.
_active_flight: List[Any] = []


def execute_spec(spec: ScenarioSpec,
                 flight_path: Optional[str] = None) -> RunRecord:
    """Build, run and measure one spec (the worker entry point).

    With ``flight_path`` a :class:`~repro.obs.flight.FlightRecorder` rides
    the run, autoflushing its dump there so it survives hard crashes; an
    aborting exception (injected faults included) flushes a final dump
    before propagating.
    """
    setup = spec.build()
    probe = recorder = flight = None
    sim = getattr(setup, "sim", None)
    if spec.metrics and sim is not None:
        from repro.obs.probe import BusProbe
        from repro.obs.snapshot import SnapshotRecorder

        probe = BusProbe(sim)
        if spec.snapshot_every_bits:
            recorder = SnapshotRecorder(probe, spec.snapshot_every_bits)
            sim.add_node(recorder)
    if flight_path is not None and sim is not None:
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder(sim, autoflush_path=flight_path,
                                flush_every=32)
        # Crash-dump registry for the SIGTERM handler; drained in the
        # finally below, so no state survives into the next spec.
        _active_flight.append(flight)  # repro: noqa[RC301]
        # An on-disk dump exists from t=0 on, so even a crash before the
        # first autoflush leaves a renderable post-mortem.
        flight.flush(reason="start")
    started = _time.perf_counter()
    try:
        result = setup.run(config=spec.run_config())
    except BaseException:
        if flight is not None:
            flight.flush(reason="abort")
        raise
    finally:
        if flight is not None and flight in _active_flight:
            _active_flight.remove(flight)  # repro: noqa[RC301]
    wall = _time.perf_counter() - started
    steps = getattr(sim, "time", spec.duration_bits)
    if probe is not None:
        result.metrics = probe.summary()
        probe.close()
    flight_dump = None
    if flight is not None:
        flight_dump = flight.dump(reason="complete")
        from repro.obs.flight import write_dump

        write_dump(flight_dump, flight_path)
        flight.close()
    return RunRecord(
        spec=spec,
        result=result,
        wall_seconds=wall,
        steps_per_second=steps / wall if wall > 0 else 0.0,
        worker=current_process().name,
        snapshots=list(recorder.snapshots) if recorder is not None else [],
        flight=flight_dump,
    )


def _subprocess_worker(conn: Any, spec: ScenarioSpec,
                       flight_path: Optional[str] = None) -> None:
    """Child-process entry: run one spec, report through the pipe."""
    if flight_path is not None:
        import signal

        def _on_terminate(signum: int, frame: Any) -> None:
            # The parent is killing us (timeout): persist the black box,
            # then exit without unwinding (the run loop is mid-bit).
            if _active_flight:
                try:
                    _active_flight[-1].flush(reason="timeout")
                except OSError:
                    pass
            os._exit(124)

        signal.signal(signal.SIGTERM, _on_terminate)
    try:
        record = execute_spec(spec, flight_path=flight_path)
        conn.send(("ok", record.to_dict()))
    except Exception as exc:  # deliberate: any worker failure is reported
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _load_flight_dump(path: Optional[str]) -> Optional[Dict[str, Any]]:
    """Best-effort load of a worker's on-disk dump (None when absent)."""
    if not path or not os.path.exists(path):
        return None
    from repro.obs.flight import load_dump

    try:
        return load_dump(path)
    except (OSError, ValueError, ConfigurationError, json.JSONDecodeError):
        return None  # half-written or foreign file: no post-mortem


class _Checkpoint:
    """Incremental JSONL persistence of finished specs (single writer).

    One line per finished spec: ``{"type": "record"|"failure", "key":
    <spec_key>, "schema_version": N, ...payload...}``.  A truncated
    trailing line (parent died mid-write) is skipped on load, so resume
    survives its own crashes; a parseable line stamped with a *newer*
    schema version is a clean error (the file belongs to a newer build),
    never a silent misread.

    Durability degrades gracefully: an append that raises ``OSError``
    (disk full, permissions, or an injected ``store.write_failure``
    fault) is announced with a loud :class:`RuntimeWarning` and counted
    in :attr:`write_failures`, but never aborts the campaign — the
    results still reach the in-memory report; only resumability is lost.
    """

    def __init__(self, path: str, fault: Optional[Any] = None) -> None:
        self.path = os.fspath(path)
        self.fault = fault
        self.write_failures = 0

    def reset(self) -> None:
        with open(self.path, "w", encoding="utf-8"):
            pass

    def _append(self, entry: Dict[str, Any]) -> None:
        import warnings

        try:
            if self.fault is not None:
                self.fault.before_write(f"checkpoint {self.path}")
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
        except OSError as exc:
            self.write_failures += 1
            warnings.warn(
                f"checkpoint write to {self.path!r} failed ({exc}); the "
                f"campaign continues but this entry will NOT be resumable "
                f"({self.write_failures} write failure(s) so far)",
                RuntimeWarning, stacklevel=3)

    def append_record(self, record: RunRecord) -> None:
        self._append({"type": "record", "key": spec_key(record.spec),
                      "schema_version": SCHEMA_VERSION,
                      "record": record.to_dict()})

    def append_failure(self, failure: RunFailure) -> None:
        self._append({"type": "failure", "key": spec_key(failure.spec),
                      "schema_version": SCHEMA_VERSION,
                      "failure": failure.to_dict()})

    def load_records(self) -> Dict[str, RunRecord]:
        """Completed records by spec key (failures are always re-run).

        Raises :class:`~repro.errors.ConfigurationError` when the file
        carries entries stamped by a newer schema version.
        """
        if not os.path.exists(self.path):
            return {}
        records: Dict[str, RunRecord] = {}
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a previous crash
                if not isinstance(entry, dict):
                    continue
                version = entry.get("schema_version")
                if (entry.get("type") in ("record", "failure")
                        and isinstance(version, int)
                        and version > SCHEMA_VERSION):
                    raise ConfigurationError(
                        f"checkpoint {self.path!r} line {number} was "
                        f"written by schema v{version}; this build reads "
                        f"v{SCHEMA_VERSION} — refusing to resume from a "
                        f"newer format")
                if entry.get("type") == "record" and "key" in entry:
                    records[entry["key"]] = RunRecord.from_dict(
                        entry["record"])
        return records


class Campaign:
    """Execute a list of :class:`ScenarioSpec` over worker processes.

    Args:
        specs: The runs, in order.  Report records keep this order
            regardless of which worker finishes first.
        n_workers: Process count; ``1`` runs everything in-process (no
            multiprocessing import-side effects, easier debugging) unless
            a timeout forces worker isolation.
        timeout_seconds: Per-spec wall-clock budget.  Exceeding it kills
            the worker and counts as one failed attempt.  Any timeout
            (even with ``n_workers=1``) runs specs in subprocesses so
            they can be terminated.
        max_retries: How many times a failed spec is retried before it is
            recorded as a :class:`RunFailure` (0 = no retries).
        retry_backoff_seconds: Base of the exponential backoff between
            attempts (``base * 2**(attempt-1)`` seconds).
        checkpoint: Optional JSONL path; every finished spec is persisted
            immediately, and :meth:`run` with ``resume=True`` skips specs
            the checkpoint already completed.
        flight_dir: Optional directory; every spec runs with a flight
            recorder autoflushing its dump to
            ``<flight_dir>/<index>_<spec>.flight.json``, so crashed,
            hung and fault-aborted workers leave a post-mortem the
            report attaches to the :class:`RunFailure`.
        telemetry: Stream live progress lines (spec start/finish/retry,
            per-worker heartbeats) over the checkpoint channel for
            ``repro campaign watch``; requires ``checkpoint``.
        heartbeat_seconds: Minimum spacing of per-worker heartbeat lines.
        result_cache: Optional
            :class:`~repro.experiments.resultcache.ResultCache`.  Specs
            whose scenario the cache's purity manifest certifies as pure
            are looked up before execution (a hit replays the stored
            record with ``cache_hit=True``) and stored after a
            successful fresh run.  Failures are never cached.
        store_fault: Optional
            :class:`~repro.faults.store.StoreWriteFault` injected into
            checkpoint appends — proves the graceful-degradation
            contract (run completes, loud warning, no silent loss).

    Example:
        >>> from repro.experiments.campaign import Campaign, ScenarioSpec
        >>> specs = [ScenarioSpec("exp4", duration_bits=5_000, seed=s)
        ...          for s in range(4)]
        >>> report = Campaign(specs, n_workers=2).run()
        >>> len(report.results)
        4
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        n_workers: int = 1,
        timeout_seconds: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.1,
        checkpoint: Optional[str] = None,
        flight_dir: Optional[str] = None,
        telemetry: bool = False,
        heartbeat_seconds: float = 1.0,
        result_cache: Optional[Any] = None,
        store_fault: Optional[Any] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"worker count must be positive, got {n_workers}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {timeout_seconds}")
        if max_retries < 0:
            raise ConfigurationError(
                f"retry count must be non-negative, got {max_retries}")
        if retry_backoff_seconds < 0:
            raise ConfigurationError(
                f"retry backoff must be non-negative, "
                f"got {retry_backoff_seconds}")
        if telemetry and checkpoint is None:
            raise ConfigurationError(
                "telemetry streams over the checkpoint channel; "
                "give a checkpoint path")
        if heartbeat_seconds <= 0:
            raise ConfigurationError(
                f"heartbeat spacing must be positive, "
                f"got {heartbeat_seconds}")
        for spec in specs:
            scenario_factory(spec.scenario)  # fail fast on unknown names
            if spec.faults is not None:
                spec.faults.validate()
        self.specs = list(specs)
        self.n_workers = n_workers
        self.timeout_seconds = timeout_seconds
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.checkpoint = checkpoint
        self.flight_dir = flight_dir
        self.telemetry = telemetry
        self.heartbeat_seconds = heartbeat_seconds
        self.result_cache = result_cache
        #: Optional :class:`~repro.faults.store.StoreWriteFault` applied
        #: to checkpoint appends (degradation testing).
        self.store_fault = store_fault

    def _backoff(self, attempt: int) -> float:
        return self.retry_backoff_seconds * (2 ** (attempt - 1))

    def _flight_path(self, index: int) -> Optional[str]:
        if self.flight_dir is None:
            return None
        safe = self.specs[index].name.replace(os.sep, "_").replace("#", "_")
        return os.path.join(self.flight_dir, f"{index:03d}_{safe}.flight.json")

    def run(self, resume: bool = False) -> CampaignReport:
        started = _time.perf_counter()
        checkpoint = (_Checkpoint(self.checkpoint, fault=self.store_fault)
                      if self.checkpoint is not None else None)
        if resume and checkpoint is None:
            raise ConfigurationError(
                "resume requires a checkpoint path")
        records: Dict[int, RunRecord] = {}
        failures: Dict[int, RunFailure] = {}
        if checkpoint is not None and resume:
            done = checkpoint.load_records()
            for index, spec in enumerate(self.specs):
                key = spec_key(spec)
                if key in done:
                    records[index] = done[key]
        elif checkpoint is not None:
            checkpoint.reset()
        if self.flight_dir is not None:
            os.makedirs(self.flight_dir, exist_ok=True)
        telemetry = None
        if self.telemetry:
            from repro.experiments.telemetry import TelemetryWriter

            telemetry = TelemetryWriter(
                self.checkpoint, heartbeat_seconds=self.heartbeat_seconds)
        if self.result_cache is not None:
            for index, spec in enumerate(self.specs):
                if index in records:
                    continue  # already satisfied by the checkpoint
                cached = self.result_cache.get(spec)
                if cached is not None:
                    records[index] = cached
        pending = [index for index in range(len(self.specs))
                   if index not in records]
        if telemetry is not None:
            telemetry.campaign_started(
                len(self.specs), len(pending), self.n_workers)
        if pending:
            serial_ok = self.timeout_seconds is None
            if serial_ok and (self.n_workers == 1 or len(pending) <= 1):
                self._run_serial(pending, records, failures, checkpoint,
                                 telemetry)
            else:
                self._run_processes(pending, records, failures, checkpoint,
                                    telemetry)
        if self.result_cache is not None:
            for index in pending:
                record = records.get(index)
                if record is not None and not record.cache_hit:
                    self.result_cache.put(self.specs[index], record)
        wall = _time.perf_counter() - started
        if telemetry is not None:
            telemetry.campaign_finished(len(records), len(failures), wall)
        return CampaignReport(
            records=[records[index] for index in sorted(records)],
            failures=[failures[index] for index in sorted(failures)],
            n_workers=self.n_workers,
            wall_seconds=wall,
        )

    # ------------------------------------------------------- serial path

    def _run_serial(
        self,
        pending: Sequence[int],
        records: Dict[int, RunRecord],
        failures: Dict[int, RunFailure],
        checkpoint: Optional[_Checkpoint],
        telemetry: Optional[Any] = None,
    ) -> None:
        worker = current_process().name
        for index in pending:
            spec = self.specs[index]
            flight_path = self._flight_path(index)
            attempt = 0
            while True:
                attempt += 1
                if telemetry is not None:
                    telemetry.spec_started(spec.name, attempt, worker)
                spec_started = _time.perf_counter()
                try:
                    record = execute_spec(spec, flight_path=flight_path)
                except Exception as exc:  # deliberate: retry, then report
                    wall = _time.perf_counter() - spec_started
                    if attempt <= self.max_retries:
                        if telemetry is not None:
                            telemetry.spec_retry(spec.name, attempt, "error",
                                                 self._backoff(attempt))
                        _time.sleep(self._backoff(attempt))
                        continue
                    failure = RunFailure(
                        spec=spec, kind="error",
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt, wall_seconds=wall,
                        worker=worker,
                        flight=_load_flight_dump(flight_path),
                        flight_path=flight_path or "")
                    failures[index] = failure
                    if telemetry is not None:
                        telemetry.spec_finished(spec.name, attempt, worker,
                                                "error", wall)
                    if checkpoint is not None:
                        checkpoint.append_failure(failure)
                    break
                records[index] = record
                if telemetry is not None:
                    telemetry.spec_finished(spec.name, attempt, worker,
                                            "ok", record.wall_seconds)
                if checkpoint is not None:
                    checkpoint.append_record(record)
                break

    # ---------------------------------------------------- process path

    def _run_processes(
        self,
        pending: Sequence[int],
        records: Dict[int, RunRecord],
        failures: Dict[int, RunFailure],
        checkpoint: Optional[_Checkpoint],
        telemetry: Optional[Any] = None,
    ) -> None:
        """Process-per-spec scheduler with crash/timeout detection.

        Unlike ``Pool.map`` this can terminate a hung worker and notice a
        dead one: each spec runs in its own process reporting through a
        pipe, and the parent polls for results, deaths and deadline
        overruns, requeuing failed specs with exponential backoff.
        """
        ctx = get_context()
        workers = min(self.n_workers, len(pending))
        #: (spec index, attempt number, earliest start monotonic time)
        ready: List[Tuple[int, int, float]] = [
            (index, 1, 0.0) for index in pending]
        running: Dict[int, Tuple[Any, Any, int, float]] = {}

        def finish(index: int, kind: str, message: str,
                   attempt: int, wall: float, worker: str) -> None:
            spec_name = self.specs[index].name
            if attempt <= self.max_retries:
                if telemetry is not None:
                    telemetry.spec_retry(spec_name, attempt, kind,
                                         self._backoff(attempt))
                ready.append((index, attempt + 1,
                              _time.monotonic() + self._backoff(attempt)))
                return
            flight_path = self._flight_path(index)
            failure = RunFailure(
                spec=self.specs[index], kind=kind, error=message,
                attempts=attempt, wall_seconds=wall, worker=worker,
                flight=_load_flight_dump(flight_path),
                flight_path=flight_path or "")
            failures[index] = failure
            if telemetry is not None:
                telemetry.spec_finished(spec_name, attempt, worker, kind,
                                        wall)
            if checkpoint is not None:
                checkpoint.append_failure(failure)

        while ready or running:
            now = _time.monotonic()
            progressed = False
            while len(running) < workers:
                eligible = [item for item in ready if item[2] <= now]
                if not eligible:
                    break
                item = min(eligible)
                ready.remove(item)
                index, attempt, _ = item
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_subprocess_worker,
                    args=(child_conn, self.specs[index],
                          self._flight_path(index)),
                    name=f"campaign-{index}-try{attempt}")
                proc.start()
                child_conn.close()
                running[index] = (proc, parent_conn, attempt,
                                  _time.monotonic())
                if telemetry is not None:
                    telemetry.spec_started(self.specs[index].name, attempt,
                                           proc.name)
                progressed = True

            for index in list(running):
                proc, conn, attempt, launch_time = running[index]
                worker_died = not proc.is_alive()
                payload: Optional[Tuple[str, Any]] = None
                if conn.poll():
                    try:
                        payload = conn.recv()
                    except (EOFError, OSError):
                        payload = None
                wall = _time.monotonic() - launch_time
                if payload is not None:
                    proc.join()
                    conn.close()
                    del running[index]
                    progressed = True
                    status, body = payload
                    if status == "ok":
                        record = RunRecord.from_dict(body)
                        # Parent-observed wall minus the worker's own run
                        # time = spawn/import/pickling tax of the fan-out.
                        record.spawn_overhead_seconds = max(
                            0.0, wall - record.wall_seconds)
                        records[index] = record
                        if telemetry is not None:
                            telemetry.spec_finished(
                                record.spec.name, attempt, proc.name,
                                "ok", record.wall_seconds)
                        if checkpoint is not None:
                            checkpoint.append_record(record)
                    else:
                        finish(index, "error", str(body), attempt, wall,
                               proc.name)
                elif worker_died:
                    proc.join()
                    conn.close()
                    del running[index]
                    progressed = True
                    finish(index, "crash",
                           f"worker exited with code {proc.exitcode} "
                           f"without reporting a result",
                           attempt, wall, proc.name)
                elif telemetry is not None and (
                        self.timeout_seconds is None
                        or wall <= self.timeout_seconds):
                    # Still running within budget: sign of life (the
                    # writer rate-limits to one line per worker/second).
                    telemetry.heartbeat(proc.name, self.specs[index].name,
                                        wall)
                if (payload is None and not worker_died
                        and self.timeout_seconds is not None
                        and wall > self.timeout_seconds):
                    proc.terminate()
                    proc.join()
                    conn.close()
                    del running[index]
                    progressed = True
                    finish(index, "timeout",
                           f"exceeded the {self.timeout_seconds} s "
                           f"per-spec timeout and was terminated",
                           attempt, wall, proc.name)

            if not progressed:
                _time.sleep(0.01)


_register_builtin_scenarios()
