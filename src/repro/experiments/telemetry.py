"""Live campaign telemetry over the torn-write-tolerant checkpoint channel.

A long campaign is a black box from the shell: workers grind away, the
report appears minutes later.  This module streams *liveness* over the
same JSONL file the campaign already checkpoints to — each line is
``{"type": "telemetry", "event": ..., ...}``, which the record loader
(:meth:`~repro.experiments.campaign._Checkpoint.load_records`) already
skips, so resume semantics are untouched and a reader can tail one file
for both progress and finished results.  ``repro campaign watch`` renders
the stream; the upcoming queue-backed campaign service will sit on the
same substrate.

Events: ``campaign-start`` / ``campaign-end``, per-spec ``start`` /
``finish`` (status ``ok`` | ``error`` | ``crash`` | ``timeout``) /
``retry`` (with backoff delay), and rate-limited per-worker
``heartbeat`` lines while a spec runs.  All lines carry a wall-clock
``at`` stamp — telemetry is observer metadata, deliberately outside the
determinism contract (the simulation itself stays wall-clock-free).
"""

from __future__ import annotations

import json
import os
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

#: Bump when the telemetry line layout changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


class TelemetryWriter:
    """Single-writer telemetry appender for the checkpoint channel.

    Owned by the campaign *parent* process (workers report through their
    result pipes), preserving the checkpoint file's single-writer
    invariant.  Heartbeats are rate-limited to one per worker per
    ``heartbeat_seconds``.
    """

    def __init__(self, path: PathLike,
                 heartbeat_seconds: float = 1.0) -> None:
        self.path = os.fspath(path)
        self.heartbeat_seconds = heartbeat_seconds
        self._last_beat: Dict[str, float] = {}
        #: Guards the per-worker rate-limit state: ``heartbeat`` runs on
        #: the supervisor's daemon beat thread while ``spec_finished``
        #: pops from the pump loop (RC401 lockset analysis flags the
        #: unsynchronized write pair otherwise).
        self._beat_lock = threading.Lock()

    def _append(self, event: str, **fields: Any) -> None:
        entry = {"type": "telemetry",
                 "schema_version": TELEMETRY_SCHEMA_VERSION,
                 "event": event, "at": _time.time(), **fields}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    # ------------------------------------------------------------- events

    def campaign_started(self, total_specs: int, pending: int,
                         n_workers: int) -> None:
        self._append("campaign-start", total_specs=total_specs,
                     pending=pending, n_workers=n_workers)

    def campaign_finished(self, completed: int, failed: int,
                          wall_seconds: float) -> None:
        self._append("campaign-end", completed=completed, failed=failed,
                     wall_seconds=round(wall_seconds, 3))

    def spec_started(self, spec_name: str, attempt: int,
                     worker: str) -> None:
        self._append("start", spec=spec_name, attempt=attempt, worker=worker)

    def spec_finished(self, spec_name: str, attempt: int, worker: str,
                      status: str, wall_seconds: float) -> None:
        with self._beat_lock:
            self._last_beat.pop(worker, None)
        self._append("finish", spec=spec_name, attempt=attempt,
                     worker=worker, status=status,
                     wall_seconds=round(wall_seconds, 3))

    def spec_retry(self, spec_name: str, attempt: int, kind: str,
                   delay_seconds: float) -> None:
        self._append("retry", spec=spec_name, attempt=attempt, kind=kind,
                     delay_seconds=round(delay_seconds, 3))

    def heartbeat(self, worker: str, spec_name: str,
                  elapsed_seconds: float) -> None:
        now = _time.monotonic()
        with self._beat_lock:
            last = self._last_beat.get(worker)
            if last is not None and now - last < self.heartbeat_seconds:
                return
            self._last_beat[worker] = now
        self._append("heartbeat", worker=worker, spec=spec_name,
                     elapsed_seconds=round(elapsed_seconds, 3))


# ------------------------------------------------------------------ reader

def read_channel(path: PathLike) -> List[Dict[str, Any]]:
    """Every parseable line of a checkpoint/telemetry file, in order.

    Torn trailing writes (a crashed writer) are skipped, exactly like the
    campaign's own record loader.
    """
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


@dataclass
class CampaignProgress:
    """Aggregated view of one campaign's channel, for live rendering."""

    total_specs: int = 0
    n_workers: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    finished: bool = False
    wall_seconds: float = 0.0
    #: spec name -> "running" | "retrying" | "ok" | "error" | "crash" | ...
    spec_status: Dict[str, str] = field(default_factory=dict)
    #: worker name -> {"spec", "at", "elapsed_seconds"} of the last sign of life
    workers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: wall-clock stamp of the newest telemetry line seen
    last_update: float = 0.0


def _fold_work_entry(progress: CampaignProgress, entry: Dict[str, Any],
                     queued: set, settled: set,
                     labels: Dict[str, str]) -> None:
    """Fold one campaign-service work-journal line (``type: "work"``).

    Mirrors the journal's own idempotence rules (first ``queued`` /
    first terminal state per key wins) so ``repro campaign watch`` can
    point straight at a ``repro serve`` journal, with or without
    telemetry interleaved.
    """
    state = entry.get("state")
    key = entry.get("key")
    if not isinstance(key, str) or not key:
        return
    if state == "queued" and key not in queued:
        queued.add(key)
        spec = entry.get("spec")
        label = key[:12]
        if isinstance(spec, dict):
            label = (spec.get("label")
                     or f"{spec.get('scenario', label)}#{spec.get('seed', 0)}")
        labels[key] = label
        progress.total_specs = max(progress.total_specs, len(queued))
        progress.spec_status.setdefault(label, "queued")
    elif state == "leased":
        progress.spec_status[labels.get(key, key[:12])] = "running"
    elif state == "done" and key not in settled:
        settled.add(key)
        progress.completed += 1
        progress.spec_status[labels.get(key, key[:12])] = "ok"
    elif state == "failed" and key not in settled:
        settled.add(key)
        progress.failed += 1
        failure = entry.get("failure")
        status = (failure.get("kind", "error")
                  if isinstance(failure, dict) else "error")
        progress.spec_status[labels.get(key, key[:12])] = status


def campaign_progress(entries: List[Dict[str, Any]]) -> CampaignProgress:
    """Fold a channel's entries into a :class:`CampaignProgress`."""
    progress = CampaignProgress()
    queued_work: set = set()
    settled_work: set = set()
    work_labels: Dict[str, str] = {}
    for entry in entries:
        kind = entry.get("type")
        if kind == "record":
            progress.completed += 1
            continue
        if kind == "failure":
            progress.failed += 1
            continue
        if kind == "work":
            _fold_work_entry(progress, entry, queued_work, settled_work,
                             work_labels)
            continue
        if kind != "telemetry":
            continue
        at = entry.get("at", 0.0)
        if at > progress.last_update:
            progress.last_update = at
        event = entry.get("event")
        spec = entry.get("spec", "")
        worker = entry.get("worker", "")
        if event == "campaign-start":
            progress.total_specs = entry.get("total_specs", 0)
            progress.n_workers = entry.get("n_workers", 0)
            progress.finished = False
        elif event == "campaign-end":
            progress.finished = True
            progress.wall_seconds = entry.get("wall_seconds", 0.0)
        elif event == "start":
            progress.spec_status[spec] = "running"
            progress.workers[worker] = {
                "spec": spec, "at": at, "elapsed_seconds": 0.0}
        elif event == "finish":
            progress.spec_status[spec] = entry.get("status", "ok")
            progress.workers.pop(worker, None)
        elif event == "retry":
            progress.retries += 1
            progress.spec_status[spec] = "retrying"
        elif event == "heartbeat":
            progress.workers[worker] = {
                "spec": spec, "at": at,
                "elapsed_seconds": entry.get("elapsed_seconds", 0.0)}
    return progress


def load_progress(path: PathLike) -> CampaignProgress:
    """Read and fold a checkpoint/telemetry file in one call."""
    return campaign_progress(read_channel(path))


def render_progress(progress: CampaignProgress) -> str:
    """Terminal-friendly progress block for ``repro campaign watch``."""
    done = progress.completed + progress.failed
    total = progress.total_specs or max(done, len(progress.spec_status))
    width = 30
    filled = int(width * done / total) if total else 0
    bar = "#" * filled + "-" * (width - filled)
    lines = [
        f"[{bar}] {done}/{total} specs "
        f"({progress.completed} ok, {progress.failed} failed, "
        f"{progress.retries} retries)"
        + ("  [campaign finished]" if progress.finished else ""),
    ]
    running = [(worker, info) for worker, info
               in sorted(progress.workers.items())]
    if running and not progress.finished:
        lines.append("workers:")
        for worker, info in running:
            lines.append(
                f"  {worker:<22} {info.get('spec', '?'):<24} "
                f"running {info.get('elapsed_seconds', 0.0):6.1f} s")
    status_counts: Dict[str, int] = {}
    for status in progress.spec_status.values():
        status_counts[status] = status_counts.get(status, 0) + 1
    if status_counts:
        cells = " ".join(f"{status}={count}" for status, count
                         in sorted(status_counts.items()))
        lines.append(f"spec status: {cells}")
    if progress.finished:
        lines.append(f"wall time: {progress.wall_seconds:.2f} s")
    return "\n".join(lines)
