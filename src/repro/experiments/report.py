"""One-shot reproduction report: every headline number in one run.

``python -m repro report`` (or :func:`generate_report`) drives the main
experiments end-to-end and renders a markdown summary comparable to
EXPERIMENTS.md — the artifact a reviewer regenerates to check the
repository against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.busoff_theory import (
    busoff_ms,
    undisturbed_busoff_bits,
)
from repro.analysis.cpu import ARDUINO_DUE, NXP_S32K144, analytic_utilization
from repro.analysis.latency import run_latency_study
from repro.baselines.comparison import render_table
from repro.experiments.config import RunConfig
from repro.experiments.scenarios import (
    EXPERIMENTS,
    multi_attacker_experiment,
    parksense_experiment,
    total_fight_bits,
)

PAPER_TABLE2_MS = {1: 24.6, 2: 24.2, 3: 25.1, 4: 24.9, 6: 24.9}
PAPER_MULTI_BITS = {3: 3515, 4: 4660}


@dataclass
class ReportSection:
    title: str
    lines: List[str] = field(default_factory=list)

    def row(self, metric: str, paper: object, measured: object) -> None:
        self.lines.append(f"| {metric} | {paper} | {measured} |")

    def render(self) -> str:
        body = "\n".join(self.lines)
        header = "| metric | paper | measured |\n|---|---|---|\n"
        return f"## {self.title}\n\n{header}{body}\n"


def _table2_section(duration_bits: int) -> ReportSection:
    section = ReportSection("Table II — empirical bus-off times (ms)")
    for number, factory in sorted(EXPERIMENTS.items()):
        result = factory().run(config=RunConfig(duration_bits=duration_bits))
        if number == 5:
            for attacker, paper in (("attacker_066", 39.0),
                                    ("attacker_067", 35.4)):
                stats = result.attacker_stats[attacker]
                section.row(f"Exp 5 {attacker} mean", paper,
                            f"{stats['mean_ms']:.1f}")
        else:
            stats = result.attacker_stats["attacker"]
            section.row(f"Exp {number} mean", PAPER_TABLE2_MS[number],
                        f"{stats['mean_ms']:.1f} "
                        f"(σ {stats['std_ms']:.2f}, max {stats['max_ms']:.1f})")
    return section


def _latency_section(num_fsms: int) -> ReportSection:
    section = ReportSection("Sec. V-B — detection latency")
    study = run_latency_study(num_fsms=num_fsms, seed=160_000)
    section.row("detection rate", "100%", f"{study.detection_rate:.1%}")
    section.row("mean detection bit", 9, f"{study.mean_detection_bit:.2f}")
    section.row("false positives", "0", study.false_positives)
    return section


def _multi_section(duration_bits: int) -> ReportSection:
    section = ReportSection("Sec. V-C — concurrent attackers")
    for attackers in (2, 3, 4, 5):
        result = multi_attacker_experiment(attackers).run(
            config=RunConfig(duration_bits=duration_bits))
        total = total_fight_bits(result)
        paper = PAPER_MULTI_BITS.get(attackers, "-")
        verdict = "OK" if total <= 5_000 else "deadline miss"
        section.row(f"A = {attackers} total fight (bits)", paper,
                    f"{total} ({verdict})")
    return section


def _theory_section() -> ReportSection:
    section = ReportSection("Table III — closed forms")
    total = undisturbed_busoff_bits()
    section.row("undisturbed bus-off (bits)", 1248, total)
    section.row("at 50 kbit/s (ms)", 24.96, f"{busoff_ms(total, 50_000):.2f}")
    return section


def _cpu_section() -> ReportSection:
    section = ReportSection("Sec. V-D — CPU utilization")
    section.row("Due @125k full", "40%",
                f"{analytic_utilization(ARDUINO_DUE, 125_000).combined_load:.1%}")
    section.row("Due @125k light", "30%",
                f"{analytic_utilization(ARDUINO_DUE, 125_000, light_scenario=True).combined_load:.1%}")
    section.row("S32K144 @500k full", "44%",
                f"{analytic_utilization(NXP_S32K144, 500_000).combined_load:.1%}")
    return section


def _parksense_section(duration_bits: int) -> ReportSection:
    section = ReportSection("Sec. V-F — on-vehicle ParkSense")
    undefended = parksense_experiment(False, duration_bits=duration_bits)
    defended = parksense_experiment(True, duration_bits=duration_bits)
    section.row("undefended feature state", "unavailable",
                undefended.feature.state.value)
    section.row("defended feature state", "available",
                defended.feature.state.value)
    section.row("defended attacker bus-offs", ">= 1",
                defended.attacker_busoff_count)
    return section


def generate_report(
    table2_bits: int = 60_000,
    latency_fsms: int = 500,
    multi_bits: int = 16_000,
    parksense_bits: int = 300_000,
    sections: Optional[List[str]] = None,
) -> str:
    """Run the reproduction and return the markdown report.

    Args:
        sections: Optional subset of {"table2", "table3", "latency",
            "multi", "cpu", "parksense"}; default runs everything.
    """
    wanted = set(sections) if sections else None
    builders: Dict[str, object] = {
        "table3": _theory_section,
        "table2": lambda: _table2_section(table2_bits),
        "latency": lambda: _latency_section(latency_fsms),
        "multi": lambda: _multi_section(multi_bits),
        "cpu": _cpu_section,
        "parksense": lambda: _parksense_section(parksense_bits),
    }
    parts = ["# MichiCAN reproduction report", "",
             "Regenerated end-to-end by `python -m repro report`.", ""]
    for name, builder in builders.items():
        if wanted is not None and name not in wanted:
            continue
        parts.append(builder().render())
    parts.append("## Table I — qualitative matrix\n")
    parts.append("```\n" + render_table() + "\n```\n")
    return "\n".join(parts)
