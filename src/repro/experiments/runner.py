"""Experiment harness: assemble a bus, run it, measure bus-off statistics.

Mirrors the paper's method (Sec. V-C): record the bus for a fixed window
containing multiple bus-off attempts, then report mean / standard deviation /
maximum bus-off time per attacker — one Table II row per experiment.

:class:`ExperimentResult` carries a stable serialization contract
(:meth:`ExperimentResult.to_dict` / :meth:`ExperimentResult.from_dict`):
it is the payload the campaign layer (:mod:`repro.experiments.campaign`)
ships between worker processes and persists to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.experiments.config import _UNSET, RunConfig
from repro.node.controller import CanNode
from repro.obs.probe import BusProbe, MetricsSummary
from repro.trace.framelog import BusOffEpisode, FrameLog


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment run.

    Attributes:
        name: Experiment identifier (e.g. "exp5").
        bus_speed: Bus speed the run used.
        duration_bits: Simulated window length.
        attacker_stats: Per-attacker-node Table II row
            (count / mean_ms / std_ms / max_ms).
        episodes: Raw per-attacker bus-off episodes.
        detections: Total MichiCAN detections.
        counterattacks: Total counterattacks launched.
        busy_fraction: Observed bus-occupancy fraction.
        metrics: Optional per-node protocol telemetry collected by a
            :class:`~repro.obs.probe.BusProbe` during the run.
    """

    name: str
    bus_speed: int
    duration_bits: int
    attacker_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    episodes: Dict[str, List[BusOffEpisode]] = field(default_factory=dict)
    detections: int = 0
    counterattacks: int = 0
    busy_fraction: float = 0.0
    metrics: Optional[MetricsSummary] = None

    def mean_busoff_ms(self, attacker: str) -> float:
        return self.attacker_stats[attacker]["mean_ms"]

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict that round-trips through
        :meth:`from_dict` (episodes included)."""
        return {
            "name": self.name,
            "bus_speed": self.bus_speed,
            "duration_bits": self.duration_bits,
            "attacker_stats": {
                attacker: dict(stats)
                for attacker, stats in self.attacker_stats.items()
            },
            "episodes": {
                attacker: [
                    {
                        "node": e.node,
                        "start": e.start,
                        "end": e.end,
                        "attempts": e.attempts,
                        "interruptions": e.interruptions,
                    }
                    for e in eps
                ]
                for attacker, eps in self.episodes.items()
            },
            "detections": self.detections,
            "counterattacks": self.counterattacks,
            "busy_fraction": self.busy_fraction,
            "metrics": self.metrics.to_dict() if self.metrics else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            bus_speed=data["bus_speed"],
            duration_bits=data["duration_bits"],
            attacker_stats={
                attacker: dict(stats)
                for attacker, stats in data.get("attacker_stats", {}).items()
            },
            episodes={
                attacker: [BusOffEpisode(**episode) for episode in eps]
                for attacker, eps in data.get("episodes", {}).items()
            },
            detections=data.get("detections", 0),
            counterattacks=data.get("counterattacks", 0),
            busy_fraction=data.get("busy_fraction", 0.0),
            metrics=(MetricsSummary.from_dict(data["metrics"])
                     if data.get("metrics") else None),
        )

    def render(self) -> str:
        """One experiment's rows in the Table II format."""
        data = self.to_dict()
        lines = [
            f"{data['name']}: {data['duration_bits']} bits at "
            f"{data['bus_speed']} bit/s, "
            f"{data['detections']} detections, "
            f"{data['counterattacks']} counterattacks"
        ]
        for attacker, stats in sorted(data["attacker_stats"].items()):
            lines.append(
                f"  {attacker:<14} episodes={stats['count']:<3.0f} "
                f"mean={stats['mean_ms']:6.1f} ms  "
                f"std={stats['std_ms']:5.2f} ms  max={stats['max_ms']:6.1f} ms"
            )
        if self.metrics is not None:
            lines.append(self.metrics.render())
        return "\n".join(lines)


def run_and_measure(
    sim: CanBusSimulator,
    attackers: Sequence[CanNode],
    duration_bits: int = _UNSET,
    name: str = _UNSET,
    defenders: Optional[Sequence[MichiCanNode]] = None,
    *,
    log: Optional[FrameLog] = _UNSET,
    metrics: Union[bool, BusProbe] = _UNSET,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Run ``sim`` for the configured window and collect Table II statistics.

    This is the single-run primitive.  For multi-run parameterized studies
    (sweeps, repeated seeds, fan-out over worker processes) build
    :class:`repro.experiments.campaign.ScenarioSpec` lists and hand them to
    :class:`repro.experiments.campaign.Campaign` instead of looping over
    this function by hand.

    Args:
        config: A :class:`~repro.experiments.config.RunConfig` carrying the
            window length, result name, metrics switch, optional pre-built
            :class:`FrameLog` and engine selection ("fast" uses the
            fast-forward path, "bit" forces per-bit stepping).
        duration_bits, name, log, metrics: Deprecated pre-RunConfig
            keywords; still honored (with a once-per-process warning) for
            one release, but mutually exclusive with ``config``.
    """
    base = config if config is not None else RunConfig()
    cfg = base.merged_with_legacy(
        "run_and_measure",
        {"duration_bits": duration_bits, "name": name,
         "log": log, "metrics": metrics},
        config_given=config is not None,
    )
    probe: Optional[BusProbe] = None
    own_probe = False
    if isinstance(cfg.metrics, BusProbe):
        probe = cfg.metrics
    elif cfg.metrics:
        probe = BusProbe(sim)
        own_probe = True
    sim.advance(cfg.duration_bits, policy=cfg.policy())
    log = cfg.log
    if log is None:
        log = FrameLog(sim.events)
    result = ExperimentResult(
        name=cfg.name if cfg.name is not None else "experiment",
        bus_speed=sim.bus_speed,
        duration_bits=cfg.duration_bits,
    )
    if probe is not None:
        result.metrics = probe.summary()
        if own_probe:
            probe.close()
    for attacker in attackers:
        result.episodes[attacker.name] = log.busoff_episodes(attacker.name)
        result.attacker_stats[attacker.name] = log.busoff_statistics(
            attacker.name, sim.bus_speed
        )
    for defender in defenders or []:
        result.detections += len(defender.firmware.detections)
        result.counterattacks += defender.counterattacks
    if sim.wire.record:
        if sim.wire.dropped_bits:
            # Bounded recording evicted part of the window: fall back to
            # the exact dominant-level fraction the wire counts in O(1).
            result.busy_fraction = sim.wire.dominant_fraction()
        else:
            from repro.trace.recorder import LogicTrace

            result.busy_fraction = LogicTrace(
                sim.wire.history).busy_fraction()
    return result


def make_simulator(
    bus_speed: int = _UNSET,
    record: bool = _UNSET,
    nodes: Sequence[CanNode] = (),
    *,
    config: Optional[RunConfig] = None,
) -> CanBusSimulator:
    """A simulator at the paper's online-evaluation bus speed (50 kbit/s).

    Args:
        nodes: Convenience — nodes to attach immediately, in order, so
            callers stop hand-rolling ``add_node`` loops.
        config: A :class:`~repro.experiments.config.RunConfig`; its
            ``bus_speed``, ``record_wire`` and ``wire_history_bits`` fields
            configure the simulator.
        bus_speed, record: Deprecated pre-RunConfig keywords (warn-once
            shim, mutually exclusive with ``config``).
    """
    base = config if config is not None else RunConfig()
    cfg = base.merged_with_legacy(
        "make_simulator",
        {"bus_speed": bus_speed, "record_wire": record},
        config_given=config is not None,
    )
    sim = CanBusSimulator(
        bus_speed=cfg.bus_speed,
        record_wire=cfg.record_wire,
        wire_history_bits=cfg.wire_history_bits,
    )
    sim.add_nodes(*nodes)
    return sim
