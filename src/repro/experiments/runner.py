"""Experiment harness: assemble a bus, run it, measure bus-off statistics.

Mirrors the paper's method (Sec. V-C): record the bus for a fixed window
containing multiple bus-off attempts, then report mean / standard deviation /
maximum bus-off time per attacker — one Table II row per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bus.simulator import CanBusSimulator
from repro.can.constants import BUS_SPEED_50K
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode
from repro.trace.framelog import BusOffEpisode, FrameLog


@dataclass
class ExperimentResult:
    """Measured outcome of one experiment run.

    Attributes:
        name: Experiment identifier (e.g. "exp5").
        bus_speed: Bus speed the run used.
        duration_bits: Simulated window length.
        attacker_stats: Per-attacker-node Table II row
            (count / mean_ms / std_ms / max_ms).
        episodes: Raw per-attacker bus-off episodes.
        detections: Total MichiCAN detections.
        counterattacks: Total counterattacks launched.
        busy_fraction: Observed bus-occupancy fraction.
    """

    name: str
    bus_speed: int
    duration_bits: int
    attacker_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    episodes: Dict[str, List[BusOffEpisode]] = field(default_factory=dict)
    detections: int = 0
    counterattacks: int = 0
    busy_fraction: float = 0.0

    def mean_busoff_ms(self, attacker: str) -> float:
        return self.attacker_stats[attacker]["mean_ms"]

    def render(self) -> str:
        """One experiment's rows in the Table II format."""
        lines = [
            f"{self.name}: {self.duration_bits} bits at {self.bus_speed} bit/s, "
            f"{self.detections} detections, {self.counterattacks} counterattacks"
        ]
        for attacker, stats in sorted(self.attacker_stats.items()):
            lines.append(
                f"  {attacker:<14} episodes={stats['count']:<3.0f} "
                f"mean={stats['mean_ms']:6.1f} ms  "
                f"std={stats['std_ms']:5.2f} ms  max={stats['max_ms']:6.1f} ms"
            )
        return "\n".join(lines)


def run_and_measure(
    sim: CanBusSimulator,
    attackers: Sequence[CanNode],
    duration_bits: int,
    name: str = "experiment",
    defenders: Optional[Sequence[MichiCanNode]] = None,
) -> ExperimentResult:
    """Run ``sim`` for ``duration_bits`` and collect Table II statistics."""
    sim.run(duration_bits)
    log = FrameLog(sim.events)
    result = ExperimentResult(
        name=name,
        bus_speed=sim.bus_speed,
        duration_bits=duration_bits,
    )
    for attacker in attackers:
        result.episodes[attacker.name] = log.busoff_episodes(attacker.name)
        result.attacker_stats[attacker.name] = log.busoff_statistics(
            attacker.name, sim.bus_speed
        )
    for defender in defenders or []:
        result.detections += len(defender.firmware.detections)
        result.counterattacks += defender.counterattacks
    if sim.wire.record:
        from repro.trace.recorder import LogicTrace

        result.busy_fraction = LogicTrace(sim.wire.history).busy_fraction()
    return result


def make_simulator(bus_speed: int = BUS_SPEED_50K, record: bool = True) -> CanBusSimulator:
    """A simulator at the paper's online-evaluation bus speed (50 kbit/s)."""
    return CanBusSimulator(bus_speed=bus_speed, record_wire=record)
