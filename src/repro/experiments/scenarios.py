"""The paper's experiments as reusable drivers (Sec. V).

Each ``experiment_N`` builds the bus topology of one Table II row; higher-
level helpers cover the >2-attacker extension, the Parrot comparison and the
ParkSense on-vehicle scenario.  Benchmarks and examples call these so paper
numbers are produced by exactly one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.attacks.dos import DosAttacker, TargetedDosAttacker
from repro.attacks.multi_id import ToggleAttacker
from repro.baselines.parrot import ParrotNode
from repro.bus.simulator import CanBusSimulator
from repro.can.constants import BUS_SPEED_50K
from repro.core.defense import MichiCanNode
from repro.dbc.types import CommunicationMatrix
from repro.experiments.config import _UNSET, DEFAULT_DURATION_BITS, RunConfig
from repro.experiments.runner import ExperimentResult, make_simulator, run_and_measure
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler
from repro.vehicle.parksense import ParkSense
from repro.workloads.matrix import theoretical_bus_load
from repro.workloads.restbus import RestbusNode
from repro.workloads.vehicles import (
    PARKSENSE_ATTACK_ID,
    pacifica_matrix,
    vehicle_buses,
)

#: The MichiCAN-equipped ECU's CAN ID in all Table II experiments.
DEFENDER_ID = 0x173

# DEFAULT_DURATION_BITS moved to repro.experiments.config (PR 6) and is
# re-exported here for compatibility.

#: Target steady-state restbus load.  The paper cites ~40 % load in real
#: vehicles at native speed; replaying onto the 50 kbit/s evaluation bus
#: thins the traffic (PCAN replay drops what does not fit), and the paper's
#: Exp. 1/3 statistics show only occasional benign interruptions — matched
#: by a ~12 % replay load here.
RESTBUS_TARGET_LOAD = 0.12


def detection_ids_for(
    defender_id: int, legitimate_ids: Sequence[int]
) -> FrozenSet[int]:
    """𝔻 for a defender that must whitelist the restbus traffic below it."""
    lower_legitimate = {i for i in legitimate_ids if i < defender_id}
    return frozenset(
        j for j in range(defender_id + 1) if j not in lower_legitimate
    )


def _restbus(sim: CanBusSimulator) -> RestbusNode:
    """Veh. D bus 1 replayed at a ~35 % steady-state load (Sec. V-A)."""
    matrix, _ = vehicle_buses("veh_d")
    native = theoretical_bus_load(matrix, sim.bus_speed)
    scale = max(1.0, native / RESTBUS_TARGET_LOAD)
    node = RestbusNode("restbus", matrix, sim.bus_speed, time_scale=scale)
    sim.add_node(node)
    return node


def _defender(
    sim: CanBusSimulator,
    legitimate_ids: Sequence[int] = (),
    own_period_bits: Optional[int] = 25_000,
) -> MichiCanNode:
    """The MichiCAN ECU transmitting 0x173 (its own periodic message)."""
    scheduler = None
    if own_period_bits:
        scheduler = PeriodicScheduler(
            [PeriodicMessage(DEFENDER_ID, period_bits=own_period_bits,
                             offset_bits=977)]
        )
    node = MichiCanNode(
        "michican",
        detection_ids_for(DEFENDER_ID, legitimate_ids),
        scheduler=scheduler,
    )
    sim.add_node(node)
    return node


@dataclass(frozen=True)
class ExperimentSetup:
    """A fully-wired experiment ready to run."""

    sim: CanBusSimulator
    defender: MichiCanNode
    attackers: Tuple[CanNode, ...]
    name: str

    def run(self, duration_bits: int = _UNSET, metrics: bool = _UNSET,
            *, config: Optional[RunConfig] = None) -> ExperimentResult:
        base = config if config is not None else RunConfig()
        cfg = base.merged_with_legacy(
            "ExperimentSetup.run",
            {"duration_bits": duration_bits, "metrics": metrics},
            config_given=config is not None,
        )
        if cfg.name is None:
            cfg = cfg.with_overrides(name=self.name)
        defenders = [self.defender] if self.defender is not None else []
        return run_and_measure(
            self.sim, self.attackers, defenders=defenders, config=cfg,
        )


def _single_attacker_setup(
    attack_id: int, restbus: bool, name: str, bus_speed: int
) -> ExperimentSetup:
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    legitimate: List[int] = []
    if restbus:
        node = _restbus(sim)
        legitimate = node.matrix.all_ids()
    defender = _defender(sim, legitimate)
    attacker = DosAttacker("attacker", attack_id)
    sim.add_node(attacker)
    return ExperimentSetup(sim, defender, (attacker,), name)


def experiment_1(bus_speed: int = BUS_SPEED_50K) -> ExperimentSetup:
    """Spoofing attacker (0x173) with restbus simulation."""
    return _single_attacker_setup(0x173, restbus=True, name="exp1",
                                  bus_speed=bus_speed)


def experiment_2(bus_speed: int = BUS_SPEED_50K) -> ExperimentSetup:
    """Spoofing attacker (0x173), attacker and defender alone on the bus."""
    return _single_attacker_setup(0x173, restbus=False, name="exp2",
                                  bus_speed=bus_speed)


def experiment_3(bus_speed: int = BUS_SPEED_50K) -> ExperimentSetup:
    """DoS attacker (0x064) with restbus simulation."""
    return _single_attacker_setup(0x064, restbus=True, name="exp3",
                                  bus_speed=bus_speed)


def experiment_4(bus_speed: int = BUS_SPEED_50K) -> ExperimentSetup:
    """DoS attacker (0x064) without restbus."""
    return _single_attacker_setup(0x064, restbus=False, name="exp4",
                                  bus_speed=bus_speed)


def experiment_5(
    bus_speed: int = BUS_SPEED_50K,
    attack_ids: Tuple[int, int] = (0x066, 0x067),
) -> ExperimentSetup:
    """Two attacking ECUs with two distinct DoS CAN IDs (Fig. 6 pattern)."""
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    defender = _defender(sim)
    attackers = tuple(
        sim.add_node(DosAttacker(f"attacker_{can_id:03x}", can_id))
        for can_id in attack_ids
    )
    return ExperimentSetup(sim, defender, attackers, "exp5")


def experiment_6(
    bus_speed: int = BUS_SPEED_50K,
    attack_ids: Tuple[int, int] = (0x050, 0x051),
) -> ExperimentSetup:
    """One attacker toggling between two CAN IDs."""
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    defender = _defender(sim)
    attacker = sim.add_node(ToggleAttacker("attacker", attack_ids))
    return ExperimentSetup(sim, defender, (attacker,), "exp6")


EXPERIMENTS = {
    1: experiment_1,
    2: experiment_2,
    3: experiment_3,
    4: experiment_4,
    5: experiment_5,
    6: experiment_6,
}


def run_table2(
    duration_bits: int = DEFAULT_DURATION_BITS,
    bus_speed: int = BUS_SPEED_50K,
) -> Dict[int, ExperimentResult]:
    """All six Table II experiments."""
    return {
        number: factory(bus_speed).run(
            config=RunConfig(duration_bits=duration_bits))
        for number, factory in EXPERIMENTS.items()
    }


def restbus_baseline(bus_speed: int = BUS_SPEED_50K) -> ExperimentSetup:
    """Benign restbus + MichiCAN defender, no attacker (false-positive
    baseline).

    The defended bus carrying only legitimate traffic: every detection or
    counterattack recorded here is by definition a false positive, making
    this the control run for Exp. 1/3 and — because the bus is mostly
    uncontended frames and idle gaps — the reference workload for the
    fast-forward engine's throughput benchmarks.
    """
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    node = _restbus(sim)
    defender = _defender(sim, node.matrix.all_ids())
    return ExperimentSetup(sim, defender, (), "restbus_baseline")


# --------------------------------------------------------------- extensions

def multi_attacker_experiment(
    num_attackers: int,
    bus_speed: int = BUS_SPEED_50K,
    base_id: int = 0x066,
) -> ExperimentSetup:
    """A >= 2 concurrent attackers (the Sec. V-C extension to A = 3, 4)."""
    if num_attackers < 1:
        raise ValueError("need at least one attacker")
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    defender = _defender(sim)
    attackers = tuple(
        sim.add_node(DosAttacker(f"attacker_{base_id + i:03x}", base_id + i))
        for i in range(num_attackers)
    )
    return ExperimentSetup(sim, defender, attackers, f"multi_{num_attackers}")


def total_fight_bits(result: ExperimentResult) -> int:
    """Length of the combined bus-off fight: first attack bit to the last
    attacker's *first* bus-off (the paper's 3515 / 4660-bit numbers for
    A = 3 / 4).  Later episodes (after recovery) are excluded."""
    first_episodes = [eps[0] for eps in result.episodes.values() if eps]
    if not first_episodes:
        return 0
    first_start = min(e.start for e in first_episodes)
    last_end = max(e.end for e in first_episodes)
    return last_end - first_start


# ---------------------------------------------------------- Parrot baseline

@dataclass(frozen=True)
class ParrotSetup:
    sim: CanBusSimulator
    parrot: ParrotNode
    attacker: CanNode


def parrot_defense_setup(
    attack_id: int = DEFENDER_ID,
    attack_period_bits: int = 1_000,
    bus_speed: int = BUS_SPEED_50K,
    max_start_latency: int = 2,
    seed: int = 7,
) -> ParrotSetup:
    """Parrot defending against a periodic spoofing attacker.

    Parrot needs the attack periodic (its flood frames must complete between
    instances to keep its own TEC below bus-off) — one of the structural
    weaknesses the MichiCAN paper highlights.
    """
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    parrot = ParrotNode(
        "parrot", detection_ids={attack_id},
        max_start_latency=max_start_latency, seed=seed,
    )
    sim.add_node(parrot)
    attacker = CanNode("attacker", scheduler=PeriodicScheduler(
        [PeriodicMessage(attack_id, period_bits=attack_period_bits,
                         payload_fn=lambda n: b"\xFF" * 8)]
    ))
    sim.add_node(attacker)
    return ParrotSetup(sim, parrot, attacker)


def michican_defense_setup(
    attack_id: int = DEFENDER_ID,
    attack_period_bits: int = 1_000,
    bus_speed: int = BUS_SPEED_50K,
) -> ExperimentSetup:
    """The same periodic attack defended by MichiCAN (fair comparison)."""
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    defender = _defender(sim, own_period_bits=None)
    attacker = CanNode("attacker", scheduler=PeriodicScheduler(
        [PeriodicMessage(attack_id, period_bits=attack_period_bits,
                         payload_fn=lambda n: b"\xFF" * 8)]
    ))
    sim.add_node(attacker)
    return ExperimentSetup(sim, defender, (attacker,), "michican_vs_parrot")


# ------------------------------------------------------------- on-vehicle

@dataclass
class ParkSenseOutcome:
    """Result of the §V-F scenario."""

    feature: ParkSense
    attacker_bus_off: bool
    dashboard: List[str]
    downtime_windows: List[tuple]
    attacker_busoff_count: int = 0


def parksense_experiment(
    with_michican: bool,
    duration_bits: int = 400_000,
    bus_speed: int = BUS_SPEED_50K,
    attack_start_bits: int = 60_000,
    matrix: Optional[CommunicationMatrix] = None,
) -> ParkSenseOutcome:
    """The on-vehicle test: targeted DoS (0x25F) against ParkSense.

    Without MichiCAN the feature times out and the cluster latches
    "PARKSENSE UNAVAILABLE SERVICE REQUIRED"; with the MichiCAN dongle on
    the OBD-II port the attacker is bused off and the feature survives.
    """
    matrix = matrix or pacifica_matrix()
    sim = make_simulator(config=RunConfig(bus_speed=bus_speed))
    # The vehicle's native traffic would saturate the slow evaluation bus
    # (the real car runs 500 kbit/s); stretch all periods to a ~30 % load,
    # like the restbus replay does.
    native_load = theoretical_bus_load(matrix, bus_speed)
    scale = max(1.0, native_load / 0.30)
    restbus = RestbusNode("vehicle", matrix, bus_speed, time_scale=scale)
    sim.add_node(restbus)

    feature = ParkSense(matrix, bus_speed)
    # Periods were stretched by the replay scale; stretch supervision too.
    for supervision in feature.supervised.values():
        supervision.timeout_bits = int(supervision.timeout_bits * scale)

    cluster = CanNode("cluster")
    cluster.on_frame_received(feature.on_frame)
    sim.add_node(cluster)

    defender: Optional[MichiCanNode] = None
    if with_michican:
        defender = MichiCanNode(
            "michican_dongle",
            detection_ids_for(0x260, matrix.all_ids()) - {0x260},
        )
        sim.add_node(defender)

    # The attacker stays silent until the feature is established, then
    # floods 0x25F from the OBD-II port.
    attacker = TargetedDosAttacker(
        "obd_attacker", victim_id=0x260, start_bits=attack_start_bits
    )
    sim.add_node(attacker)

    poll_interval = 500
    next_poll = poll_interval
    while sim.time < duration_bits:
        sim.advance(min(poll_interval, duration_bits - sim.time))
        if sim.time >= next_poll:
            feature.poll(sim.time)
            next_poll += poll_interval

    return ParkSenseOutcome(
        feature=feature,
        attacker_bus_off=attacker.is_bus_off,
        dashboard=list(feature.dashboard),
        downtime_windows=feature.downtime_windows(),
        attacker_busoff_count=getattr(attacker, "bus_off_count", 0),
    )
