"""The durable work journal: torn-write-tolerant JSONL spec ledger.

The campaign service's exactly-once guarantee rests on this file.  Every
state transition of every submitted spec is one appended JSON line::

    {"type": "work", "schema_version": 1, "state": "queued",
     "key": "<sha256>", "spec": {...}}
    {"type": "work", ..., "state": "leased", "key": ..., "worker": "w0",
     "attempt": 1}
    {"type": "work", ..., "state": "done",   "key": ..., "record": {...}}
    {"type": "work", ..., "state": "failed", "key": ..., "failure": {...}}

``key`` is the **content address** of the spec — a SHA-256 over its
canonical dict plus the campaign schema version — so resubmitting an
identical spec dedupes instead of re-running, and a journal written on
one host merges cleanly with one written on another.

Reading follows the checkpoint discipline established in PR 4 and
hardened here against adversarial files:

* a torn trailing (or mid-file) line — the writer died mid-append — is
  skipped;
* duplicated entries are idempotent (the **first** ``done`` wins, so a
  replayed journal cannot flip a completed result);
* interleaved telemetry lines (``type: "telemetry"`` — the journal
  doubles as the live-progress channel for ``repro campaign watch``) and
  any other foreign ``type`` are invisible to the work fold;
* a parseable work line stamped with a **newer** ``schema_version`` is a
  clean :class:`JournalSchemaError` — version skew must never be
  misread as corruption or, worse, silently reinterpreted.

Writing degrades gracefully: an append that raises :class:`OSError`
(disk full, or an injected :class:`~repro.faults.store.StoreWriteFault`)
is announced with a loud :class:`RuntimeWarning`, counted in
:attr:`WorkJournal.write_failures`, and otherwise ignored — the service
keeps the run alive in memory and only durability (resume) is lost.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    RunFailure,
    RunRecord,
    ScenarioSpec,
    spec_key,
)

#: Bump when the journal line layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: Work-entry states, in lifecycle order.
WORK_STATES = ("queued", "leased", "done", "failed")

PathLike = Union[str, "os.PathLike[str]"]


class JournalSchemaError(ConfigurationError):
    """A journal was written by a newer schema version than this build."""


def spec_digest(spec: ScenarioSpec) -> str:
    """The content address of ``spec`` (the journal's ``key``).

    SHA-256 over the canonical spec dict (:func:`spec_key`) and the
    campaign schema version: identical specs collapse to one key, any
    field flip or schema bump moves the address.
    """
    from repro.experiments.campaign import SCHEMA_VERSION

    blob = json.dumps({"campaign_schema": SCHEMA_VERSION,
                       "spec": spec_key(spec)}, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JournalState:
    """The fold of one journal: where every submitted spec stands."""

    #: key -> submitted spec, for every ``queued`` entry seen.
    specs: Dict[str, ScenarioSpec] = field(default_factory=dict)
    #: Keys in first-submission order (report ordering).
    order: List[str] = field(default_factory=list)
    #: key -> completed record (first ``done`` entry wins).
    records: Dict[str, RunRecord] = field(default_factory=dict)
    #: key -> terminal failure.
    failures: Dict[str, RunFailure] = field(default_factory=dict)
    #: key -> (worker, attempt) of the *last* lease seen — who was
    #: holding the spec when the parent died, for post-mortems.
    leases: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: Parseable-but-skipped work lines (missing keys, bad payloads).
    skipped_lines: int = 0

    def pending(self) -> List[str]:
        """Keys queued (or leased) but neither done nor failed, in order."""
        return [key for key in self.order
                if key not in self.records and key not in self.failures]

    def is_settled(self, key: str) -> bool:
        """Has ``key`` reached a terminal state (done or failed)?"""
        return key in self.records or key in self.failures


class WorkJournal:
    """Single-writer, append-only journal over one JSONL file.

    Args:
        path: The journal file; created on the first append.
        fault: Optional :class:`~repro.faults.store.StoreWriteFault`
            consulted before every append (degradation testing).
    """

    def __init__(self, path: PathLike, fault: Optional[Any] = None) -> None:
        self.path = os.fspath(path)
        self.fault = fault
        self.write_failures = 0

    # ------------------------------------------------------------ writing

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resumed service run)."""
        with open(self.path, "w", encoding="utf-8"):
            pass

    def _append(self, entry: Dict[str, Any]) -> None:
        try:
            if self.fault is not None:
                self.fault.before_write(f"journal {self.path}")
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
        except OSError as exc:
            self.write_failures += 1
            warnings.warn(
                f"work journal append to {self.path!r} failed ({exc}); "
                f"the service continues but this transition will NOT "
                f"survive a restart ({self.write_failures} write "
                f"failure(s) so far)",
                RuntimeWarning, stacklevel=3)

    def _work_entry(self, state: str, key: str,
                    **fields: Any) -> Dict[str, Any]:
        return {"type": "work", "schema_version": JOURNAL_SCHEMA_VERSION,
                "state": state, "key": key, **fields}

    def record_queued(self, key: str, spec: ScenarioSpec) -> None:
        self._append(self._work_entry("queued", key, spec=spec.to_dict()))

    def record_leased(self, key: str, worker: str, attempt: int) -> None:
        self._append(self._work_entry("leased", key, worker=worker,
                                      attempt=attempt))

    def record_done(self, key: str, record: RunRecord) -> None:
        self._append(self._work_entry("done", key, record=record.to_dict()))

    def record_failed(self, key: str, failure: RunFailure) -> None:
        self._append(self._work_entry("failed", key,
                                      failure=failure.to_dict()))

    @property
    def degraded(self) -> bool:
        """Has any append failed since this writer was constructed?"""
        return self.write_failures > 0

    # ------------------------------------------------------------ reading

    def load(self) -> JournalState:
        """Fold the journal into a :class:`JournalState` (see module doc).

        Raises :class:`JournalSchemaError` on version skew; every other
        defect (torn line, duplicate, foreign type, bad payload)
        degrades to a skip.
        """
        state = JournalState()
        if not os.path.exists(self.path):
            return state
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a dead writer
                if not isinstance(entry, dict) or entry.get("type") != "work":
                    continue  # telemetry / checkpoint / foreign lines
                self._fold_entry(state, entry, number)
        return state

    def _fold_entry(self, state: JournalState, entry: Dict[str, Any],
                    number: int) -> None:
        version = entry.get("schema_version")
        if isinstance(version, int) and version > JOURNAL_SCHEMA_VERSION:
            raise JournalSchemaError(
                f"journal {self.path!r} line {number} was written by "
                f"schema v{version}; this build reads "
                f"v{JOURNAL_SCHEMA_VERSION} — refusing to resume from a "
                f"newer format")
        kind = entry.get("state")
        key = entry.get("key")
        if kind not in WORK_STATES or not isinstance(key, str) or not key:
            state.skipped_lines += 1
            return
        try:
            if kind == "queued":
                if key not in state.specs:
                    state.specs[key] = ScenarioSpec.from_dict(entry["spec"])
                    state.order.append(key)
            elif kind == "leased":
                state.leases[key] = (str(entry.get("worker", "")),
                                     int(entry.get("attempt", 1)))
            elif kind == "done":
                if key not in state.records:  # first done wins
                    state.records[key] = RunRecord.from_dict(entry["record"])
            elif kind == "failed":
                if key not in state.records and key not in state.failures:
                    state.failures[key] = RunFailure.from_dict(
                        entry["failure"])
        except (KeyError, TypeError, ValueError, AttributeError,
                ConfigurationError):
            state.skipped_lines += 1
