"""Supervised, queue-backed campaign execution service.

Layers, bottom up:

* :mod:`~repro.experiments.service.journal` — durable, torn-write
  tolerant work journal keyed by content-addressed spec hashes
  (exactly-once resume);
* :mod:`~repro.experiments.service.queue` — bounded submission queue
  with atomic backpressure rejection;
* :mod:`~repro.experiments.service.supervisor` — long-lived batched
  worker pool with heartbeat liveness, lease stealing and bounded
  restarts;
* :mod:`~repro.experiments.service.service` —
  :class:`~repro.experiments.service.service.CampaignService`, the
  cooperative scheduler tying the three together (retry backoff,
  poison quarantine, graceful drain);
* :mod:`~repro.experiments.service.server` — the ``repro serve``
  asyncio unix-socket front end and its blocking client helper.

See ``docs/campaign-service.md`` for the operational story.
"""

from repro.experiments.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalSchemaError,
    JournalState,
    WorkJournal,
    spec_digest,
)
from repro.experiments.service.queue import (
    BoundedWorkQueue,
    QueueFullError,
    WorkItem,
)
from repro.experiments.service.server import ServiceServer, request
from repro.experiments.service.service import (
    CampaignService,
    ServiceDrainingError,
)
from repro.experiments.service.supervisor import (
    WorkerEvent,
    WorkerPool,
    WorkerSlot,
)

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalSchemaError",
    "JournalState",
    "WorkJournal",
    "spec_digest",
    "BoundedWorkQueue",
    "QueueFullError",
    "WorkItem",
    "ServiceServer",
    "request",
    "CampaignService",
    "ServiceDrainingError",
    "WorkerEvent",
    "WorkerPool",
    "WorkerSlot",
]
