"""The supervised, queue-backed campaign service.

:class:`CampaignService` is the crash-tolerant execution substrate the
ROADMAP's "campaigns arrive concurrently" story needs: submissions flow
into a :class:`~repro.experiments.service.queue.BoundedWorkQueue`
(explicit backpressure), every state transition is journaled durably
(:class:`~repro.experiments.service.journal.WorkJournal`), and a
:class:`~repro.experiments.service.supervisor.WorkerPool` of long-lived
batched workers executes specs with heartbeat liveness, lease stealing,
bounded restarts and poison quarantine.

Guarantees:

* **exactly-once completion** — specs are keyed by content address; a
  killed parent resumed from its journal re-runs only work without a
  ``done`` entry, and duplicated results (a stolen lease whose worker
  finished anyway) are dropped on arrival;
* **no unbounded memory** — submissions beyond the queue bound are
  rejected atomically with
  :class:`~repro.experiments.service.queue.QueueFullError`;
* **graceful drain** — :meth:`request_drain` (wired to SIGTERM/SIGINT
  by ``repro serve``) stops leasing, lets in-flight specs finish,
  flushes the journal and stops the pool;
* **graceful degradation** — journal write failures (real or injected
  via ``store.write_failure``) warn loudly and cost only resumability,
  never results.

The service is single-threaded and cooperative: call :meth:`pump`
periodically (the asyncio front end does; :meth:`run_until_idle` wraps
it for batch use).
"""

from __future__ import annotations

import os
import time as _time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.campaign import (
    CampaignReport,
    RunFailure,
    RunRecord,
    ScenarioSpec,
    _load_flight_dump,
    scenario_factory,
)
from repro.experiments.service.journal import (
    WorkJournal,
    spec_digest,
)
from repro.experiments.service.queue import BoundedWorkQueue, QueueFullError
from repro.experiments.service.supervisor import WorkerEvent, WorkerPool

__all__ = ["CampaignService", "ServiceDrainingError", "QueueFullError"]


class ServiceDrainingError(ReproError):
    """A submission arrived while the service was draining."""


class CampaignService:
    """Supervised campaign execution over a durable work journal.

    Args:
        journal_path: The JSONL work journal (and, with ``telemetry``,
            the live-progress channel).  With ``resume=True`` an
            existing journal is folded first: completed specs replay
            from it, pending ones re-enter the queue.
        n_workers: Long-lived worker count.
        queue_capacity: Hard bound on queued (not yet leased) specs;
            submissions beyond it raise :class:`QueueFullError`.
        lease_seconds: Per-spec wall-clock lease before a worker is
            presumed hung and its work stolen (``None`` = no expiry).
        heartbeat_seconds: Worker heartbeat period.
        max_retries: Retries granted to a spec whose worker *reported*
            an error (crashes/hangs are governed by
            ``poison_threshold`` instead).
        retry_backoff_seconds: Base of the per-spec retry backoff.
        poison_threshold: A spec that killed this many workers (crash or
            stolen lease) is quarantined as a ``"poison"`` failure with
            its flight dump attached, instead of being retried forever.
        restart_backoff_seconds / max_worker_restarts: Worker restart
            policy (see :class:`WorkerPool`).
        flight_dir: Per-spec flight-recorder dumps land here.
        telemetry: Stream live telemetry lines over the journal.
        result_cache: Optional content-addressed
            :class:`~repro.experiments.resultcache.ResultCache`; hits
            complete at submission time without touching a worker.
        store_fault: Optional injected store fault (degradation tests).
        resume: Fold an existing journal instead of truncating it.
    """

    def __init__(
        self,
        journal_path: str,
        n_workers: int = 2,
        queue_capacity: int = 256,
        lease_seconds: Optional[float] = 30.0,
        heartbeat_seconds: float = 0.5,
        max_retries: int = 1,
        retry_backoff_seconds: float = 0.1,
        poison_threshold: int = 2,
        restart_backoff_seconds: float = 0.1,
        max_worker_restarts: int = 3,
        flight_dir: Optional[str] = None,
        telemetry: bool = False,
        result_cache: Optional[Any] = None,
        store_fault: Optional[Any] = None,
        resume: bool = False,
    ) -> None:
        self.journal = WorkJournal(journal_path, fault=store_fault)
        self.queue = BoundedWorkQueue(queue_capacity)
        self.pool = WorkerPool(
            n_workers,
            heartbeat_seconds=heartbeat_seconds,
            lease_seconds=lease_seconds,
            restart_backoff_seconds=restart_backoff_seconds,
            max_worker_restarts=max_worker_restarts,
            flight_enabled=flight_dir is not None)
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.poison_threshold = poison_threshold
        self.flight_dir = flight_dir
        self.result_cache = result_cache
        self.draining = False
        self.drained = False

        self._specs: Dict[str, ScenarioSpec] = {}
        self._order: List[str] = []
        self._records: Dict[str, RunRecord] = {}
        self._failures: Dict[str, RunFailure] = {}
        self._attempts: Dict[str, int] = {}
        self._kills: Dict[str, int] = {}
        self._started_monotonic = _time.monotonic()

        self._telemetry: Optional[Any] = None
        if telemetry:
            from repro.experiments.telemetry import TelemetryWriter

            self._telemetry = TelemetryWriter(
                journal_path, heartbeat_seconds=heartbeat_seconds)

        if flight_dir is not None:
            os.makedirs(flight_dir, exist_ok=True)

        if resume:
            state = self.journal.load()
            self._specs.update(state.specs)
            self._order.extend(state.order)
            self._records.update(state.records)
            self._failures.update(state.failures)
            # Accepted-before-the-crash work re-enters outside the
            # submission bound (requeue never rejects): restarting must
            # not bounce a resume.  requeue() prepends, so walking the
            # pending list in reverse restores journal order.
            for key in reversed(state.pending()):
                self.queue.requeue(key, attempt=1)

    # --------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the worker pool (idempotent per service instance)."""
        self.pool.start()

    def close(self) -> None:
        """Stop every worker without waiting for queued work."""
        self.pool.stop()

    def request_drain(self) -> None:
        """Stop leasing and accepting; in-flight specs keep running.

        Cooperative: keep calling :meth:`pump` (or let the server loop
        do it) until :meth:`is_idle`; then :meth:`finish_drain`.
        """
        self.draining = True

    def finish_drain(self) -> None:
        """Stop the pool and emit the final telemetry line."""
        self.pool.stop()
        self.drained = True
        if self._telemetry is not None:
            self._telemetry.campaign_finished(
                len(self._records), len(self._failures),
                _time.monotonic() - self._started_monotonic)

    # -------------------------------------------------------- submission

    def submit_specs(
            self, specs: Sequence[ScenarioSpec]) -> Dict[str, List[str]]:
        """Accept new work; returns keys grouped by disposition.

        (Named ``submit_specs`` rather than ``submit`` deliberately: the
        effect analyzer resolves unknown ``obj.submit()`` calls by name
        across the project, and this method journals — a generic name
        would taint every scenario that calls a ``submit`` method.)

        ``{"accepted": [...], "duplicate": [...], "completed": [...]}``
        — duplicates are keys already queued or in flight, completed
        ones already hold a terminal result (exactly-once dedupe).

        Raises :class:`QueueFullError` (nothing enqueued) on
        backpressure and :class:`ServiceDrainingError` while draining.
        """
        if self.draining:
            raise ServiceDrainingError(
                "service is draining; submissions are closed")
        accepted: List[str] = []
        duplicate: List[str] = []
        completed: List[str] = []
        new_specs: Dict[str, ScenarioSpec] = {}
        for spec in specs:
            scenario_factory(spec.scenario)  # fail fast on unknown names
            if spec.faults is not None:
                spec.faults.validate()
            key = spec_digest(spec)
            if key in self._records or key in self._failures:
                completed.append(key)
            elif key in self._specs or key in new_specs:
                duplicate.append(key)
            else:
                new_specs[key] = spec
        cached: Dict[str, RunRecord] = {}
        if self.result_cache is not None:
            for key, spec in list(new_specs.items()):
                record = self.result_cache.get(spec)
                if record is not None:
                    cached[key] = record
                    del new_specs[key]
        # Atomic backpressure check before anything is journaled.
        self.queue.submit(list(new_specs))
        for key, spec in new_specs.items():
            self._specs[key] = spec
            self._order.append(key)
            self.journal.record_queued(key, spec)
            accepted.append(key)
        for key, record in cached.items():
            spec = record.spec
            self._specs[key] = spec
            self._order.append(key)
            self.journal.record_queued(key, spec)
            self._settle_record(key, record)
            accepted.append(key)
        if self._telemetry is not None and accepted:
            self._telemetry.campaign_started(
                len(self._order), len(self.queue), self.n_workers)
        return {"accepted": accepted, "duplicate": duplicate,
                "completed": completed}

    # -------------------------------------------------------- scheduling

    def pump(self) -> None:
        """One cooperative scheduler step: poll, supervise, lease."""
        now = _time.monotonic()
        self.pool.tick_restarts(now)
        # WorkerPool.poll drains with zero-timeout Connection.poll calls
        # and never blocks; the service runs its scheduler inline by
        # design, so no executor hand-off is needed here.
        for event in self.pool.poll():  # repro: noqa[RC402]
            self._handle_event(event, now)
        for slot in self.pool.expired_leases(now):
            key = self.pool.steal(slot, now)
            if key is not None and not self._settled(key):
                self._worker_killed(key, slot.name, slot.attempt,
                                    "lease expired (worker hung or too "
                                    "slow); lease stolen", now)
        self._fail_stranded_work(now)
        if not self.draining:
            self._lease_ready_work(now)

    def is_idle(self) -> bool:
        """No queued work and no lease in flight."""
        return not self.queue and not self.pool.busy_slots()

    def run_until_idle(self, poll_seconds: float = 0.02,
                       timeout: Optional[float] = None) -> bool:
        """Pump until idle; False when ``timeout`` elapsed first."""
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        while True:
            self.pump()
            if self.is_idle():
                return True
            if deadline is not None and _time.monotonic() > deadline:
                return False
            _time.sleep(poll_seconds)

    # ----------------------------------------------------- event handling

    def _settled(self, key: str) -> bool:
        return key in self._records or key in self._failures

    def _handle_event(self, event: WorkerEvent, now: float) -> None:
        if event.kind == "ok":
            if event.key is None or self._settled(event.key):
                return  # duplicate result from a stolen-but-alive lease
            self._settle_record(
                event.key, RunRecord.from_dict(event.payload),
                worker=event.worker)
        elif event.kind == "error":
            if event.key is None or self._settled(event.key):
                return
            attempt = self._attempts.get(event.key, 1)
            if attempt <= self.max_retries:
                self._requeue(event.key, attempt + 1, now,
                              reason="error")
            else:
                self._settle_failure(event.key, RunFailure(
                    spec=self._specs[event.key], kind="error",
                    error=str(event.payload), attempts=attempt,
                    worker=event.worker,
                    flight=_load_flight_dump(self._flight_path(event.key)),
                    flight_path=self._flight_path(event.key) or ""))
        elif event.kind == "died":
            if event.key is not None and not self._settled(event.key):
                self._worker_killed(
                    event.key, event.worker,
                    self._attempts.get(event.key, 1),
                    f"worker died (exit code {event.payload}) while "
                    f"holding the lease", now)
        elif event.kind == "heartbeat":
            if self._telemetry is not None and event.key is not None:
                spec = self._specs.get(event.key)
                self._telemetry.heartbeat(
                    event.worker,
                    spec.name if spec is not None else event.key[:12],
                    float(event.payload))

    def _worker_killed(self, key: str, worker: str, attempt: int,
                       reason: str, now: float) -> None:
        """A crash or stolen lease: requeue, or quarantine poison."""
        kills = self._kills.get(key, 0) + 1
        self._kills[key] = kills
        if kills >= self.poison_threshold:
            self._settle_failure(key, RunFailure(
                spec=self._specs[key], kind="poison",
                error=(f"quarantined: spec killed {kills} worker(s); "
                       f"last: {reason}"),
                attempts=attempt, worker=worker,
                flight=_load_flight_dump(self._flight_path(key)),
                flight_path=self._flight_path(key) or ""))
        else:
            self._requeue(key, attempt + 1, now, reason="crash")

    def _requeue(self, key: str, attempt: int, now: float,
                 reason: str) -> None:
        delay = self.retry_backoff_seconds * (2 ** max(0, attempt - 2))
        self.queue.requeue(key, attempt=attempt, ready_at=now + delay)
        if self._telemetry is not None:
            spec = self._specs[key]
            self._telemetry.spec_retry(spec.name, attempt - 1, reason,
                                       delay)

    def _settle_record(self, key: str, record: RunRecord,
                       worker: str = "") -> None:
        self._records[key] = record
        self.journal.record_done(key, record)
        if self._telemetry is not None:
            self._telemetry.spec_finished(
                record.spec.name, self._attempts.get(key, 1),
                worker or record.worker, "ok", record.wall_seconds)
        if (self.result_cache is not None and not record.cache_hit):
            self.result_cache.put(record.spec, record)

    def _settle_failure(self, key: str, failure: RunFailure) -> None:
        self._failures[key] = failure
        self.journal.record_failed(key, failure)
        if self._telemetry is not None:
            self._telemetry.spec_finished(
                failure.spec.name, failure.attempts, failure.worker,
                failure.kind, failure.wall_seconds)

    def _fail_stranded_work(self, now: float) -> None:
        """All slots retired with work still queued: fail it cleanly."""
        if not self.queue:
            return
        if any(not slot.retired for slot in self.pool.slots):
            return
        while True:
            item = self.queue.pop_ready(now)
            if item is None and not self.queue:
                break
            if item is None:  # only backoff-delayed items left
                item = self.queue.pop_ready(float("inf"))
                if item is None:
                    break
            self._settle_failure(item.key, RunFailure(
                spec=self._specs[item.key], kind="crash",
                error="worker pool exhausted (every slot exceeded its "
                      "restart budget)",
                attempts=item.attempt))

    def _lease_ready_work(self, now: float) -> None:
        for slot in self.pool.idle_slots():
            item = self.queue.pop_ready(now)
            if item is None:
                break
            key = item.key
            self._attempts[key] = item.attempt
            flight_path = self._flight_path(key)
            if not self.pool.lease(slot, key, self._specs[key],
                                   item.attempt, flight_path):
                self.queue.requeue(key, item.attempt, item.ready_at)
                continue
            self.journal.record_leased(key, slot.name, item.attempt)
            if self._telemetry is not None:
                self._telemetry.spec_started(
                    self._specs[key].name, item.attempt, slot.name)

    def _flight_path(self, key: str) -> Optional[str]:
        if self.flight_dir is None:
            return None
        return os.path.join(self.flight_dir, f"{key[:16]}.flight.json")

    # ---------------------------------------------------------- reporting

    def report(self) -> CampaignReport:
        """The merged report over everything settled so far, in
        submission order — byte-compatible with ``Campaign.run()``'s."""
        return CampaignReport(
            records=[self._records[key] for key in self._order
                     if key in self._records],
            failures=[self._failures[key] for key in self._order
                      if key in self._failures],
            n_workers=self.n_workers,
            wall_seconds=_time.monotonic() - self._started_monotonic)

    def status(self) -> Dict[str, Any]:
        """A JSON-safe snapshot for ``repro campaign status``."""
        workers = []
        for slot in self.pool.slots:
            if slot.retired:
                state = "retired"
            elif slot.proc is None:
                state = "restarting"
            elif slot.busy_key is not None:
                state = "busy"
            elif slot.ready:
                state = "idle"
            else:
                state = "starting"
            spec = self._specs.get(slot.busy_key or "")
            workers.append({
                "name": slot.name, "state": state,
                "pid": slot.proc.pid if slot.proc is not None else None,
                "spec": spec.name if spec is not None else None,
                "restarts": slot.restarts,
            })
        return {
            "submitted": len(self._order),
            "completed": len(self._records),
            "failed": len(self._failures),
            "queued": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "in_flight": len(self.pool.busy_slots()),
            "draining": self.draining,
            "drained": self.drained,
            "journal_path": self.journal.path,
            "journal_degraded": self.journal.degraded,
            "journal_write_failures": self.journal.write_failures,
            "workers": workers,
            "uptime_seconds": round(
                _time.monotonic() - self._started_monotonic, 3),
        }
