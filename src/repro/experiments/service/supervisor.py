"""Long-lived batched workers with heartbeat liveness and supervision.

One ``repro campaign run`` pays a full process spawn per spec — the
BENCH_campaign.json 0.98x "speedup".  The service instead keeps a fixed
pool of **long-lived workers**, each a looping process that receives
spec dicts over its pipe, runs them through the same
:func:`~repro.experiments.campaign.execute_spec` entry point the
campaign uses, and reports results — so the spawn tax is paid once per
worker, not once per spec, and determinism is untouched
(``execute_spec`` re-seeds from the spec before every build).

Liveness is layered:

* every worker runs a daemon **heartbeat thread** streaming
  ``("heartbeat", key, elapsed)`` messages while a spec is in flight —
  the supervisor forwards them to the telemetry channel (PR 7's
  ``repro campaign watch`` renders them) and tracks last-seen times;
* a worker whose **process died** is detected immediately
  (``Process.is_alive``);
* a worker that stops heartbeating (wedged interpreter, SIGSTOP) or
  holds a **lease past its expiry** is presumed hung: the supervisor
  terminates it so its lease can be stolen.

Dead and hung workers are **restarted with bounded exponential
backoff**; a slot that keeps dying is retired so a poisoned environment
cannot spin the supervisor forever.

The worker loop deliberately catches *every* ``Exception`` (injected
faults included) and reports it as a structured error — the RC203 fault
boundary extends to this function — so one chaotic spec degrades to a
failure record instead of a dead worker.
"""

from __future__ import annotations

import os
import threading
import time as _time
from dataclasses import dataclass
from multiprocessing import current_process, get_context
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.campaign import (
    ScenarioSpec,
    _active_flight,
    execute_spec,
)

#: Worker -> parent message kinds.
WORKER_MESSAGE_KINDS = ("ready", "heartbeat", "ok", "error")


def _pool_worker(conn: Any, heartbeat_seconds: float,
                 flight_enabled: bool) -> None:
    """Worker-process entry: loop over leased specs until told to stop."""
    if flight_enabled:
        import signal

        def _on_terminate(signum: int, frame: Any) -> None:
            # The supervisor is stealing our lease (hang/expiry): persist
            # the black box, then exit without unwinding a mid-bit loop.
            if _active_flight:
                try:
                    _active_flight[-1].flush(reason="timeout")
                except OSError:
                    pass
            os._exit(124)

        signal.signal(signal.SIGTERM, _on_terminate)

    send_lock = threading.Lock()
    #: Guards ``current`` — written by the spec loop, read by the
    #: heartbeat thread (RC401: without it a torn read pairs a fresh key
    #: with the previous spec's start time, inflating ``elapsed``).
    state_lock = threading.Lock()
    current: Dict[str, Any] = {"key": None, "started": 0.0}
    stopping = threading.Event()

    def _send(message: Tuple[Any, ...]) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False  # parent is gone; nothing left to report to

    def _beat() -> None:
        while not stopping.wait(heartbeat_seconds):
            with state_lock:
                key = current["key"]
                started = current["started"]
            if key is None:
                continue
            elapsed = _time.monotonic() - started
            if not _send(("heartbeat", key, elapsed)):
                return

    threading.Thread(target=_beat, daemon=True).start()
    _send(("ready", current_process().name))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died; exit rather than orphan
            if message[0] == "stop":
                break
            _, key, spec_dict, flight_path = message
            spec = ScenarioSpec.from_dict(spec_dict)
            with state_lock:
                current["started"] = _time.monotonic()
                current["key"] = key
            try:
                record = execute_spec(spec, flight_path=flight_path)
                reply = ("ok", key, record.to_dict())
            except Exception as exc:  # deliberate: the RC203 boundary
                reply = ("error", key, f"{type(exc).__name__}: {exc}")
            with state_lock:
                current["key"] = None
            if not _send(reply):
                break
    finally:
        stopping.set()
        conn.close()


@dataclass
class WorkerEvent:
    """One message the pool surfaced to the scheduler."""

    kind: str  # "ready" | "heartbeat" | "ok" | "error" | "died"
    worker: str
    key: Optional[str] = None
    payload: Any = None


class WorkerSlot:
    """Parent-side handle over one pool position."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[Any] = None
        self.conn: Optional[Any] = None
        self.name = f"svc-w{index}"
        self.ready = False
        #: Journal key of the leased spec (None = idle).
        self.busy_key: Optional[str] = None
        self.attempt = 0
        self.flight_path: Optional[str] = None
        self.leased_at = 0.0
        self.last_seen = 0.0
        self.restarts = 0
        self.retired = False
        self.respawn_at = 0.0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    @property
    def idle(self) -> bool:
        return (self.alive and self.ready and self.busy_key is None
                and not self.retired)


class WorkerPool:
    """Spawns, monitors, restarts and retires the long-lived workers.

    Args:
        n_workers: Pool size.
        heartbeat_seconds: Worker heartbeat period; a busy worker silent
            for ``heartbeat_timeout`` (default ``4 x`` the period, min
            2 s) is presumed wedged.
        lease_seconds: Per-spec wall-clock lease.  A worker holding a
            lease past expiry is terminated and the lease stolen.
            ``None`` disables expiry (hangs are then only caught by
            heartbeat silence or process death).
        restart_backoff_seconds: Base of the per-slot exponential
            restart backoff.
        max_worker_restarts: Restarts granted to each slot before it is
            retired.
        flight_enabled: Workers install the SIGTERM flight-flush handler
            (campaigns running with a flight directory).
    """

    def __init__(
        self,
        n_workers: int,
        heartbeat_seconds: float = 0.5,
        lease_seconds: Optional[float] = 30.0,
        restart_backoff_seconds: float = 0.1,
        max_worker_restarts: int = 3,
        flight_enabled: bool = False,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        self.n_workers = n_workers
        self.heartbeat_seconds = heartbeat_seconds
        self.lease_seconds = lease_seconds
        self.restart_backoff_seconds = restart_backoff_seconds
        self.max_worker_restarts = max_worker_restarts
        self.flight_enabled = flight_enabled
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else max(4 * heartbeat_seconds, 2.0))
        self._ctx = get_context()
        self.slots = [WorkerSlot(index) for index in range(n_workers)]
        self.total_restarts = 0

    # ----------------------------------------------------------- spawning

    def start(self) -> None:
        for slot in self.slots:
            self._spawn(slot)

    def _spawn(self, slot: WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(child_conn, self.heartbeat_seconds, self.flight_enabled),
            name=f"{slot.name}-gen{slot.restarts}",
            daemon=True)
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.ready = False
        slot.busy_key = None
        slot.attempt = 0
        slot.last_seen = _time.monotonic()

    def tick_restarts(self, now: float) -> None:
        """Respawn slots whose backoff has elapsed."""
        for slot in self.slots:
            if (slot.proc is None and not slot.retired
                    and slot.respawn_at <= now):
                self._spawn(slot)

    def _schedule_restart(self, slot: WorkerSlot, now: float) -> None:
        slot.proc = None
        slot.conn = None
        slot.ready = False
        slot.busy_key = None
        if slot.restarts >= self.max_worker_restarts:
            slot.retired = True
            return
        delay = self.restart_backoff_seconds * (2 ** slot.restarts)
        slot.restarts += 1
        self.total_restarts += 1
        slot.respawn_at = now + delay

    # ------------------------------------------------------------ leasing

    def idle_slots(self) -> List[WorkerSlot]:
        return [slot for slot in self.slots if slot.idle]

    def busy_slots(self) -> List[WorkerSlot]:
        return [slot for slot in self.slots if slot.busy_key is not None]

    def live_slots(self) -> List[WorkerSlot]:
        return [slot for slot in self.slots
                if not slot.retired and (slot.alive or slot.proc is None)]

    def lease(self, slot: WorkerSlot, key: str, spec: ScenarioSpec,
              attempt: int, flight_path: Optional[str] = None) -> bool:
        """Hand ``spec`` to an idle worker; False when the send failed
        (the worker died between poll and lease — caller requeues)."""
        now = _time.monotonic()
        try:
            assert slot.conn is not None
            slot.conn.send(("run", key, spec.to_dict(), flight_path))
        except (OSError, ValueError, BrokenPipeError):
            self._schedule_restart(slot, now)
            return False
        slot.busy_key = key
        slot.attempt = attempt
        slot.flight_path = flight_path
        slot.leased_at = now
        slot.last_seen = now
        return True

    # ------------------------------------------------------------ polling

    def poll(self) -> List[WorkerEvent]:
        """Drain every worker pipe; returns events in arrival order.

        A dead worker (process gone, or pipe EOF with a lease held)
        surfaces exactly one ``"died"`` event carrying the orphaned key;
        the slot is scheduled for a backoff restart.
        """
        events: List[WorkerEvent] = []
        now = _time.monotonic()
        for slot in self.slots:
            conn = slot.conn
            if conn is None:
                continue
            broken = False
            while True:
                try:
                    # Zero-timeout poll returns immediately and recv only
                    # runs once data is confirmed buffered, so neither
                    # stalls the (single-threaded) event loop above.
                    if not conn.poll():  # repro: noqa[RC402]
                        break
                    message = conn.recv()  # repro: noqa[RC402]
                except (EOFError, OSError):
                    broken = True
                    break
                slot.last_seen = now
                kind = message[0]
                if kind == "ready":
                    slot.ready = True
                    events.append(WorkerEvent("ready", slot.name))
                elif kind == "heartbeat":
                    events.append(WorkerEvent(
                        "heartbeat", slot.name, key=message[1],
                        payload=message[2]))
                elif kind in ("ok", "error"):
                    key = message[1]
                    if key == slot.busy_key:
                        slot.busy_key = None
                        slot.flight_path = None
                    events.append(WorkerEvent(
                        kind, slot.name, key=key, payload=message[2]))
            if broken or (slot.proc is not None and not slot.proc.is_alive()):
                orphan = slot.busy_key
                exitcode = slot.proc.exitcode if slot.proc else None
                if slot.proc is not None:
                    # Bounded reap of an already-dead child (<= 1 s, rare).
                    slot.proc.join(timeout=1.0)  # repro: noqa[RC402]
                events.append(WorkerEvent(
                    "died", slot.name, key=orphan, payload=exitcode))
                self._schedule_restart(slot, now)
        return events

    # ----------------------------------------------------------- liveness

    def expired_leases(self, now: float) -> List[WorkerSlot]:
        """Busy slots whose lease expired or whose heartbeats went
        silent — candidates for termination + work stealing."""
        suspects = []
        for slot in self.busy_slots():
            if not slot.alive:
                continue  # poll() will surface the death
            held = now - slot.leased_at
            silent = now - slot.last_seen
            if self.lease_seconds is not None and held > self.lease_seconds:
                suspects.append(slot)
            elif silent > self.heartbeat_timeout:
                suspects.append(slot)
        return suspects

    def steal(self, slot: WorkerSlot, now: float) -> Optional[str]:
        """Terminate a hung worker and reclaim its lease key."""
        key = slot.busy_key
        if slot.proc is not None:
            # Recovery path for a worker already presumed hung: the
            # bounded joins (<= 4 s total) deliberately run inline — the
            # service accepts the pause over leaving a zombie mid-steal.
            slot.proc.terminate()
            slot.proc.join(timeout=2.0)  # repro: noqa[RC402]
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=2.0)  # repro: noqa[RC402]
        self._schedule_restart(slot, now)
        return key

    # ----------------------------------------------------------- shutdown

    def stop(self, timeout: float = 5.0) -> None:
        """Politely stop idle workers, then terminate stragglers."""
        for slot in self.slots:
            if slot.conn is not None and slot.alive:
                try:
                    slot.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        deadline = _time.monotonic() + timeout
        for slot in self.slots:
            if slot.proc is None:
                continue
            remaining = max(0.0, deadline - _time.monotonic())
            # Shutdown path: the server is draining and nothing else is
            # serviced anyway; the whole loop is bounded by ``timeout``.
            slot.proc.join(timeout=remaining)  # repro: noqa[RC402]
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=1.0)  # repro: noqa[RC402]
            if slot.conn is not None:
                slot.conn.close()
            slot.proc = None
            slot.conn = None
            slot.ready = False
