"""The ``repro serve`` front end: a JSON-line socket over the service.

One asyncio event loop hosts two things:

* a **pump task** that cooperatively steps the
  :class:`~repro.experiments.service.service.CampaignService` scheduler
  (poll workers, supervise leases, lease ready work); and
* a **unix-socket server** speaking one JSON object per line::

      -> {"op": "submit", "specs": [<spec dict>, ...]}
      <- {"ok": true, "accepted": [...], "duplicate": [...],
          "completed": [...]}

      -> {"op": "status"}              <- {"ok": true, "status": {...}}
      -> {"op": "report"}              <- {"ok": true, "report": {...}}
      -> {"op": "ping"}                <- {"ok": true, "pong": true}
      -> {"op": "drain"}               <- {"ok": true, "draining": true}

  Every error is a structured refusal, never a dropped connection:
  ``{"ok": false, "error": "...", "kind": "queue-full" | "draining" |
  "bad-request" | "internal"}``.

SIGTERM/SIGINT trigger a graceful drain: submissions close immediately,
in-flight specs finish, the journal is flushed, the pool stops, the
socket disappears, and the process exits 0.  Queued-but-unleased specs
stay journaled for a ``--resume`` restart — drain loses no accepted
work, it just defers it.

A unix socket (not TCP) keeps the attack surface at filesystem
permissions, matching the repo's no-new-dependencies, local-first
posture.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.campaign import ScenarioSpec
from repro.experiments.service.queue import QueueFullError
from repro.experiments.service.service import (
    CampaignService,
    ServiceDrainingError,
)

__all__ = ["ServiceServer", "request"]

#: Refuse request lines larger than this (64 MiB) instead of buffering
#: unboundedly; a campaign submission of hundreds of specs fits easily.
MAX_REQUEST_BYTES = 64 * 1024 * 1024


class ServiceServer:
    """Socket front end and drain choreography for one service."""

    def __init__(self, service: CampaignService, socket_path: str,
                 pump_seconds: float = 0.02,
                 idle_exit_seconds: Optional[float] = None) -> None:
        self.service = service
        self.socket_path = os.fspath(socket_path)
        self.pump_seconds = pump_seconds
        self.idle_exit_seconds = idle_exit_seconds
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None

    # ----------------------------------------------------------- requests

    def handle_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request to the service (pure, sync)."""
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "status":
            return {"ok": True, "status": self.service.status()}
        if op == "report":
            return {"ok": True, "report": self.service.report().to_dict()}
        if op == "drain":
            self.service.request_drain()
            self._shutdown.set()
            return {"ok": True, "draining": True}
        if op == "submit":
            raw_specs = payload.get("specs")
            if not isinstance(raw_specs, list) or not raw_specs:
                return {"ok": False, "kind": "bad-request",
                        "error": "submit needs a non-empty 'specs' list"}
            try:
                specs = [ScenarioSpec.from_dict(raw) for raw in raw_specs]
                outcome = self.service.submit_specs(specs)
            except QueueFullError as exc:
                return {"ok": False, "kind": "queue-full",
                        "error": str(exc), "capacity": exc.capacity,
                        "depth": exc.depth, "rejected": exc.rejected}
            except ServiceDrainingError as exc:
                return {"ok": False, "kind": "draining", "error": str(exc)}
            except (ConfigurationError, KeyError, TypeError,
                    ValueError) as exc:
                return {"ok": False, "kind": "bad-request",
                        "error": f"{type(exc).__name__}: {exc}"}
            return {"ok": True, **outcome}
        return {"ok": False, "kind": "bad-request",
                "error": f"unknown op {op!r}"}

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response: Dict[str, Any] = {
                        "ok": False, "kind": "bad-request",
                        "error": "request line too large"}
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    response = {"ok": False, "kind": "bad-request",
                                "error": f"undecodable request: {exc}"}
                else:
                    try:
                        response = self.handle_request(payload)
                    except ReproError as exc:  # defensive catch-all
                        response = {"ok": False, "kind": "internal",
                                    "error": str(exc)}
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to salvage
        finally:
            writer.close()

    # ---------------------------------------------------------- main loop

    async def _pump_forever(self) -> None:
        """Step the scheduler until shutdown, then drain in-flight work."""
        idle_since: Optional[float] = None
        loop = asyncio.get_event_loop()
        while not self._shutdown.is_set():
            self.service.pump()
            if self.idle_exit_seconds is not None:
                if self.service.is_idle() and self.service._order:
                    if idle_since is None:
                        idle_since = loop.time()
                    elif loop.time() - idle_since >= self.idle_exit_seconds:
                        self.service.request_drain()
                        self._shutdown.set()
                        break
                else:
                    idle_since = None
            try:
                await asyncio.wait_for(self._shutdown.wait(),
                                       timeout=self.pump_seconds)
            except asyncio.TimeoutError:
                pass
        # Drain: keep pumping (no new leases) until in-flight work lands.
        self.service.request_drain()
        while self.service.pool.busy_slots():
            self.service.pump()
            await asyncio.sleep(self.pump_seconds)
        self.service.pump()  # collect final results/events
        self.service.finish_drain()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._begin_shutdown)
            except (NotImplementedError, RuntimeError):
                signal.signal(signum,
                              lambda _s, _f: self._begin_shutdown())

    def _begin_shutdown(self) -> None:
        self.service.request_drain()
        self._shutdown.set()

    async def serve(self) -> None:
        """Run until drained (signal, ``drain`` op, or idle-exit)."""
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead serve
        self._install_signal_handlers()
        self.service.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path,
            limit=MAX_REQUEST_BYTES)
        pump = asyncio.ensure_future(self._pump_forever())
        try:
            await pump
        finally:
            self._server.close()
            await self._server.wait_closed()
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)

    def run(self) -> None:
        """Blocking entry point for ``repro serve``."""
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


# ------------------------------------------------------------------ client

def request(socket_path: str, payload: Dict[str, Any],
            timeout: float = 30.0) -> Dict[str, Any]:
    """Synchronous one-shot client: send one op, return the response.

    Used by ``repro campaign submit`` / ``status`` — plain blocking
    socket I/O so clients stay free of asyncio.
    """
    import socket as _socket

    with _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        try:
            sock.connect(os.fspath(socket_path))
        except OSError as exc:
            raise ConfigurationError(
                f"cannot reach campaign service at {socket_path!r} "
                f"({exc}); is `repro serve` running?") from exc
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        raw = b"".join(chunks)
        if not raw:
            raise ConfigurationError(
                f"campaign service at {socket_path!r} closed the "
                f"connection without replying")
        response = json.loads(raw.decode("utf-8"))
        if not isinstance(response, dict):
            raise ConfigurationError(
                f"malformed response from campaign service: {response!r}")
        return response
