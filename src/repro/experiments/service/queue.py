"""Bounded submission queue: explicit backpressure, never unbounded memory.

The service accepts campaign submissions while runs are in flight, so an
unbounded queue would let a fast submitter OOM the parent.  This queue
enforces a hard capacity at **submission** time — a submit that does not
fit is rejected atomically with :class:`QueueFullError` (nothing from
the batch is enqueued, the client gets a structured "try later") —
while *internal* requeues (retries, stolen leases) always succeed: work
the service already accepted is never dropped for capacity reasons.

Items carry an attempt counter and an earliest-start time (monotonic
seconds) so retry backoff lives in the queue, not in scheduler state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ReproError


class QueueFullError(ReproError):
    """A submission exceeded the bounded queue's capacity."""

    def __init__(self, capacity: int, depth: int, rejected: int) -> None:
        super().__init__(
            f"submission rejected: queue holds {depth}/{capacity} "
            f"item(s) and cannot take {rejected} more — drain or retry "
            f"after some specs finish")
        self.capacity = capacity
        self.depth = depth
        self.rejected = rejected


@dataclass
class WorkItem:
    """One queued unit of work, by journal key."""

    key: str
    attempt: int = 1
    ready_at: float = 0.0


class BoundedWorkQueue:
    """FIFO of :class:`WorkItem` with a hard submission capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(
                f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: List[WorkItem] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def keys(self) -> List[str]:
        return [item.key for item in self._items]

    def submit(self, keys: Sequence[str]) -> None:
        """Enqueue new submissions, atomically, or raise
        :class:`QueueFullError` without enqueuing any of them."""
        if len(self._items) + len(keys) > self.capacity:
            raise QueueFullError(self.capacity, len(self._items), len(keys))
        self._items.extend(WorkItem(key) for key in keys)

    def requeue(self, key: str, attempt: int, ready_at: float = 0.0) -> None:
        """Put accepted work back (retry / stolen lease): never rejected.

        The item goes to the *front* of its readiness class so stolen
        work is re-leased before fresh submissions.
        """
        self._items.insert(0, WorkItem(key, attempt=attempt,
                                       ready_at=ready_at))

    def pop_ready(self, now: float) -> Optional[WorkItem]:
        """The first item whose backoff has elapsed, or ``None``."""
        for index, item in enumerate(self._items):
            if item.ready_at <= now:
                return self._items.pop(index)
        return None

    def next_ready_at(self) -> Optional[float]:
        """Earliest ``ready_at`` across queued items (``None`` if empty)."""
        if not self._items:
            return None
        return min(item.ready_at for item in self._items)
