"""One run configuration object for the whole experiment layer.

Before PR 6 every layer of the harness grew its own keyword set:
``run_and_measure(sim, attackers, duration_bits, name=..., defenders=...,
log=..., metrics=...)``, ``make_simulator(bus_speed, record, nodes)``,
``ExperimentSetup.run(duration_bits, metrics)`` — the same knobs under
different names, impossible to extend without touching every signature.

:class:`RunConfig` collapses them: one frozen dataclass accepted (as the
keyword-only ``config`` argument) by all three entry points, carrying the
window length, bus speed, recording options, metrics switch and the engine
selection for the fast-forward path.  The old keyword arguments keep
working for one release through a warn-once deprecation shim; passing both
a config and legacy keywords is an error (the call would be ambiguous).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.can.constants import BUS_SPEED_50K
from repro.errors import ConfigurationError

#: Default recording window: the paper records 2 s at 50 kbit/s.
DEFAULT_DURATION_BITS = 100_000

#: Engine selections accepted by :attr:`RunConfig.engine`.
ENGINES = ("fast", "bit")

_WARNED_SHIMS: set = set()


def warn_legacy_kwargs(entry_point: str, kwargs: Any) -> None:
    """Warn (once per entry point per process) about pre-RunConfig keywords."""
    if entry_point not in _WARNED_SHIMS:
        # Dedup set for warnings only: never observable in results.
        _WARNED_SHIMS.add(entry_point)  # repro: noqa[RC301]
        warnings.warn(
            f"{entry_point}({', '.join(sorted(kwargs))}=...) is deprecated; "
            f"pass config=RunConfig(...) instead (legacy keywords are "
            f"removed next release)",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class RunConfig:
    """Everything one experiment run needs, in one place.

    Attributes:
        duration_bits: Simulated window length.
        bus_speed: Bus speed in bit/s (time conversions only).
        record_wire: Keep the full per-bit wire history.
        wire_history_bits: Bound the history to a ring of the last N bits.
        name: Result name; each entry point falls back to its own default
            (``run_and_measure`` uses "experiment", ``ExperimentSetup.run``
            uses the setup's name) when None.
        metrics: Attach a :class:`~repro.obs.probe.BusProbe` and embed its
            summary in the result.  May also be an existing probe instance
            (the caller then owns its lifetime).
        log: Escape hatch — a pre-built :class:`~repro.trace.framelog.FrameLog`
            used instead of deriving one from ``sim.events``.
        engine: "fast" advances through the fast-forward engine
            (:mod:`repro.bus.fastforward`; bit-exact, chunked), "bit" forces
            per-bit stepping.
    """

    duration_bits: int = DEFAULT_DURATION_BITS
    bus_speed: int = BUS_SPEED_50K
    record_wire: bool = True
    wire_history_bits: Optional[int] = None
    name: Optional[str] = None
    metrics: Any = False
    log: Optional[Any] = None
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.duration_bits < 0:
            raise ConfigurationError(
                f"duration must be non-negative, got {self.duration_bits}")
        if self.bus_speed <= 0:
            raise ConfigurationError(
                f"bus speed must be positive, got {self.bus_speed}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")

    def policy(self) -> str:
        """The :meth:`CanBusSimulator.advance` policy this engine maps to."""
        return "auto" if self.engine == "fast" else "off"

    def with_overrides(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def merged_with_legacy(
        self, entry_point: str, legacy: Dict[str, Any], config_given: bool
    ) -> "RunConfig":
        """Fold legacy keyword values into this config (shim helper).

        ``legacy`` maps field names to explicitly-passed legacy values
        (callers filter out the not-passed sentinels).  Combining an
        explicit ``config`` with legacy keywords is ambiguous and raises.
        """
        present = {k: v for k, v in legacy.items() if v is not _UNSET}
        if not present:
            return self
        if config_given:
            raise ConfigurationError(
                f"{entry_point}: pass either config=RunConfig(...) or the "
                f"legacy keywords {sorted(present)}, not both")
        warn_legacy_kwargs(entry_point, present)
        return replace(self, **present)


#: Sentinel for "keyword not passed" in the deprecation shims (None is a
#: meaningful value for several of the legacy keywords).
_UNSET: Any = object()
