"""Chaos scenarios and the degradation sweep (Sec. IV-E, quantified).

The paper argues MichiCAN's false-positive risk under sporadic bit errors
is "near zero" (a node needs 32 consecutive errors to bus-off) and that
its timing tolerates oscillator drift up to the empirical fudge factor.
This module turns both claims into measured curves:

* :func:`chaos_fight_setup` — a defended bus (MichiCAN + legitimate
  periodic sender + DoS attacker) with a seeded ``wire.flip`` fault plan;
* :func:`chaos_benign_setup` — the same bus without the attacker, so any
  counterattack is by definition a false positive;
* :func:`run_degradation_sweep` — runs both scenarios over a grid of
  fault intensities (through the robust campaign engine) and produces
  detection-rate / false-positive-rate / bus-off-time curves vs
  intensity as a schema-versioned :class:`DegradationCurve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.attacks.dos import DosAttacker
from repro.bus.simulator import CanBusSimulator
from repro.faults.apply import apply_fault_plan
from repro.faults.plan import FaultPlan, FaultSpec, FaultWindow
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler

#: Bump when the serialized DegradationCurve layout changes incompatibly.
DEGRADATION_SCHEMA_VERSION = 1

#: The legitimate sender's identifier in the chaos scenarios.
CHAOS_SENDER_ID = 0x123

#: The flood attacker's identifier in the chaos fight.
CHAOS_ATTACK_ID = 0x064


def chaos_fault_plan(
    flip_probability: float,
    seed: int = 0,
    dominant_flips_only: bool = False,
) -> FaultPlan:
    """An always-active ``wire.flip`` plan at the given intensity."""
    return FaultPlan((
        FaultSpec(
            name="chaos_flips",
            kind="wire.flip",
            window=FaultWindow(),
            params={"flip_probability": flip_probability,
                    "dominant_flips_only": dominant_flips_only},
            seed=seed,
        ),
    ))


def _chaos_bus(
    flip_probability: float,
    seed: int,
    bus_speed: int,
    legit_period_bits: int,
) -> "tuple[CanBusSimulator, Any]":
    from repro.core.defense import MichiCanNode
    from repro.experiments.scenarios import DEFENDER_ID, detection_ids_for

    sim = CanBusSimulator(bus_speed=bus_speed)
    defender = sim.add_node(MichiCanNode(
        "defender", detection_ids_for(DEFENDER_ID, [CHAOS_SENDER_ID])))
    sim.add_node(CanNode("sender", scheduler=PeriodicScheduler([
        PeriodicMessage(CHAOS_SENDER_ID, period_bits=legit_period_bits,
                        offset_bits=13)])))
    apply_fault_plan(sim, chaos_fault_plan(flip_probability, seed=seed))
    return sim, defender


def chaos_fight_setup(
    flip_probability: float = 0.001,
    seed: int = 0,
    bus_speed: int = 50_000,
    legit_period_bits: int = 2_000,
    name: str = "chaos_fight",
) -> Any:
    """A defended, noisy bus under flood attack (degradation sweep's fight).

    MichiCAN defends against the DoS attacker while a legitimate periodic
    sender shares the wire; a seeded ``wire.flip`` fault corrupts bits at
    ``flip_probability``.  Detection rate under noise comes from here.
    """
    from repro.experiments.scenarios import ExperimentSetup

    sim, defender = _chaos_bus(
        flip_probability, seed, bus_speed, legit_period_bits)
    attacker = sim.add_node(DosAttacker("attacker", CHAOS_ATTACK_ID))
    return ExperimentSetup(sim, defender, (attacker,), name)


def chaos_benign_setup(
    flip_probability: float = 0.001,
    seed: int = 0,
    bus_speed: int = 50_000,
    legit_period_bits: int = 2_000,
    name: str = "chaos_benign",
) -> Any:
    """The same noisy bus with no attacker: every counterattack is a false
    positive, every legitimate bus-off a Sec. IV-E violation."""
    from repro.experiments.scenarios import ExperimentSetup

    sim, defender = _chaos_bus(
        flip_probability, seed, bus_speed, legit_period_bits)
    return ExperimentSetup(sim, defender, (), name)


# ------------------------------------------------------------------ curve

@dataclass(frozen=True)
class DegradationPoint:
    """Aggregated outcome of all runs at one fault intensity.

    Attributes:
        intensity: The per-bit flip probability of this grid point.
        detection_rate: Counterattacks per attacker frame attempt in the
            fight runs (1.0 = every flood frame was countered).
        false_positive_rate: Counterattacks per legitimate frame attempt
            in the benign runs (0.0 = Sec. IV-E holds).
        legit_busoffs: Bus-offs of non-attacker nodes across fight runs.
        benign_busoffs: Bus-offs of any node across benign runs.
        attacker_busoff_ms: Mean attacker bus-off episode time (fight
            runs that eradicated the attacker), or None.
        runs: Completed runs behind this point.
        failed_runs: Runs that ended as campaign failures.
    """

    intensity: float
    detection_rate: float
    false_positive_rate: float
    legit_busoffs: int
    benign_busoffs: int
    attacker_busoff_ms: Optional[float]
    runs: int
    failed_runs: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "intensity": self.intensity,
            "detection_rate": self.detection_rate,
            "false_positive_rate": self.false_positive_rate,
            "legit_busoffs": self.legit_busoffs,
            "benign_busoffs": self.benign_busoffs,
            "attacker_busoff_ms": self.attacker_busoff_ms,
            "runs": self.runs,
            "failed_runs": self.failed_runs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DegradationPoint":
        return cls(
            intensity=data["intensity"],
            detection_rate=data.get("detection_rate", 0.0),
            false_positive_rate=data.get("false_positive_rate", 0.0),
            legit_busoffs=data.get("legit_busoffs", 0),
            benign_busoffs=data.get("benign_busoffs", 0),
            attacker_busoff_ms=data.get("attacker_busoff_ms"),
            runs=data.get("runs", 0),
            failed_runs=data.get("failed_runs", 0),
        )


@dataclass
class DegradationCurve:
    """Detection / false-positive / bus-off-time curves vs fault intensity."""

    points: List[DegradationPoint] = field(default_factory=list)
    duration_bits: int = 0
    seeds: List[int] = field(default_factory=list)
    schema_version: int = DEGRADATION_SCHEMA_VERSION

    def point_at(self, intensity: float) -> DegradationPoint:
        for point in self.points:
            if point.intensity == intensity:
                return point
        raise KeyError(f"no grid point at intensity {intensity!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "duration_bits": self.duration_bits,
            "seeds": list(self.seeds),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DegradationCurve":
        return cls(
            points=[DegradationPoint.from_dict(p)
                    for p in data.get("points", [])],
            duration_bits=data.get("duration_bits", 0),
            seeds=list(data.get("seeds", [])),
            schema_version=data.get(
                "schema_version", DEGRADATION_SCHEMA_VERSION),
        )

    def render(self) -> str:
        lines = [
            f"degradation sweep: {len(self.points)} intensities x "
            f"{len(self.seeds)} seed(s), {self.duration_bits} bits/run",
            f"{'intensity':>10}  {'detect':>7}  {'false+':>7}  "
            f"{'legit-busoff':>12}  {'busoff-ms':>9}  {'failed':>6}",
        ]
        for point in self.points:
            busoff = (f"{point.attacker_busoff_ms:9.2f}"
                      if point.attacker_busoff_ms is not None else
                      f"{'-':>9}")
            lines.append(
                f"{point.intensity:>10.5f}  {point.detection_rate:>7.3f}  "
                f"{point.false_positive_rate:>7.3f}  "
                f"{point.legit_busoffs + point.benign_busoffs:>12d}  "
                f"{busoff}  {point.failed_runs:>6d}")
        return "\n".join(lines)


def run_degradation_sweep(
    intensities: Sequence[float],
    seeds: Sequence[int] = (0,),
    duration_bits: int = 20_000,
    n_workers: int = 1,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 0,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> DegradationCurve:
    """Sweep fault intensity over the chaos scenarios; return the curves.

    For every intensity x seed the fight and the benign scenario run once
    (with metrics) through the robust campaign engine, so a crashing or
    hanging grid point degrades to a ``failed_runs`` count instead of
    killing the sweep.
    """
    from repro.experiments.campaign import Campaign, ScenarioSpec

    specs = []
    for intensity in intensities:
        for seed in seeds:
            for scenario in ("chaos_fight", "chaos_benign"):
                specs.append(ScenarioSpec(
                    scenario=scenario,
                    params={"flip_probability": intensity},
                    seed=seed,
                    duration_bits=duration_bits,
                    label=f"{scenario}@{intensity:g}#{seed}",
                    metrics=True,
                ))
    report = Campaign(
        specs, n_workers=n_workers, timeout_seconds=timeout_seconds,
        max_retries=max_retries, checkpoint=checkpoint,
    ).run(resume=resume)

    points = []
    for intensity in intensities:
        detection_num = detection_den = 0
        false_num = false_den = 0
        legit_busoffs = benign_busoffs = 0
        busoff_ms: List[float] = []
        runs = 0
        for record in report.records:
            if record.spec.params.get("flip_probability") != intensity:
                continue
            runs += 1
            summary = record.result.metrics
            nodes = summary.nodes if summary is not None else {}
            defender = nodes.get("defender", {})
            if record.spec.scenario == "chaos_fight":
                attacker = nodes.get("attacker", {})
                detection_num += defender.get("counterattacks", 0)
                detection_den += attacker.get("frame_attempts", 0)
                legit_busoffs += sum(
                    node.get("busoffs", 0)
                    for name, node in nodes.items() if name != "attacker")
                stats = record.result.attacker_stats.get("attacker", {})
                if stats.get("count", 0):
                    busoff_ms.append(stats["mean_ms"])
            else:
                sender = nodes.get("sender", {})
                false_num += defender.get("counterattacks", 0)
                false_den += sender.get("frame_attempts", 0)
                benign_busoffs += sum(
                    node.get("busoffs", 0) for node in nodes.values())
        failed = sum(
            1 for failure in report.failures
            if failure.spec.params.get("flip_probability") == intensity)
        points.append(DegradationPoint(
            intensity=intensity,
            detection_rate=(detection_num / detection_den
                            if detection_den else 0.0),
            false_positive_rate=(false_num / false_den
                                 if false_den else 0.0),
            legit_busoffs=legit_busoffs,
            benign_busoffs=benign_busoffs,
            attacker_busoff_ms=(sum(busoff_ms) / len(busoff_ms)
                                if busoff_ms else None),
            runs=runs,
            failed_runs=failed,
        ))
    return DegradationCurve(
        points=points,
        duration_bits=duration_bits,
        seeds=list(seeds),
    )
