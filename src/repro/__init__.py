"""MichiCAN reproduction: bit-level CAN simulation + arbitration-phase defense.

This package reproduces *MichiCAN: Spoofing and Denial-of-Service Protection
using Integrated CAN Controllers* (DSN 2025) in pure Python:

* :mod:`repro.can` / :mod:`repro.node` / :mod:`repro.bus` — a bit-accurate
  CAN 2.0A substrate (frames, CRC-15, stuffing, arbitration, error handling,
  fault confinement, bus-off recovery) replacing the paper's hardware testbed;
* :mod:`repro.core` — MichiCAN itself: detection FSMs, the Algorithm 1
  firmware, pin multiplexing, software synchronization, the defense node;
* :mod:`repro.attacks` / :mod:`repro.baselines` — the threat model and the
  Parrot / IDS comparison baselines;
* :mod:`repro.workloads` / :mod:`repro.dbc` / :mod:`repro.vehicle` —
  synthetic vehicle traffic, communication matrices and the ParkSense
  on-vehicle scenario;
* :mod:`repro.analysis` / :mod:`repro.experiments` — the paper's metrics and
  every evaluation experiment.

Quickstart::

    from repro import CanBusSimulator, CanNode, CanFrame, MichiCanNode

    sim = CanBusSimulator(bus_speed=500_000)
    defender = sim.add_node(MichiCanNode("defender", range(0x100)))
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(0x042, bytes(8)))
    sim.advance_until(lambda s: attacker.is_bus_off, 10_000)
"""

from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.config import IvnConfig, Scenario
from repro.core.defense import MichiCanNode
from repro.core.fsm import DetectionFsm, Verdict
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler

__version__ = "1.0.0"

__all__ = [
    "CanBusSimulator",
    "CanFrame",
    "CanNode",
    "DetectionFsm",
    "IvnConfig",
    "MichiCanNode",
    "PeriodicMessage",
    "PeriodicScheduler",
    "Scenario",
    "Verdict",
    "__version__",
]
