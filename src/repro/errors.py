"""Exception hierarchy for the :mod:`repro` package.

Everything raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Protocol-level CAN errors (bit/stuff/form/ack/crc) are
*events*, not exceptions — see :mod:`repro.can.errors`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrameError(ReproError):
    """An invalid CAN frame was constructed or decoded."""


class ConfigurationError(ReproError):
    """An invalid MichiCAN / simulator configuration was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (internal invariant broke)."""


class DbcError(ReproError):
    """A communication-matrix (DBC) definition or file could not be parsed."""


class SchedulingError(ReproError):
    """A message could not be scheduled for transmission."""


class InjectedFaultError(ReproError):
    """Raised deliberately by a fault injector (chaos testing)."""
