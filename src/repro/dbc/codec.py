"""Signal packing and unpacking (little-endian/Intel layout).

Converts between physical signal values and payload bytes, the way a real
restbus tool or VHAL bridge would when building frames from sensor values.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.dbc.types import Message, Signal
from repro.errors import DbcError


def encode_raw(signal: Signal, payload: bytearray, raw: int) -> None:
    """Write ``raw`` into ``payload`` at the signal's bit position."""
    if not 0 <= raw <= signal.raw_max:
        raise DbcError(
            f"raw value {raw} out of range for {signal.length}-bit "
            f"signal {signal.name}"
        )
    for i in range(signal.length):
        bit = (raw >> i) & 1
        position = signal.start_bit + i
        byte_index, bit_index = divmod(position, 8)
        if byte_index >= len(payload):
            raise DbcError(
                f"signal {signal.name} exceeds a {len(payload)}-byte payload"
            )
        if bit:
            payload[byte_index] |= 1 << bit_index
        else:
            payload[byte_index] &= ~(1 << bit_index)


def decode_raw(signal: Signal, payload: bytes) -> int:
    """Read the raw integer of ``signal`` from ``payload``."""
    raw = 0
    for i in range(signal.length):
        position = signal.start_bit + i
        byte_index, bit_index = divmod(position, 8)
        if byte_index >= len(payload):
            raise DbcError(
                f"signal {signal.name} exceeds a {len(payload)}-byte payload"
            )
        raw |= ((payload[byte_index] >> bit_index) & 1) << i
    return raw


def physical_to_raw(signal: Signal, value: float) -> int:
    """Quantize a physical value with the signal's scale/offset."""
    if signal.scale == 0:
        raise DbcError(f"signal {signal.name} has zero scale")
    raw = round((value - signal.offset) / signal.scale)
    if not 0 <= raw <= signal.raw_max:
        raise DbcError(
            f"physical value {value}{signal.unit} out of range for "
            f"signal {signal.name}"
        )
    return raw


def raw_to_physical(signal: Signal, raw: int) -> float:
    return raw * signal.scale + signal.offset


def encode_message(message: Message, values: Mapping[str, float]) -> bytes:
    """Build a payload from physical signal values (missing signals are 0)."""
    payload = bytearray(message.dlc)
    for name, value in values.items():
        signal = message.signal(name)
        encode_raw(signal, payload, physical_to_raw(signal, value))
    return bytes(payload)


def decode_message(message: Message, payload: bytes) -> Dict[str, float]:
    """Extract all physical signal values from a payload."""
    if len(payload) < message.dlc:
        raise DbcError(
            f"payload of {len(payload)} bytes shorter than DLC {message.dlc} "
            f"of message {message.name}"
        )
    return {
        signal.name: raw_to_physical(signal, decode_raw(signal, payload))
        for signal in message.signals
    }
