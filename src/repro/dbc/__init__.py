"""OpenDBC-like communication-matrix substrate."""

from repro.dbc.codec import (
    decode_message,
    decode_raw,
    encode_message,
    encode_raw,
    physical_to_raw,
    raw_to_physical,
)
from repro.dbc.e2e import (
    E2eMonitor,
    E2eProfile,
    E2eStatus,
    crc8,
    protected_payload_fn,
)
from repro.dbc.parser import parse_dbc, write_dbc
from repro.dbc.types import CommunicationMatrix, Message, Signal

__all__ = [
    "CommunicationMatrix",
    "Message",
    "Signal",
    "E2eMonitor",
    "E2eProfile",
    "E2eStatus",
    "crc8",
    "decode_message",
    "decode_raw",
    "encode_message",
    "encode_raw",
    "parse_dbc",
    "physical_to_raw",
    "protected_payload_fn",
    "raw_to_physical",
    "write_dbc",
]
