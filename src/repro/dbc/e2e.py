"""End-to-end payload protection (AUTOSAR E2E Profile-1 style).

The paper's introduction surveys authentication/integrity mechanisms
(SecOC, MACs) and argues they cannot address *availability* — a DoS attacker
never needs a valid payload.  This module provides the standard in-vehicle
integrity layer so that argument is demonstrable on the simulator: a rolling
counter plus a CRC-8 over the payload, checked per message at the receiver.

Profile layout (classic E2E Profile 1 on an 8-byte payload)::

    byte 0      : CRC-8 (SAE-J1850) over data-ID byte + bytes 1..7
    byte 1 low  : 4-bit rolling counter
    bytes 1..7  : application data (counter nibble shares byte 1)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.can.frame import CanFrame
from repro.errors import ConfigurationError

#: SAE-J1850 CRC-8 polynomial, the AUTOSAR E2E Profile 1 choice.
CRC8_POLY = 0x1D
CRC8_INIT = 0xFF
CRC8_XOR_OUT = 0xFF


def crc8(data: bytes, crc: int = CRC8_INIT) -> int:
    """CRC-8 (SAE J1850) over ``data``."""
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ CRC8_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc ^ CRC8_XOR_OUT


class E2eStatus(enum.Enum):
    """Receiver-side verdict for one protected payload."""

    OK = "ok"
    WRONG_CRC = "wrong-crc"
    REPEATED = "repeated"           # counter did not advance
    WRONG_SEQUENCE = "wrong-sequence"  # counter jumped by more than allowed


@dataclass
class E2eProfile:
    """Protect/check for one message's payloads.

    Args:
        data_id: Per-message constant mixed into the CRC (prevents replaying
            one message's payload as another's).
        max_delta: Largest acceptable counter advance (tolerated losses + 1).
    """

    data_id: int
    max_delta: int = 3

    def __post_init__(self) -> None:
        if not 0 <= self.data_id <= 0xFF:
            raise ConfigurationError("data_id must fit one byte")
        if self.max_delta < 1:
            raise ConfigurationError("max_delta must be at least 1")

    # ---------------------------------------------------------------- protect

    def protect(self, data: bytes, counter: int) -> bytes:
        """Build a protected 8-byte payload from <= 7 bytes of app data."""
        if len(data) > 7:
            raise ConfigurationError("E2E profile 1 carries at most 7 data bytes")
        body = bytearray(7)
        body[:len(data)] = data
        body[0] = (body[0] & 0xF0) | (counter & 0x0F)
        crc = crc8(bytes([self.data_id]) + bytes(body))
        return bytes([crc]) + bytes(body)

    # ------------------------------------------------------------------ check

    def extract_counter(self, payload: bytes) -> int:
        return payload[1] & 0x0F

    def check(self, payload: bytes, last_counter: Optional[int]) -> E2eStatus:
        """Verify one received payload against the previous counter."""
        if len(payload) != 8:
            return E2eStatus.WRONG_CRC
        expected = crc8(bytes([self.data_id]) + payload[1:])
        if payload[0] != expected:
            return E2eStatus.WRONG_CRC
        counter = self.extract_counter(payload)
        if last_counter is None:
            return E2eStatus.OK
        delta = (counter - last_counter) % 16
        if delta == 0:
            return E2eStatus.REPEATED
        if delta > self.max_delta:
            return E2eStatus.WRONG_SEQUENCE
        return E2eStatus.OK


def protected_payload_fn(
    profile: E2eProfile,
    data_fn: Optional[Callable[[int], bytes]] = None,
) -> Callable[[int], bytes]:
    """A :class:`~repro.node.scheduler.PeriodicMessage` payload function
    emitting protected payloads with an auto-advancing counter."""
    def payload(instance: int) -> bytes:
        data = data_fn(instance) if data_fn else bytes(7)
        return profile.protect(data, instance & 0x0F)

    return payload


@dataclass
class E2eMonitor:
    """Receiver-side supervision across messages.

    Attach :meth:`on_frame` to a node's frame callback; per-ID status
    counters accumulate, and :attr:`failed` reports whether any protected
    message has exceeded its error budget.
    """

    profiles: Dict[int, E2eProfile]
    #: Consecutive non-OK results per ID before the signal is distrusted.
    error_budget: int = 3
    _last_counter: Dict[int, int] = field(default_factory=dict)
    _consecutive_errors: Dict[int, int] = field(default_factory=dict)
    statuses: Dict[int, Dict[E2eStatus, int]] = field(default_factory=dict)

    def on_frame(self, time: int, frame: CanFrame) -> Optional[E2eStatus]:
        del time
        profile = self.profiles.get(frame.can_id)
        if profile is None:
            return None
        status = profile.check(frame.data, self._last_counter.get(frame.can_id))
        counts = self.statuses.setdefault(frame.can_id, {})
        counts[status] = counts.get(status, 0) + 1
        if status is E2eStatus.OK:
            self._last_counter[frame.can_id] = profile.extract_counter(frame.data)
            self._consecutive_errors[frame.can_id] = 0
        else:
            self._consecutive_errors[frame.can_id] = (
                self._consecutive_errors.get(frame.can_id, 0) + 1
            )
        return status

    def distrusted_ids(self) -> list:
        """IDs whose consecutive error count exceeded the budget."""
        return sorted(
            can_id
            for can_id, errors in self._consecutive_errors.items()
            if errors >= self.error_budget
        )
