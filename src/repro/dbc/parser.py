"""Minimal DBC text parser and writer.

Supports the subset of the Vector DBC grammar the reproduction needs —
message (``BO_``) and signal (``SG_``) definitions with little-endian
unsigned signals, plus cycle times via the conventional
``BA_ "GenMsgCycleTime"`` attribute — enough to round-trip the synthetic
vehicle matrices and to express OpenDBC-style inputs.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.dbc.types import CommunicationMatrix, Message, Signal
from repro.errors import DbcError

_BO_RE = re.compile(
    r"^BO_\s+(?P<id>\d+)\s+(?P<name>\w+)\s*:\s*(?P<dlc>\d+)\s+(?P<tx>\w+)\s*$"
)
_SG_RE = re.compile(
    r"^\s*SG_\s+(?P<name>\w+)\s*:\s*(?P<start>\d+)\|(?P<len>\d+)@1\+\s*"
    r"\((?P<scale>[-+0-9.eE]+),(?P<offset>[-+0-9.eE]+)\)\s*"
    r"\[(?P<min>[-+0-9.eE]+)\|(?P<max>[-+0-9.eE]+)\]\s*"
    r"\"(?P<unit>[^\"]*)\"\s+\w+\s*$"
)
_CYCLE_RE = re.compile(
    r"^BA_\s+\"GenMsgCycleTime\"\s+BO_\s+(?P<id>\d+)\s+(?P<ms>[0-9.]+)\s*;\s*$"
)


def parse_dbc(text: str, name: str = "bus") -> CommunicationMatrix:
    """Parse DBC ``text`` into a :class:`CommunicationMatrix`.

    Raises:
        DbcError: on malformed BO_/SG_/cycle-time lines or inconsistent
            definitions (e.g. a signal before any message).
    """
    messages: List[dict] = []
    cycle_times: Dict[int, float] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("BO_ "):
            match = _BO_RE.match(stripped)
            if not match:
                raise DbcError(f"line {line_number}: malformed BO_: {stripped!r}")
            can_id = int(match.group("id"))
            messages.append({
                "can_id": can_id,
                "name": match.group("name"),
                "dlc": int(match.group("dlc")),
                "transmitter": match.group("tx"),
                "signals": [],
            })
        elif stripped.startswith("SG_ "):
            if not messages:
                raise DbcError(f"line {line_number}: SG_ before any BO_")
            match = _SG_RE.match(stripped)
            if not match:
                raise DbcError(f"line {line_number}: malformed SG_: {stripped!r}")
            messages[-1]["signals"].append(Signal(
                name=match.group("name"),
                start_bit=int(match.group("start")),
                length=int(match.group("len")),
                scale=float(match.group("scale")),
                offset=float(match.group("offset")),
                minimum=float(match.group("min")),
                maximum=float(match.group("max")),
                unit=match.group("unit"),
            ))
        elif stripped.startswith("BA_ "):
            match = _CYCLE_RE.match(stripped)
            if match:
                cycle_times[int(match.group("id"))] = float(match.group("ms"))
        # Other DBC keywords (VERSION, BU_, CM_, ...) are tolerated silently.

    built = tuple(
        Message(
            can_id=m["can_id"],
            name=m["name"],
            dlc=m["dlc"],
            transmitter=m["transmitter"],
            period_ms=cycle_times.get(m["can_id"], 0.0),
            signals=tuple(m["signals"]),
        )
        for m in messages
    )
    return CommunicationMatrix(name=name, messages=built)


def write_dbc(matrix: CommunicationMatrix) -> str:
    """Serialize a matrix back to DBC text (round-trips with parse_dbc)."""
    lines: List[str] = ['VERSION ""', ""]
    ecus = sorted(matrix.transmitters())
    lines.append("BU_: " + " ".join(ecus))
    lines.append("")
    for message in matrix.messages:
        lines.append(
            f"BO_ {message.can_id} {message.name}: "
            f"{message.dlc} {message.transmitter}"
        )
        for signal in message.signals:
            lines.append(
                f" SG_ {signal.name} : {signal.start_bit}|{signal.length}@1+ "
                f"({signal.scale:g},{signal.offset:g}) "
                f"[{signal.minimum:g}|{signal.maximum:g}] "
                f"\"{signal.unit}\" Vector__XXX"
            )
        lines.append("")
    for message in matrix.messages:
        if message.period_ms > 0:
            lines.append(
                f'BA_ "GenMsgCycleTime" BO_ {message.can_id} '
                f"{message.period_ms:g};"
            )
    return "\n".join(lines) + "\n"
