"""Communication-matrix types: messages and signals, OpenDBC-style.

The paper relies on public communication matrices (OpenDBC [48]) both for
the unique-transmitter assumption in Sec. IV-A and to find the ParkSense IDs
for the on-vehicle attack in Sec. V-F.  This module models the subset needed:
messages with a unique transmitter, a period, and packed physical signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.can.constants import MAX_DLC, MAX_STD_ID
from repro.errors import DbcError


@dataclass(frozen=True)
class Signal:
    """A physical signal packed into a message payload.

    Attributes:
        name: Signal name, unique within its message.
        start_bit: Bit offset of the LSB within the payload (0 = byte 0,
            bit 0, little-endian/Intel layout; the only layout the codec
            implements, which covers the vehicles modelled here).
        length: Width in bits (1..64).
        scale: Physical = raw * scale + offset.
        offset: See ``scale``.
        minimum / maximum: Physical range (informational).
        unit: Physical unit label.
    """

    name: str
    start_bit: int
    length: int
    scale: float = 1.0
    offset: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DbcError("signal name must be non-empty")
        if not 1 <= self.length <= 64:
            raise DbcError(f"signal {self.name}: length {self.length} out of range")
        if self.start_bit < 0 or self.start_bit + self.length > 8 * MAX_DLC:
            raise DbcError(
                f"signal {self.name}: bits [{self.start_bit}, "
                f"{self.start_bit + self.length}) exceed an 8-byte payload"
            )

    @property
    def raw_max(self) -> int:
        return (1 << self.length) - 1


@dataclass(frozen=True)
class Message:
    """A CAN message definition: one row of the communication matrix.

    Attributes:
        can_id: The (unique) identifier.
        name: Message name.
        dlc: Payload length in bytes.
        transmitter: The single ECU allowed to emit this ID (Sec. IV-A).
        period_ms: Cycle time in milliseconds; 0 for event-triggered.
        signals: Packed signals.
    """

    can_id: int
    name: str
    dlc: int
    transmitter: str
    period_ms: float = 0.0
    signals: Tuple[Signal, ...] = field(default=())

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= MAX_STD_ID:
            raise DbcError(f"message {self.name}: CAN ID 0x{self.can_id:X} invalid")
        if not 0 <= self.dlc <= MAX_DLC:
            raise DbcError(f"message {self.name}: DLC {self.dlc} invalid")
        names = [s.name for s in self.signals]
        if len(set(names)) != len(names):
            raise DbcError(f"message {self.name}: duplicate signal names")
        for signal in self.signals:
            if signal.start_bit + signal.length > 8 * self.dlc:
                raise DbcError(
                    f"signal {signal.name} does not fit into "
                    f"{self.dlc}-byte message {self.name}"
                )

    def signal(self, name: str) -> Signal:
        for candidate in self.signals:
            if candidate.name == name:
                return candidate
        raise DbcError(f"message {self.name} has no signal {name!r}")

    def period_bits(self, bus_speed: int) -> int:
        """Cycle time converted to bit times at ``bus_speed``."""
        if self.period_ms <= 0:
            raise DbcError(f"message {self.name} is event-triggered")
        return max(1, round(self.period_ms * 1e-3 * bus_speed))


@dataclass(frozen=True)
class CommunicationMatrix:
    """A bus database: messages keyed by ID, each with a unique transmitter."""

    name: str
    messages: Tuple[Message, ...]

    def __post_init__(self) -> None:
        ids = [m.can_id for m in self.messages]
        if len(set(ids)) != len(ids):
            raise DbcError(f"matrix {self.name}: duplicate CAN IDs")

    def __len__(self) -> int:
        return len(self.messages)

    def by_id(self, can_id: int) -> Message:
        for message in self.messages:
            if message.can_id == can_id:
                return message
        raise DbcError(f"matrix {self.name}: no message with ID 0x{can_id:X}")

    def by_name(self, name: str) -> Message:
        for message in self.messages:
            if message.name == name:
                return message
        raise DbcError(f"matrix {self.name}: no message named {name!r}")

    def transmitters(self) -> Dict[str, List[Message]]:
        """ECU name -> messages it emits."""
        result: Dict[str, List[Message]] = {}
        for message in self.messages:
            result.setdefault(message.transmitter, []).append(message)
        return result

    def ecu_ids(self) -> List[int]:
        """One representative (lowest) CAN ID per transmitting ECU — the 𝔼
        MichiCAN's configuration derives from the matrix."""
        lowest: Dict[str, int] = {}
        for message in self.messages:
            current = lowest.get(message.transmitter)
            if current is None or message.can_id < current:
                lowest[message.transmitter] = message.can_id
        return sorted(lowest.values())

    def all_ids(self) -> List[int]:
        return sorted(m.can_id for m in self.messages)

    def periodic_messages(self) -> List[Message]:
        return [m for m in self.messages if m.period_ms > 0]
