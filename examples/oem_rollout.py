#!/usr/bin/env python3
"""The OEM rollout workflow, end to end (Sec. IV-A).

What a Tier-1 integrating MichiCAN actually does:

1. load the bus's communication matrix (DBC),
2. derive the ordered ECU list 𝔼 and per-ECU detection ranges 𝔻,
3. pick a deployment under a cost budget and check its coverage,
4. generate the C firmware patch for each equipped ECU,
5. verify the chosen deployment end-to-end on the simulated bus.

Run:  python examples/oem_rollout.py
"""

from repro import CanBusSimulator, CanNode, CanFrame, MichiCanNode
from repro.analysis.coverage import deployments_by_budget, plan_coverage
from repro.bus.events import BusOffEntered
from repro.core.codegen import generate_c
from repro.core.config import IvnConfig
from repro.core.fsm import DetectionFsm
from repro.dbc.parser import parse_dbc, write_dbc
from repro.workloads.vehicles import vehicle_buses


def main() -> None:
    # 1. The communication matrix, as shipped (DBC text round-trip).
    matrix = parse_dbc(write_dbc(vehicle_buses("veh_c")[0]), name="veh_c_bus1")
    ivn = IvnConfig(ecu_ids=tuple(matrix.ecu_ids()))
    print(f"matrix: {len(matrix)} messages, {len(ivn)} transmitting ECUs")

    # 2./3. The cost/coverage curve.
    print(f"\n{'budget':>7} {'DoS coverage':>14} {'spoof-protected':>16}")
    for budget, plan in deployments_by_budget(ivn, [1, 2, len(ivn) // 2,
                                                    len(ivn)]):
        print(f"{budget:>7} "
              f"{'full' if plan.full_dos_coverage else 'partial':>14} "
              f"{len(plan.spoof_protected):>13}/{len(ivn)}")

    budget = len(ivn) // 2
    chosen = list(reversed(ivn.ecu_ids))[:budget]
    plan = plan_coverage(ivn, chosen)
    print(f"\nchosen deployment (budget {budget}): "
          f"{[hex(i) for i in plan.equipped]}")
    print(f"  DoS redundancy k = {plan.redundancy}")
    print(f"  unprotected against spoofing: "
          f"{[hex(i) for i in plan.spoof_unprotected][:4]}...")

    # 4. The firmware patch for the most exposed equipped ECU.
    top = plan.equipped[-1]
    fsm = DetectionFsm(ivn.detection_range(top))
    source = generate_c(fsm, symbol_prefix=f"ecu_{top:03x}")
    print(f"\ngenerated C patch for ECU 0x{top:03X}: "
          f"{len(source.splitlines())} lines, {fsm.num_states} FSM states")
    print("   " + "\n   ".join(source.splitlines()[:6]))

    # 5. Verify on the simulated bus: a DoS attacker dies, a legitimate
    #    low-ID message flows.
    sim = CanBusSimulator(bus_speed=500_000)
    for can_id in plan.equipped:
        sim.add_node(MichiCanNode(f"def_{can_id:03x}", ivn.ecu_config(can_id)))
    legit = sim.add_node(CanNode("legit"))
    legit.send(CanFrame(ivn.ecu_ids[0], b"\x01"))  # a legitimate ECU's ID
    attacker = sim.add_node(CanNode("attacker"))
    attack_id = next(iter(sorted(plan.dos_covered.iter_ids())))
    attacker.send(CanFrame(attack_id, bytes(8)))
    sim.advance_until(lambda s: attacker.is_bus_off, 20_000)
    boff = sim.events_of(BusOffEntered)
    print(f"\nverification: attack 0x{attack_id:03X} bused off at "
          f"t={boff[0].time if boff else 'NEVER'}; "
          f"legitimate 0x{ivn.ecu_ids[0]:03X} delivered: "
          f"{not legit.queue.has_pending}")


if __name__ == "__main__":
    main()
