#!/usr/bin/env python3
"""Extension demo: defending 29-bit extended identifiers (CAN 2.0B).

The paper covers CAN 2.0A; this library extends MichiCAN to mixed buses
(J1939 / UDS-style 29-bit traffic alongside 11-bit messages).  The demo

1. builds an interval-backed 29-bit detection FSM over a ~268-million-ID
   range without enumerating anything,
2. shows the extended arbitration rules on the wire (standard beats
   extended on equal base IDs),
3. buses off an extended-ID DoS attacker while legitimate 29-bit
   diagnostics keep flowing.

Run:  python examples/extended_ids.py
"""

from repro import CanBusSimulator, CanNode, CanFrame, MichiCanNode
from repro.bus.events import BusOffEntered, FrameTransmitted
from repro.can.intervals import IdIntervalSet
from repro.core.fsm import DetectionFsm

#: Legitimate 29-bit diagnostic IDs (UDS-over-CAN style).
LEGIT_EXT = [0x18DAF110, 0x18DA10F1]

#: Extended detection range: everything below 0x19000000 except the
#: legitimate diagnostics.
EXT_RANGE = IdIntervalSet.from_range_minus(0, 0x18FFFFFF, excluded=LEGIT_EXT)


def fsm_scale() -> None:
    fsm = DetectionFsm(EXT_RANGE, id_bits=29)
    stats = fsm.stats(samples=2_000)
    print("29-bit detection FSM")
    print(f"  identifier space ..... 2^29 = {1 << 29:,}")
    print(f"  detection-set size ... {len(EXT_RANGE):,}")
    print(f"  FSM states ........... {fsm.num_states} "
          "(interval arithmetic, no enumeration)")
    print(f"  worst decision depth . {stats.max_depth} of 29 bits\n")


def arbitration_rules() -> None:
    sim = CanBusSimulator()
    x, y = sim.add_node(CanNode("x")), sim.add_node(CanNode("y"))
    x.send(CanFrame(0x100 << 18, extended=True))
    y.send(CanFrame(0x100))
    sim.advance(700)
    order = [("extended" if e.frame.extended else "standard")
             for e in sim.events_of(FrameTransmitted)]
    print("equal base ID 0x100, simultaneous start:")
    print(f"  wire order: {order[0]} first, then {order[1]} "
          "(dominant RTR beats recessive SRR)\n")


def defended_mixed_bus() -> None:
    sim = CanBusSimulator(bus_speed=500_000)
    defender = sim.add_node(MichiCanNode(
        "defender", range(0x100), extended_detection_ids=EXT_RANGE))
    diag = sim.add_node(CanNode("diagnostics"))
    attacker = sim.add_node(CanNode("attacker"))

    diag.send(CanFrame(LEGIT_EXT[0], b"\x02\x10\x01", extended=True))
    attacker.send(CanFrame(0x00001234, bytes(8), extended=True))

    sim.advance_until(lambda s: attacker.is_bus_off, 20_000)
    boff = sim.events_of(BusOffEntered)[0]
    detection = defender.detections[0]
    print("mixed-bus defense:")
    print(f"  extended attack 0x00001234 flagged at 29-bit-FSM bit "
          f"{detection.decision_bit} (extended={detection.extended})")
    print(f"  attacker bus-off at t={boff.time} "
          f"({sim.milliseconds(boff.time):.2f} ms)")
    sim.advance(5_000)
    delivered = [e.frame for e in sim.events_of(FrameTransmitted)
                 if e.node == "diagnostics"]
    print(f"  legitimate UDS frame delivered: "
          f"{delivered[0] if delivered else 'NOT DELIVERED'}")


def main() -> None:
    fsm_scale()
    arbitration_rules()
    defended_mixed_bus()


if __name__ == "__main__":
    main()
