#!/usr/bin/env python3
"""MichiCAN vs Parrot: eradication speed and bus-load cost (Sec. V-E).

Both defenses face the same periodic spoofing attacker.  The example
measures, for each system:

* time until the attacker is forced into bus-off,
* bus occupancy while the defense is active,
* collateral damage (defender error-counter churn / controller resets).

Run:  python examples/parrot_vs_michican.py
"""

from repro.analysis.busload import parrot_flooding_overhead
from repro.experiments.scenarios import (
    michican_defense_setup,
    parrot_defense_setup,
)
from repro.trace.recorder import LogicTrace


def main() -> None:
    attack_period = 1_000  # bits between spoofed instances

    # --- MichiCAN ----------------------------------------------------------
    michican = michican_defense_setup(attack_period_bits=attack_period)
    m_time = michican.sim.advance_until(
        lambda s: michican.attackers[0].is_bus_off, 200_000)
    m_trace = LogicTrace(michican.sim.wire.history)
    m_busy = m_trace.busy_fraction()

    # --- Parrot -------------------------------------------------------------
    parrot = parrot_defense_setup(attack_period_bits=attack_period)
    p_time = parrot.sim.advance_until(
        lambda s: parrot.attacker.is_bus_off, 800_000)
    p_trace = LogicTrace(parrot.sim.wire.history)
    p_busy = p_trace.busy_fraction(start=2_000)  # post-detection phase

    # --- report --------------------------------------------------------------
    speed = michican.sim.bus_speed
    print(f"attacker: periodic spoof of 0x173 every {attack_period} bits "
          f"at {speed // 1000} kbit/s\n")
    print(f"{'':24} {'MichiCAN':>12} {'Parrot':>12}")
    print(f"{'bus-off after (bits)':24} {m_time:>12} {p_time:>12}")
    print(f"{'bus-off after (ms)':24} {m_time / speed * 1e3:>12.1f} "
          f"{p_time / speed * 1e3:>12.1f}")
    print(f"{'bus busy while defending':24} {m_busy:>11.1%} {p_busy:>11.1%}")
    print(f"{'defender TEC damage':24} {'none':>12} "
          f"{f'{parrot.parrot.controller_resets} resets':>12}")
    print(f"{'counter frames flooded':24} {0:>12} "
          f"{parrot.parrot.counter_frames_sent:>12}")

    print(f"\nParrot's theoretical flooding overhead: "
          f"{parrot_flooding_overhead():.1%} (paper: 125/128 ~ 97.7%)")
    print(f"MichiCAN eradicates the attacker {p_time / m_time:.0f}x faster "
          f"with zero standing bus load.")


if __name__ == "__main__":
    main()
