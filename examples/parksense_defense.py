#!/usr/bin/env python3
"""The on-vehicle experiment (Sec. V-F): targeted DoS against ParkSense.

Replays a 2017-Pacifica-like communication matrix, launches a targeted DoS
on CAN ID 0x25F from a simulated OBD-II dongle (starving the park-assist
messages at 0x260+), and runs the scenario twice:

1. without MichiCAN — the cluster latches
   "PARKSENSE UNAVAILABLE SERVICE REQUIRED" and automatic braking is lost;
2. with a MichiCAN dongle on the same OBD-II splitter — the attacker is
   repeatedly bused off and the feature never goes down.

Run:  python examples/parksense_defense.py
"""

from repro.experiments.scenarios import parksense_experiment
from repro.workloads.vehicles import PARKSENSE_ATTACK_ID, PARKSENSE_IDS


def describe(label, outcome) -> None:
    feature = outcome.feature
    print(f"--- {label} " + "-" * (60 - len(label)))
    print(f"  feature state ........ {feature.state.value}")
    print(f"  automatic braking .... "
          f"{'available' if feature.automatic_braking_available else 'LOST'}")
    if outcome.dashboard:
        for message in outcome.dashboard:
            print(f"  cluster shows ........ \"{message}\"")
    else:
        print("  cluster shows ........ (no faults)")
    if outcome.downtime_windows:
        for start, end in outcome.downtime_windows:
            end_text = f"{end}" if end is not None else "still down"
            print(f"  downtime ............. bits {start} -> {end_text}")
    print(f"  attacker bus-offs .... {outcome.attacker_busoff_count}")
    print()


def main() -> None:
    print("ParkSense protection scenario (Sec. V-F)")
    print(f"  supervised IDs : {[hex(i) for i in PARKSENSE_IDS]}")
    print(f"  attack ID      : {hex(PARKSENSE_ATTACK_ID)} "
          "(one below the lowest ParkSense ID)\n")

    undefended = parksense_experiment(with_michican=False, duration_bits=400_000)
    describe("WITHOUT MichiCAN", undefended)

    defended = parksense_experiment(with_michican=True, duration_bits=400_000)
    describe("WITH MichiCAN on the OBD-II splitter", defended)

    assert not undefended.feature.available
    assert defended.feature.available
    print("=> the DoS attack never disables park assist while MichiCAN is "
          "connected (paper Sec. V-F).")


if __name__ == "__main__":
    main()
