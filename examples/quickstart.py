#!/usr/bin/env python3
"""Quickstart: watch MichiCAN bus-off a DoS attacker, bit by bit.

Builds a three-node 500 kbit/s CAN bus — a MichiCAN-equipped ECU, a benign
ECU with periodic traffic, and a compromised ECU flooding a high-priority
ID — and shows detection, the counterattack and the attacker's forced
bus-off, followed by normal traffic resuming.

Run:  python examples/quickstart.py
"""

from repro import CanBusSimulator, CanNode, MichiCanNode, PeriodicMessage, PeriodicScheduler
from repro.attacks import TraditionalDosAttacker
from repro.bus.events import (
    AttackDetected,
    BusOffEntered,
    CounterattackStarted,
    FrameTransmitted,
)
from repro.core.config import IvnConfig
from repro.trace.framelog import FrameLog


def main() -> None:
    # --- offline configuration (the OEM step) -----------------------------
    ivn = IvnConfig(ecu_ids=(0x0A0, 0x173, 0x2F0))
    defender_config = ivn.ecu_config(0x173)
    print(f"IVN 𝔼 = {[hex(i) for i in ivn.ecu_ids]}")
    print(f"defender 0x173 detection range |𝔻| = {len(defender_config.detection_ids)}")

    # --- wire the bus ------------------------------------------------------
    sim = CanBusSimulator(bus_speed=500_000)
    defender = sim.add_node(MichiCanNode("defender", defender_config))
    benign = sim.add_node(CanNode("benign_ecu", scheduler=PeriodicScheduler(
        [PeriodicMessage(0x0A0, period_bits=2_000)])))
    attacker = sim.add_node(TraditionalDosAttacker("attacker"))

    # --- run until the attacker is dead ------------------------------------
    sim.advance_until(lambda s: attacker.is_bus_off, limit=20_000)

    detection = sim.events_of(AttackDetected)[0]
    counter = sim.events_of(CounterattackStarted)[0]
    busoff = sim.events_of(BusOffEntered)[0]
    print(f"\nt={detection.time:>6}  attack detected   "
          f"(ID 0x{detection.target_id:03X}, FSM decided at ID bit "
          f"{detection.detection_bit})")
    print(f"t={counter.time:>6}  counterattack     (6 dominant bits after the RTR)")
    print(f"t={busoff.time:>6}  attacker BUS-OFF  (TEC={busoff.tec}, "
          f"after 32 destroyed attempts)")
    ms = sim.milliseconds(busoff.time)
    print(f"\nbus-off time: {busoff.time + 14} bits = {ms:.2f} ms at 500 kbit/s")

    # --- benign traffic resumes --------------------------------------------
    before = len([e for e in sim.events_of(FrameTransmitted) if e.node == "benign_ecu"])
    sim.advance(10_000)
    after = len([e for e in sim.events_of(FrameTransmitted) if e.node == "benign_ecu"])
    print(f"benign frames delivered: {before} during the attack, "
          f"{after - before} in the next 10k bits — traffic restored")

    print("\nlast timeline entries:")
    log = FrameLog(sim.events)
    for line in log.render_timeline(["attacker"]).splitlines()[-5:]:
        print(" ", line)


if __name__ == "__main__":
    main()
