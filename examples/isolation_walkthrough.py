#!/usr/bin/env python3
"""Walkthrough of the Sec. III isolation architecture (Fig. 3).

MichiCAN's own weapon — bit-level pin access — must never fall into the
hands of an attacker who compromises the exposed OS.  This demo plays the
attack out on the hypervisor model: the IVI VM is taken over, tries raw
injection and pin-multiplexer access (denied), and is left with only the
whitelisted, range-checked VHAL property surface.

Run:  python examples/isolation_walkthrough.py
"""

from repro.dbc.types import CommunicationMatrix, Message, Signal
from repro.isolation.model import (
    EcuSoftwareStack,
    IsolationViolation,
    PropertyMapping,
)


def build_matrix() -> CommunicationMatrix:
    return CommunicationMatrix("body", (
        Message(0x2E0, "HVAC_CONTROL", 4, "hvac", period_ms=100, signals=(
            Signal("fan_speed", 0, 4, 1, 0, 0, 7),
        )),
        Message(0x1B0, "BRAKE_CMD", 8, "brakes", period_ms=10, signals=(
            Signal("pressure", 0, 16, 0.01, 0, 0, 500, "bar"),
        )),
    ))


def main() -> None:
    sent = []
    stack = EcuSoftwareStack.hypervisor(
        build_matrix(),
        [PropertyMapping("hvac_fan_speed", 0x2E0, "fan_speed", 0, 7)],
        transmit=sent.append,
    )
    print(f"architecture: {stack.name}")
    print(f"domains: {', '.join(stack.domains)}")
    print(f"VHAL exposes: {stack.bridge.allowed_properties}\n")

    ivi = stack.compromise("ivi")
    print("[attacker] IVI VM compromised (remote, per the threat model)")

    print("[attacker] attempting raw CAN injection of 0x000 ...")
    try:
        from repro.can.frame import CanFrame
        stack.service.send(ivi, CanFrame(0x000, bytes(8)))
    except IsolationViolation as error:
        print(f"  DENIED: {error}")

    print("[attacker] attempting to seize the pin multiplexer ...")
    try:
        stack.service.acquire_pinmux(ivi)
    except IsolationViolation as error:
        print(f"  DENIED: {error}")

    print("[attacker] attempting to command the brakes via VHAL ...")
    try:
        stack.bridge.write_property(ivi, "brake_pressure", 300)
    except IsolationViolation as error:
        print(f"  DENIED: {error}")

    print("[attacker] falling back to the only exposed surface ...")
    frame = stack.bridge.write_property(ivi, "hvac_fan_speed", 7)
    print(f"  allowed (nuisance-level): {frame} -> sent by the RTOS VM")

    print(f"\nframes that actually reached the controller: {len(sent)} "
          f"({sent[0]})")
    print("audit log:")
    for caller, prop, value, allowed in stack.bridge.audit_log:
        verdict = "ok" if allowed else "DENIED"
        print(f"  {caller}: {prop}={value} -> {verdict}")


if __name__ == "__main__":
    main()
