#!/usr/bin/env python3
"""Inspect MichiCAN detection FSMs built from a communication matrix.

Loads a synthetic vehicle bus (as a DBC round-trip, the way an OEM would
consume OpenDBC), derives the ordered ECU list 𝔼, builds each ECU's
detection FSM, and reports sizes, detection latencies, and a waveform of an
actual counterattack sampled from the wire.

Run:  python examples/fsm_inspector.py
"""

from repro import CanBusSimulator, CanNode, CanFrame, MichiCanNode
from repro.analysis.latency import run_latency_study
from repro.core.config import IvnConfig, Scenario
from repro.core.fsm import DetectionFsm
from repro.dbc.parser import parse_dbc, write_dbc
from repro.trace.recorder import LogicTrace
from repro.workloads.vehicles import vehicle_buses


def inspect_fsms() -> None:
    matrix, _ = vehicle_buses("veh_b")
    # Round-trip through DBC text, like consuming a published matrix.
    matrix = parse_dbc(write_dbc(matrix), name=matrix.name)
    ecu_ids = matrix.ecu_ids()
    ivn = IvnConfig(ecu_ids=tuple(ecu_ids))
    print(f"bus {matrix.name}: {len(matrix)} messages, "
          f"{len(ecu_ids)} transmitting ECUs")
    print(f"\n{'ECU':>6} {'|D|':>5} {'FSM states':>11} "
          f"{'mean detect bit':>16} {'worst':>6}")
    for config in ivn.ecu_configs():
        fsm = DetectionFsm(config.detection_ids)
        stats = fsm.stats()
        print(f"0x{config.can_id:03X}  {len(config.detection_ids):>5} "
              f"{stats.states:>11} {stats.mean_malicious_depth:>16.2f} "
              f"{stats.max_depth:>6}")

    light = IvnConfig(ecu_ids=tuple(ecu_ids), scenario=Scenario.LIGHT)
    full_states = sum(DetectionFsm(c.detection_ids).num_states
                      for c in ivn.ecu_configs())
    light_states = sum(DetectionFsm(c.detection_ids).num_states
                       for c in light.ecu_configs())
    print(f"\nfull scenario total FSM states:  {full_states}")
    print(f"light scenario total FSM states: {light_states} "
          f"({light_states / full_states:.0%} of full)")


def latency_summary() -> None:
    report = run_latency_study(num_fsms=400, seed=2025)
    print(f"\nrandom-FSM latency study ({report.fsms} FSMs, "
          f"{report.malicious_samples} malicious samples):")
    print(f"  detection rate ....... {report.detection_rate:.1%} (paper: 100%)")
    print(f"  mean detection bit ... {report.mean_detection_bit:.2f} (paper: 9)")
    print(f"  false positives ...... {report.false_positive_rate:.1%}")
    print("  histogram:")
    for bit in sorted(report.histogram):
        bar = "#" * max(1, report.histogram[bit] * 60 // report.detected)
        print(f"    bit {bit:>2}: {bar}")


def counterattack_waveform() -> None:
    print("\ncounterattack on the wire (0x064 flood, '_'=dominant, "
          "'^'=recessive):")
    sim = CanBusSimulator(bus_speed=500_000)
    sim.add_node(MichiCanNode("defender", range(0x100)))
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(0x064, bytes(8)))
    sim.advance(80)
    print(LogicTrace(sim.wire.history).render(end=80))
    print("  ^ SOF + ID 0x064, then MichiCAN's 6-bit dominant pulse, the "
        "attacker's error flag and the delimiter")


def main() -> None:
    inspect_fsms()
    latency_summary()
    counterattack_waveform()


if __name__ == "__main__":
    main()
