#!/usr/bin/env python3
"""Concurrent-attacker sweep (Sec. V-C): how many attackers can MichiCAN
eradicate before the bus misses safety deadlines?

Runs the Experiment-5-style scenario with A = 1..5 flooding attackers,
measures the total fight length, and renders the Fig. 6-style intertwined
retransmission pattern for A = 2.

Run:  python examples/multi_attacker_dos.py
"""

from repro.analysis.busoff_theory import busoff_ms
from repro.experiments.config import RunConfig
from repro.experiments.scenarios import (
    experiment_5,
    multi_attacker_experiment,
    total_fight_bits,
)
from repro.trace.framelog import FrameLog

#: 10 ms minimum deadline at 500 kbit/s = 5000 bits (the paper's bound).
DEADLINE_BITS = 5_000


def sweep() -> None:
    print(f"{'A':>3} {'total fight (bits)':>20} {'at 50 kbit/s':>14} "
          f"{'verdict':>22}")
    for attackers in range(1, 6):
        result = multi_attacker_experiment(attackers).run(
            config=RunConfig(duration_bits=24_000))
        total = total_fight_bits(result)
        verdict = ("OK" if total <= DEADLINE_BITS
                   else "deadline miss — bus inoperable")
        print(f"{attackers:>3} {total:>20} {busoff_ms(total, 50_000):>11.1f} ms "
              f"{verdict:>22}")
    print("\npaper anchors: A=3 -> 3515 bits, A=4 -> 4660 bits, "
          "A>=5 infeasible\n")


def fig6_pattern() -> None:
    print("Fig. 6 pattern — two attackers (0x066 brown / 0x067 yellow):")
    setup = experiment_5()
    result = setup.run(config=RunConfig(duration_bits=4_500))
    log = FrameLog(setup.sim.events)
    interesting = [e for e in log.timeline(
        [a.name for a in setup.attackers])
        if e.kind in ("start", "bus-off", "error")]
    # Show the tail where the retransmissions toggle and both die.
    for entry in interesting[-28:]:
        ident = f" 0x{entry.can_id:03X}" if entry.can_id is not None else ""
        print(f"  t={entry.time:>6} {entry.node:<14} {entry.kind:<8}{ident}")
    for attacker, episodes in result.episodes.items():
        if episodes:
            print(f"  {attacker}: bus-off after "
                  f"{episodes[0].duration_bits} bits "
                  f"({episodes[0].duration_ms(50_000):.1f} ms)")


def main() -> None:
    sweep()
    fig6_pattern()


if __name__ == "__main__":
    main()
