"""Table II: empirical bus-off times for all six experiments.

Paper (50 kbit/s, defender 0x173):

    Exp  attacker      restbus  mean     std     max
    1    0x173         yes      24.6 ms  2.64    58.6
    2    0x173         no       24.2 ms  0.27    25.2
    3    0x064         yes      25.1 ms  1.39    38.3
    4    0x064         no       24.9 ms  0.45    25.2
    5    0x066+0x067   no       39.0/35.4 ms
    6    0x050/0x051   no       24.9 ms  0.01    25.4

Regenerate:  pytest benchmarks/bench_table2_busoff.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.experiments.scenarios import EXPERIMENTS

PAPER_MEANS_MS = {1: 24.6, 2: 24.2, 3: 25.1, 4: 24.9, 6: 24.9}
PAPER_EXP5_MS = {"attacker_066": 39.0, "attacker_067": 35.4}

DURATION_BITS = 100_000  # the paper's 2 s recording at 50 kbit/s


@pytest.mark.parametrize("number", sorted(EXPERIMENTS))
def test_table2_experiment(benchmark, number):
    result = benchmark.pedantic(
        lambda: EXPERIMENTS[number]().run(DURATION_BITS),
        rounds=1, iterations=1,
    )
    rows = []
    if number == 5:
        for attacker, paper_mean in PAPER_EXP5_MS.items():
            stats = result.attacker_stats[attacker]
            rows.append((f"{attacker} mean bus-off (ms)", paper_mean,
                         stats["mean_ms"]))
            rows.append((f"{attacker} max bus-off (ms)", "-",
                         stats["max_ms"]))
            # Shape: intertwined two-attacker bus-off grows ~50 %, not 2x.
            assert 1.1 * 25.0 <= stats["mean_ms"] <= 1.9 * 25.0
    else:
        stats = result.attacker_stats["attacker"]
        paper_mean = PAPER_MEANS_MS[number]
        rows.append(("mean bus-off (ms)", paper_mean, stats["mean_ms"]))
        rows.append(("std bus-off (ms)", "-", stats["std_ms"]))
        rows.append(("max bus-off (ms)", "-", stats["max_ms"]))
        assert stats["mean_ms"] == pytest.approx(paper_mean, rel=0.25)
    rows.append(("bus-off episodes in window", "multiple", len(
        [e for eps in result.episodes.values() for e in eps])))
    rows.append(("counterattacks", "-", result.counterattacks))
    report(f"Table II — Experiment {number}", rows)
