"""Lint cache speedup: cold parse-everything vs warm mtime-validated hits.

Runs ``lint_paths`` over ``src/`` twice against the same on-disk cache —
once cold (empty cache: every file is parsed, summarized, and linted) and
once warm (every entry validates by ``(mtime_ns, size)``; findings are
replayed from the cache without re-parsing) — and records both wall times
to ``BENCH_lint.json`` in the repo root.

The contract this bench enforces: the warm path of ``repro lint`` must be
at least ``MIN_SPEEDUP``x faster than the cold path, so incremental lint
runs (and ``--changed`` loops) stay interactive as the tree grows.

Regenerate:  pytest benchmarks/bench_lint_speed.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.analysis.callgraph import SUMMARY_SCHEMA_VERSION, AnalysisCache
from repro.analysis.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_lint.json"

#: Warm-cache lint must beat a cold run by at least this factor.
MIN_SPEEDUP = 3.0

ROUNDS = 3


def _lint_once(cache_path, deep=False):
    cache = AnalysisCache(str(cache_path))
    started = time.perf_counter()
    report_obj = lint_paths([str(REPO_ROOT / "src")], cache=cache,
                            deep=deep)
    wall = time.perf_counter() - started
    cache.save()
    assert report_obj.ok, report_obj.render_text()
    return wall, report_obj.files_checked


def _best_cold(rounds, tmp_path):
    best, files = float("inf"), 0
    for index in range(rounds):
        wall, files = _lint_once(tmp_path / f"cold-{index}.json")
        best = min(best, wall)
    return best, files


def _best_warm(rounds, tmp_path):
    cache_path = tmp_path / "warm.json"
    _lint_once(cache_path)  # populate
    best = float("inf")
    for _ in range(rounds):
        wall, _ = _lint_once(cache_path)
        best = min(best, wall)
    return best


def test_warm_cache_lint_speedup(benchmark, quick, tmp_path):
    rounds = 1 if quick else ROUNDS

    cold, files = _best_cold(rounds, tmp_path)
    warm = _best_warm(rounds, tmp_path)
    benchmark.pedantic(lambda: _lint_once(tmp_path / "warm.json"),
                       rounds=1, iterations=1)

    speedup = cold / warm if warm else float("inf")

    # The deep path re-runs the interprocedural rules (call graph, effect
    # and concurrency analyses) every time, but a warm cache still spares
    # it the parse+summarize pass — measure both so the summary-schema
    # bumps (v3 added spawn/lock/handler/blocking facts) show up here
    # instead of silently eroding incremental lint.
    deep_cold, _ = _lint_once(tmp_path / "deep-cold.json", deep=True)
    deep_cache = tmp_path / "deep-warm.json"
    _lint_once(deep_cache, deep=True)  # populate
    deep_warm, _ = _lint_once(deep_cache, deep=True)

    if not quick:
        # Merge: bench_purity_speed.py records its block into the same
        # file under "purity", and each bench must survive the other.
        try:
            payload = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = {}
        payload.update({
            "files_checked": files,
            "rounds": rounds,
            "cpu_count": os.cpu_count() or 1,
            "cold_seconds": round(cold, 4),
            "warm_seconds": round(warm, 4),
            "warm_speedup": round(speedup, 2),
            "summary_schema_version": SUMMARY_SCHEMA_VERSION,
            "deep": {
                "cold_seconds": round(deep_cold, 4),
                "warm_seconds": round(deep_warm, 4),
                "warm_speedup": round(deep_cold / deep_warm
                                      if deep_warm else float("inf"), 2),
            },
        })
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Lint cache speedup (src/)", [
        ("files checked", "-", files),
        ("cold run (s)", "-", f"{cold:.3f}"),
        ("warm run (s)", "-", f"{warm:.3f}"),
        ("speedup", f">={MIN_SPEEDUP:.0f}x", f"{speedup:.1f}x"),
        ("deep cold (s)", "-", f"{deep_cold:.3f}"),
        ("deep warm (s)", "-", f"{deep_warm:.3f}"),
    ], notes=f"recorded to {BENCH_FILE.name}")

    assert speedup >= MIN_SPEEDUP
    # Warming the cache must never make the deep path slower (the graph
    # rules re-run either way; the parse pass is what the cache spares).
    assert deep_warm <= deep_cold * 1.10
