"""Table I: comparison of countermeasures against CAN DoS.

The qualitative matrix is data (:mod:`repro.baselines.comparison`); for the
three systems this reproduction implements — IDS, Parrot and MichiCAN — the
bench *measures* the claims on the simulator:

* real-time capability: detection latency in bit times,
* eradication: does the attacker end up bus-off,
* traffic overhead: bus occupancy attributable to the defense.

Regenerate:  pytest benchmarks/bench_table1_comparison.py --benchmark-only -s
"""

from conftest import report
from repro.baselines.comparison import TABLE_I, lookup, render_table
from repro.baselines.ids import FrequencyIds, IdsConfig
from repro.bus.events import AttackDetected, FrameStarted
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.attacks.dos import DosAttacker
from repro.experiments.scenarios import (
    michican_defense_setup,
    parrot_defense_setup,
)
from repro.trace.recorder import LogicTrace


def test_table1_matrix(benchmark):
    text = benchmark(render_table)
    print()
    print(text)
    assert len(TABLE_I) == 7
    assert lookup("MichiCAN").eradication.value == "yes"


def test_table1_measured_ids_row(benchmark):
    """IDS: detects (after a full frame), never eradicates."""
    def run():
        sim = CanBusSimulator(bus_speed=50_000)
        ids = sim.add_node(FrequencyIds("ids", IdsConfig(
            legitimate_ids=frozenset({0x173}))))
        attacker = sim.add_node(DosAttacker("attacker", 0x064))
        sim.run(20_000)
        first_start = sim.events_of(FrameStarted)[0].time
        return ids.first_alert_time(0x064) - first_start, attacker.is_bus_off

    latency, eradicated = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table I — IDS row, measured", [
        ("detection latency (bits)", ">= full frame (~111)", latency),
        ("eradicates the attacker", "no", eradicated),
    ])
    assert latency >= 100
    assert not eradicated


def test_table1_measured_michican_row(benchmark):
    """MichiCAN: real-time (flags inside the ID field), eradicates, no
    standing traffic overhead."""
    def run():
        sim = CanBusSimulator(bus_speed=50_000)
        defender = sim.add_node(MichiCanNode("defender", range(0x100)))
        attacker = sim.add_node(DosAttacker("attacker", 0x064))
        sim.run_until(lambda s: attacker.is_bus_off, 10_000)
        detection = sim.events_of(AttackDetected)[0]
        first_start = sim.events_of(FrameStarted)[0].time
        return detection.time - first_start, attacker.is_bus_off

    latency, eradicated = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table I — MichiCAN row, measured", [
        ("detection latency (bits)", "< 14 (inside the ID)", latency),
        ("eradicates the attacker", "yes", eradicated),
        ("standing traffic overhead", "none", "0 defense frames"),
    ])
    assert latency <= 14
    assert eradicated


def test_table1_measured_parrot_row(benchmark):
    """Parrot: frame-level detection, eradicates slowly, very high
    traffic overhead while armed."""
    def run():
        setup = parrot_defense_setup()
        hit = setup.sim.run_until(lambda s: setup.attacker.is_bus_off, 400_000)
        busy = LogicTrace(setup.sim.wire.history).busy_fraction(start=2_000)
        return hit, busy, setup.parrot.counter_frames_sent

    hit, busy, frames = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table I — Parrot row, measured", [
        ("eradicates the attacker", "yes (slowly)", hit is not None),
        ("bus occupancy while armed", "~97.7%", f"{busy:.1%}"),
        ("defense frames flooded", "many", frames),
    ])
    assert hit is not None
    assert busy > 0.9
    assert frames > 100


def test_table1_measured_cansentry_row(benchmark):
    """CANSentry: blocks the guarded ECU's injections at negligible bus
    overhead, but adds store-and-forward latency and cannot touch attackers
    on unguarded ECUs."""
    from repro.baselines.cansentry import (
        CanSentryFirewall,
        GuardedEcu,
        SentryPolicy,
    )
    from repro.can.frame import CanFrame
    from repro.node.controller import CanNode

    def run():
        sim = CanBusSimulator(bus_speed=50_000)
        firewall = sim.add_node(CanSentryFirewall(
            "sentry", SentryPolicy([0x173])))
        guarded = GuardedEcu(firewall)
        sim.add_node(CanNode("listener"))
        unguarded = sim.add_node(DosAttacker("unguarded_attacker", 0x064,
                                             limit=5))
        guarded.send(0, CanFrame(0x173, b"\x01"))        # legitimate
        guarded.send(500, CanFrame(0x000, bytes(8)))     # injection attempt
        sim.run(8_000)
        from repro.bus.events import FrameTransmitted
        tx = sim.events_of(FrameTransmitted)
        legit = next(e for e in tx if e.frame.can_id == 0x173)
        return {
            "latency": legit.started_at,
            "blocked": len(firewall.blocked),
            "unguarded_frames": sum(1 for e in tx if e.frame.can_id == 0x064),
            "unguarded_busoff": unguarded.is_bus_off,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table I — CANSentry row, measured", [
        ("guarded injection blocked", "yes", result["blocked"] == 1),
        ("added latency for legitimate frames (bits)", ">= 125 (one frame)",
         result["latency"]),
        ("unguarded attacker stopped", "no (backward-compat gap)",
         result["unguarded_busoff"]),
        ("unguarded attack frames delivered", "> 0",
         result["unguarded_frames"]),
    ])
    assert result["blocked"] == 1
    assert result["latency"] >= 125
    assert not result["unguarded_busoff"]
    assert result["unguarded_frames"] > 0
