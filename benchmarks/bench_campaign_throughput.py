"""Campaign engine throughput: serial vs parallel wall-time and steps/sec.

Runs the same 8-spec campaign with ``n_workers=1`` and ``n_workers=4``,
verifies the determinism guarantee (payloads bit-identical modulo timing
metadata), and records both runs to ``BENCH_campaign.json`` in the repo
root so future PRs have a perf trajectory to beat.

The speedup assertion only applies on multi-core hosts; a single-core
container still records the numbers and checks determinism.

Regenerate:  pytest benchmarks/bench_campaign_throughput.py --benchmark-only -s
"""

import json
import os
import pathlib

from conftest import report
from repro.experiments.campaign import Campaign, ScenarioSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_campaign.json"
PARALLEL_WORKERS = 4


def campaign_specs(duration_bits=20_000):
    """8 mixed specs: the Table II core plus sweep-style fights."""
    specs = [ScenarioSpec(f"exp{number}", duration_bits=duration_bits)
             for number in range(1, 7)]
    specs.append(ScenarioSpec("multi_attacker", {"num_attackers": 3},
                              duration_bits=duration_bits))
    specs.append(ScenarioSpec("single_frame_fight", {"bus_speed": 500_000},
                              duration_bits=duration_bits))
    return specs


def _summarize(outcome):
    return {
        "n_workers": outcome.n_workers,
        "wall_seconds": round(outcome.wall_seconds, 3),
        "total_steps": outcome.total_steps(),
        "steps_per_second": round(
            outcome.total_steps() / outcome.wall_seconds, 1),
        "per_run_steps_per_second": {
            record.spec.name: round(record.steps_per_second, 1)
            for record in outcome.records
        },
    }


def test_campaign_serial_vs_parallel(benchmark, quick):
    specs = campaign_specs(duration_bits=2_000 if quick else 20_000)
    serial = Campaign(specs, n_workers=1).run()
    parallel = benchmark.pedantic(
        Campaign(specs, n_workers=PARALLEL_WORKERS).run,
        rounds=1, iterations=1,
    )

    assert len(serial.records) == len(specs) == 8
    assert serial.payload_equal(parallel)

    cores = os.cpu_count() or 1
    payload = {
        "cpu_count": cores,
        "specs": [spec.to_dict() for spec in specs],
        "serial": _summarize(serial),
        "parallel": _summarize(parallel),
        "speedup": round(serial.wall_seconds / parallel.wall_seconds, 2),
    }
    if not quick:
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Campaign throughput — serial vs parallel", [
        ("specs in campaign", 8, len(specs)),
        ("serial wall (s)", "-", f"{serial.wall_seconds:.2f}"),
        (f"parallel wall (s), {PARALLEL_WORKERS} workers", "-",
         f"{parallel.wall_seconds:.2f}"),
        ("speedup", f">1 on {PARALLEL_WORKERS}-core hosts",
         payload["speedup"]),
        ("payloads bit-identical", True, True),
    ], notes=f"recorded to {BENCH_FILE.name} (cpu_count={cores})")
    # Quick (CI smoke) runs are too short for pool startup to amortize.
    if cores >= 2 and not quick:
        assert parallel.wall_seconds < serial.wall_seconds
