"""Campaign engine throughput: serial vs parallel, fast vs per-bit.

Three measurements, all recorded to ``BENCH_campaign.json`` in the repo
root so future PRs have a perf trajectory to beat:

* serial vs parallel fan-out of the same 8-spec fight campaign, with the
  determinism guarantee (payloads bit-identical modulo timing metadata)
  and the per-worker spawn-overhead tax;
* fast-forward vs per-bit engine on idle-heavy specs — identical result
  payloads, wall-clock speedup asserted >= 3x;
* the long-window fast-path headline: ``restbus_baseline`` throughput in
  steps/sec against the recorded pre-fast-path serial baseline (>= 10x).

The parallel-speedup assertion only applies on multi-core hosts; a
single-core container still records the numbers and checks determinism.

Regenerate:  pytest benchmarks/bench_campaign_throughput.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.experiments.campaign import Campaign, ScenarioSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_campaign.json"
PARALLEL_WORKERS = 4

#: Serial steps/sec recorded before the fast path existed (captured at
#: import, so in-session regeneration cannot move the goalposts).  The
#: "fastpath" section freezes it across regenerations — the live "serial"
#: numbers drift upward as the engines improve and would dilute the
#: comparison.  None on a fresh checkout without the JSON.
_RECORDED = (json.loads(BENCH_FILE.read_text(encoding="utf-8"))
             if BENCH_FILE.exists() else {})
RECORDED_SERIAL_BASELINE = (
    _RECORDED.get("fastpath", {}).get("recorded_serial_baseline")
    or _RECORDED.get("serial", {}).get("steps_per_second"))

FASTPATH_WINDOW_BITS = 500_000
FASTPATH_TARGET_SPEEDUP = 10.0
ENGINE_TARGET_SPEEDUP = 3.0


def campaign_specs(duration_bits=20_000, engine="fast"):
    """8 mixed specs: the Table II core plus sweep-style fights."""
    specs = [ScenarioSpec(f"exp{number}", duration_bits=duration_bits,
                          engine=engine)
             for number in range(1, 7)]
    specs.append(ScenarioSpec("multi_attacker", {"num_attackers": 3},
                              duration_bits=duration_bits, engine=engine))
    specs.append(ScenarioSpec("single_frame_fight", {"bus_speed": 500_000},
                              duration_bits=duration_bits, engine=engine))
    return specs


def idle_heavy_specs(duration_bits=20_000, engine="fast"):
    """3 idle-heavy specs where span forwarding dominates."""
    return [ScenarioSpec("restbus_baseline", seed=seed,
                         duration_bits=duration_bits, engine=engine)
            for seed in range(3)]


def _summarize(outcome):
    return {
        "n_workers": outcome.n_workers,
        "wall_seconds": round(outcome.wall_seconds, 3),
        "total_steps": outcome.total_steps(),
        "steps_per_second": round(
            outcome.total_steps() / outcome.wall_seconds, 1),
        "spawn_overhead_seconds": round(outcome.spawn_overhead_seconds(), 3),
        "per_run_steps_per_second": {
            record.spec.name: round(record.steps_per_second, 1)
            for record in outcome.records
        },
    }


def _record(section, payload):
    """Merge one section into BENCH_campaign.json (non-quick runs only)."""
    existing = (json.loads(BENCH_FILE.read_text(encoding="utf-8"))
                if BENCH_FILE.exists() else {})
    for legacy_key in ("cpu_count", "specs", "speedup"):  # pre-"meta" layout
        existing.pop(legacy_key, None)
    existing[section] = payload
    BENCH_FILE.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_campaign_serial_vs_parallel(benchmark, quick):
    specs = campaign_specs(duration_bits=2_000 if quick else 20_000)
    serial = Campaign(specs, n_workers=1).run()
    parallel = benchmark.pedantic(
        Campaign(specs, n_workers=PARALLEL_WORKERS).run,
        rounds=1, iterations=1,
    )

    assert len(serial.records) == len(specs) == 8
    assert serial.payload_equal(parallel)
    # Serial runs never pay the fan-out tax; parallel runs record it.
    assert serial.spawn_overhead_seconds() == 0.0  # repro: noqa[RC103]
    assert parallel.spawn_overhead_seconds() >= 0.0

    cores = os.cpu_count() or 1
    speedup = round(serial.wall_seconds / parallel.wall_seconds, 2)
    if not quick:
        _record("serial", _summarize(serial))
        _record("parallel", _summarize(parallel))
        _record("meta", {
            "cpu_count": cores,
            "specs": [spec.to_dict() for spec in specs],
            "speedup": speedup,
        })

    report("Campaign throughput — serial vs parallel", [
        ("specs in campaign", 8, len(specs)),
        ("serial wall (s)", "-", f"{serial.wall_seconds:.2f}"),
        (f"parallel wall (s), {PARALLEL_WORKERS} workers", "-",
         f"{parallel.wall_seconds:.2f}"),
        ("speedup", f">1 on {PARALLEL_WORKERS}-core hosts", speedup),
        ("spawn overhead (s)", "-",
         f"{parallel.spawn_overhead_seconds():.2f}"),
        ("payloads bit-identical", True, True),
    ], notes=f"recorded to {BENCH_FILE.name} (cpu_count={cores}); "
             f"render() warns when fan-out gains <1.1x")
    # Quick (CI smoke) runs are too short for pool startup to amortize.
    if cores >= 2 and not quick:
        assert parallel.wall_seconds < serial.wall_seconds


def test_fast_vs_bit_engine(benchmark, quick):
    """Same specs, both engines: identical payloads, >= 3x wall speedup."""
    duration = 20_000
    fast_specs = idle_heavy_specs(duration, engine="fast")
    bit_specs = idle_heavy_specs(duration, engine="bit")

    bit = Campaign(bit_specs, n_workers=1).run()
    fast = benchmark.pedantic(
        Campaign(fast_specs, n_workers=1).run, rounds=1, iterations=1)

    # The differential guarantee at campaign level: engine selection is
    # timing metadata, never payload.
    assert ([r.result.to_dict() for r in fast.records]
            == [r.result.to_dict() for r in bit.records])

    speedup = bit.wall_seconds / fast.wall_seconds
    if not quick:
        _record("engines", {
            "duration_bits": duration,
            "bit_steps_per_second": _summarize(bit)["steps_per_second"],
            "fast_steps_per_second": _summarize(fast)["steps_per_second"],
            "speedup": round(speedup, 2),
        })
    report("Engine comparison — fast-forward vs per-bit", [
        ("idle-heavy specs", 3, len(fast_specs)),
        ("per-bit wall (s)", "-", f"{bit.wall_seconds:.2f}"),
        ("fast wall (s)", "-", f"{fast.wall_seconds:.2f}"),
        ("speedup", f">= {ENGINE_TARGET_SPEEDUP}x", f"{speedup:.1f}x"),
        ("payloads bit-identical", True, True),
    ])
    assert speedup >= ENGINE_TARGET_SPEEDUP


def test_fastpath_long_window(benchmark, quick):
    """The headline number: benign restbus throughput with span forwarding,
    against the serial baseline recorded before the fast path existed."""
    duration = 50_000 if quick else FASTPATH_WINDOW_BITS
    spec = ScenarioSpec("restbus_baseline", duration_bits=duration,
                        engine="fast")

    def run():
        setup = spec.build()
        started = time.perf_counter()
        setup.run(config=spec.run_config())
        wall = time.perf_counter() - started
        return setup.sim, wall

    sim, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    steps_per_second = duration / wall
    stats = sim.ff_stats
    baseline = RECORDED_SERIAL_BASELINE
    ratio = steps_per_second / baseline if baseline else None

    if not quick:
        _record("fastpath", {
            "scenario": "restbus_baseline",
            "duration_bits": duration,
            "steps_per_second": round(steps_per_second, 1),
            "fast_bits": stats.fast_bits,
            "span_counts": stats.as_dict(),
            "recorded_serial_baseline": baseline,
            "speedup_vs_baseline": round(ratio, 2) if ratio else None,
        })
    report("Fast path — long-window restbus baseline", [
        ("window (bits)", "-", duration),
        ("steps/sec", "-", f"{steps_per_second:,.0f}"),
        ("bits span-forwarded", "-",
         f"{stats.fast_bits} ({stats.fast_bits / duration:.0%})"),
        ("recorded serial baseline (steps/s)", "-",
         baseline if baseline else "unrecorded"),
        ("speedup vs baseline", f">= {FASTPATH_TARGET_SPEEDUP}x",
         f"{ratio:.1f}x" if ratio else "-"),
    ])
    assert stats.fast_bits > duration // 2
    if baseline and not quick:
        assert ratio >= FASTPATH_TARGET_SPEEDUP
