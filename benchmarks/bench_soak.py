"""Soak test: a long adversarial mixed run with every invariant checked.

Half a million simulated bits of restbus traffic, a persistent DoS attacker,
sporadic channel noise and a MichiCAN defender — then every global invariant
from DESIGN.md §6 is asserted on the result.  This is the closest the suite
comes to the paper's 2-second on-vehicle stress run.

Regenerate:  pytest benchmarks/bench_soak.py --benchmark-only -s
"""

from conftest import report
from repro.attacks.dos import DosAttacker
from repro.bus.events import BusOffEntered, BusOffRecovered, FrameTransmitted
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.experiments.scenarios import detection_ids_for
from repro.faults import FaultInjectingWire, flip_fault
from repro.trace.framelog import FrameLog
from repro.workloads.restbus import RestbusNode
from repro.workloads.matrix import theoretical_bus_load
from repro.workloads.vehicles import vehicle_buses

DURATION = 500_000


def test_soak_mixed_adversarial_run(benchmark):
    def run():
        matrix, _ = vehicle_buses("veh_b")
        sim = CanBusSimulator(bus_speed=50_000, record_wire=False)
        sim.wire = FaultInjectingWire([flip_fault(2e-5, seed=99)],
                                      record=False)
        native = theoretical_bus_load(matrix, sim.bus_speed)
        sim.add_node(RestbusNode("restbus", matrix, sim.bus_speed,
                                 time_scale=max(1.0, native / 0.12)))
        defender = sim.add_node(MichiCanNode(
            "michican", detection_ids_for(0x173, matrix.all_ids())))
        attacker = sim.add_node(DosAttacker("attacker", 0x064))
        sim.advance(DURATION)
        return sim, defender, attacker

    sim, defender, attacker = benchmark.pedantic(run, rounds=1, iterations=1)
    log = FrameLog(sim.events)
    episodes = log.busoff_episodes("attacker")
    busoffs = sim.events_of(BusOffEntered)
    recoveries = sim.events_of(BusOffRecovered)
    benign_tx = [e for e in sim.events_of(FrameTransmitted)
                 if e.node == "restbus"]
    attacker_tx = [e for e in sim.events_of(FrameTransmitted)
                   if e.node == "attacker"]

    report("Soak — 500k bits, restbus + DoS + noise + MichiCAN", [
        ("bus-off episodes completed", "many", len(episodes)),
        ("attacker recoveries (persistent attack)", "episodes - 0/1",
         len(recoveries)),
        ("attacker frames ever delivered", 0, len(attacker_tx)),
        ("benign frames delivered", "~480 (12% load)", len(benign_tx)),
        ("defender TEC at end", 0, defender.tec),
        ("episodes at exactly 32 attempts", ">= 95% (noise adds rounds)",
         sum(1 for e in episodes if e.attempts == 32)),
        ("only the attacker ever bused off", True,
         {e.node for e in busoffs} == {"attacker"}),
    ])
    assert len(episodes) >= 100
    assert not attacker_tx            # the DoS never lands a frame
    assert len(benign_tx) >= 400      # the bus keeps working throughout
    assert defender.tec == 0
    assert {e.node for e in busoffs} == {"attacker"}
    # Channel noise can add/remove the odd error round; the arithmetic must
    # still hold almost everywhere and never drift far.
    exact = sum(1 for e in episodes if e.attempts == 32)
    assert exact >= 0.95 * len(episodes)
    assert all(30 <= e.attempts <= 34 for e in episodes)
