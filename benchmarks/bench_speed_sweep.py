"""Extension: bus-speed invariance of the bus-off arithmetic.

The paper: "we focus on bit counts rather than time, as bus-off time equals
the number of bits multiplied by the nominal bit time" — so the same fight
takes 24.3 ms at 50 kbit/s and 2.43 ms at 500 kbit/s.  The hardware could
only validate 50/125 kbit/s (the Due runs out of cycles above that); the
simulator, with the NXP-class CPU budget, sweeps every standard speed.

Regenerate:  pytest benchmarks/bench_speed_sweep.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.cpu import NXP_S32K144, analytic_utilization
from repro.bus.events import BusOffEntered, FrameStarted
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode

SPEEDS = (50_000, 125_000, 250_000, 500_000, 1_000_000)


def fight_at(speed):
    sim = CanBusSimulator(bus_speed=speed)
    sim.add_node(MichiCanNode("defender", range(0x100)))
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(0x064, bytes(8)))
    sim.run_until(lambda s: attacker.is_bus_off, 10_000)
    boff = sim.events_of(BusOffEntered)[0]
    first = sim.events_of(FrameStarted)[0]
    bits = boff.time + 14 - first.time
    return bits, sim.milliseconds(bits)


def test_bit_count_invariant_across_speeds(benchmark):
    results = benchmark.pedantic(
        lambda: {speed: fight_at(speed) for speed in SPEEDS},
        rounds=1, iterations=1,
    )
    rows = []
    for speed, (bits, ms) in results.items():
        rows.append((f"{speed // 1000} kbit/s: bus-off bits / ms",
                     "same bits, scaled ms", f"{bits} / {ms:.2f}"))
    report("Speed sweep — bit-count invariance", rows)
    bit_counts = {bits for bits, _ms in results.values()}
    assert len(bit_counts) == 1  # identical fight at every speed
    ms_50k = results[50_000][1]
    ms_500k = results[500_000][1]
    assert ms_50k == pytest.approx(10 * ms_500k, rel=1e-9)


def test_cpu_budget_across_speeds(benchmark):
    """The reason the paper needed the S32K144 for 500 kbit/s: the handler
    budget, not the protocol, limits the deployable speed."""
    loads = benchmark(lambda: {
        speed: analytic_utilization(NXP_S32K144, speed, busy_fraction=1.0)
        for speed in SPEEDS
    })
    rows = [(f"{speed // 1000} kbit/s worst-case handler load",
             "feasible to 500k+ on S32K144-class",
             f"{load.active_load:.0%}") for speed, load in loads.items()]
    report("Speed sweep — S32K144 CPU budget", rows)
    assert loads[500_000].feasible()
    # 1 Mbit/s is the aspirational Sec. VI-B target: tight but codeable.
    assert loads[1_000_000].active_load <= 1.5
