"""Extension: bus-speed invariance of the bus-off arithmetic.

The paper: "we focus on bit counts rather than time, as bus-off time equals
the number of bits multiplied by the nominal bit time" — so the same fight
takes 24.3 ms at 50 kbit/s and 2.43 ms at 500 kbit/s.  The hardware could
only validate 50/125 kbit/s (the Due runs out of cycles above that); the
simulator, with the NXP-class CPU budget, sweeps every standard speed.

The per-speed fights are one ``single_frame_fight`` campaign; each
:class:`BusOffEpisode` spans first-malicious-SOF to the end of the final
passive error frame, i.e. exactly the paper's bus-off time.

Regenerate:  pytest benchmarks/bench_speed_sweep.py --benchmark-only -s
"""

import os

import pytest

from conftest import report
from repro.analysis.cpu import NXP_S32K144, analytic_utilization
from repro.experiments.campaign import Campaign, ScenarioSpec

SPEEDS = (50_000, 125_000, 250_000, 500_000, 1_000_000)
N_WORKERS = min(4, os.cpu_count() or 1)


def test_bit_count_invariant_across_speeds(benchmark):
    specs = [
        ScenarioSpec("single_frame_fight", {"bus_speed": speed},
                     duration_bits=6_000, label=f"{speed}bps")
        for speed in SPEEDS
    ]
    campaign = Campaign(specs, n_workers=N_WORKERS)
    outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)

    results = {}
    for speed, record in zip(SPEEDS, outcome.records):
        episode = record.result.episodes["attacker"][0]
        bits = episode.duration_bits
        results[speed] = (bits, episode.duration_ms(speed))
    rows = []
    for speed, (bits, ms) in results.items():
        rows.append((f"{speed // 1000} kbit/s: bus-off bits / ms",
                     "same bits, scaled ms", f"{bits} / {ms:.2f}"))
    report("Speed sweep — bit-count invariance", rows)
    bit_counts = {bits for bits, _ms in results.values()}
    assert len(bit_counts) == 1  # identical fight at every speed
    ms_50k = results[50_000][1]
    ms_500k = results[500_000][1]
    assert ms_50k == pytest.approx(10 * ms_500k, rel=1e-9)


def test_cpu_budget_across_speeds(benchmark):
    """The reason the paper needed the S32K144 for 500 kbit/s: the handler
    budget, not the protocol, limits the deployable speed."""
    loads = benchmark(lambda: {
        speed: analytic_utilization(NXP_S32K144, speed, busy_fraction=1.0)
        for speed in SPEEDS
    })
    rows = [(f"{speed // 1000} kbit/s worst-case handler load",
             "feasible to 500k+ on S32K144-class",
             f"{load.active_load:.0%}") for speed, load in loads.items()]
    report("Speed sweep — S32K144 CPU budget", rows)
    assert loads[500_000].feasible()
    # 1 Mbit/s is the aspirational Sec. VI-B target: tight but codeable.
    assert loads[1_000_000].active_load <= 1.5
