"""Purity/effect analyzer speed: cold fixpoint vs warm summary-cache run.

Builds the full scenario purity manifest over ``src/`` twice against the
same on-disk :class:`AnalysisCache` — once cold (every file parsed and
summarized from scratch before the effect fixpoint and slice hashing
run) and once warm (summaries replay from the cache by ``(mtime_ns,
size)``; only the fixpoint and the hashing re-run) — and records both
wall times into ``BENCH_lint.json`` under the ``purity`` key (merged, so
the lint-speed baseline in the same file survives).

The contract this bench enforces: the warm analyzer must beat the cold
one by at least ``MIN_SPEEDUP``x, so ``repro campaign run --cache``
(which rebuilds the manifest when none is given) and manifest refreshes
in ``--changed`` loops stay interactive as the tree grows.

Regenerate:  pytest benchmarks/bench_purity_speed.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.analysis.callgraph import AnalysisCache
from repro.analysis.purity import build_purity_manifest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_lint.json"

#: The warm analyzer run must beat a cold run by at least this factor.
MIN_SPEEDUP = 3.0

ROUNDS = 3


def _build_once(cache_path):
    cache = AnalysisCache(str(cache_path))
    started = time.perf_counter()
    manifest = build_purity_manifest([str(REPO_ROOT / "src" / "repro")],
                                     cache=cache)
    wall = time.perf_counter() - started
    cache.save()
    verdicts = [entry.verdict for entry in manifest.scenarios.values()]
    assert verdicts and set(verdicts) == {"pure"}, manifest.to_dict()
    return wall, len(manifest.scenarios)


def _best_cold(rounds, tmp_path):
    best, scenarios = float("inf"), 0
    for index in range(rounds):
        wall, scenarios = _build_once(tmp_path / f"cold-{index}.json")
        best = min(best, wall)
    return best, scenarios


def _best_warm(rounds, tmp_path):
    cache_path = tmp_path / "warm.json"
    _build_once(cache_path)  # populate
    best = float("inf")
    for _ in range(rounds):
        wall, _ = _build_once(cache_path)
        best = min(best, wall)
    return best


def test_warm_purity_analysis_speedup(benchmark, quick, tmp_path):
    rounds = 1 if quick else ROUNDS

    cold, scenarios = _best_cold(rounds, tmp_path)
    warm = _best_warm(rounds, tmp_path)
    benchmark.pedantic(lambda: _build_once(tmp_path / "warm.json"),
                       rounds=1, iterations=1)

    speedup = cold / warm if warm else float("inf")

    if not quick:
        try:
            payload = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = {}
        payload["purity"] = {
            "scenarios": scenarios,
            "rounds": rounds,
            "cpu_count": os.cpu_count() or 1,
            "cold_seconds": round(cold, 4),
            "warm_seconds": round(warm, 4),
            "warm_speedup": round(speedup, 2),
        }
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Purity analyzer speedup (src/repro)", [
        ("scenarios certified", "-", scenarios),
        ("cold build (s)", "-", f"{cold:.3f}"),
        ("warm build (s)", "-", f"{warm:.3f}"),
        ("speedup", f">={MIN_SPEEDUP:.0f}x", f"{speedup:.1f}x"),
    ], notes=f"recorded to {BENCH_FILE.name} under 'purity'")

    assert speedup >= MIN_SPEEDUP
