"""Extension: the classic bus-off attack vs MichiCAN (Sec. VI-A boundary).

The paper cites bus-off attacks on legitimate ECUs (Cho & Shin, CANnon) as
related work and points to dedicated defenses [61]-[63]; MichiCAN does not
claim to stop them during the victim's own transmissions.  This bench
quantifies the honest boundary:

* undefended: the attack works (victim repeatedly bused off);
* MichiCAN victim vs a plain compromised app (no controller-reset ability):
  the attacker is eradicated an order of magnitude more often than the
  victim suffers;
* MichiCAN victim vs a CANnon-class attacker (resets its error counters):
  suppression still succeeds, but the attacker pays hundreds of
  counterattacks and resets.

Regenerate:  pytest benchmarks/bench_extension_busoff_attack.py --benchmark-only -s
"""

from conftest import report
from repro.attacks.busoff import BusOffAttacker
from repro.bus.events import BusOffEntered
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.experiments.scenarios import detection_ids_for
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler

VICTIM_ID = 0x123


def run_attack(defended, reset_threshold=96, duration=120_000):
    sim = CanBusSimulator(bus_speed=500_000)
    scheduler = PeriodicScheduler([PeriodicMessage(
        VICTIM_ID, period_bits=1_000, payload_fn=lambda n: b"\xFF" * 8)])
    if defended:
        victim = sim.add_node(MichiCanNode(
            "victim", detection_ids_for(VICTIM_ID, [VICTIM_ID]),
            scheduler=scheduler))
    else:
        victim = sim.add_node(CanNode("victim", scheduler=scheduler))
    sim.add_node(CanNode("receiver"))
    attacker = sim.add_node(BusOffAttacker(
        "attacker", victim_id=VICTIM_ID, start_bits=3_000,
        tec_reset_threshold=reset_threshold))
    sim.run(duration)
    busoffs = sim.events_of(BusOffEntered)
    return {
        "victim_busoffs": sum(1 for e in busoffs if e.node == "victim"),
        "attacker_busoffs": sum(1 for e in busoffs if e.node == "attacker"),
        "attacker_resets": attacker.controller_resets,
        "counterattacks": getattr(victim, "counterattacks", 0),
    }


def test_busoff_attack_undefended(benchmark):
    result = benchmark.pedantic(
        lambda: run_attack(defended=False), rounds=1, iterations=1)
    report("Bus-off attack — undefended victim", [
        ("victim bused off (count)", ">= 1", result["victim_busoffs"]),
        ("attacker bused off", 0, result["attacker_busoffs"]),
        ("attacker self-resets", "few", result["attacker_resets"]),
    ])
    assert result["victim_busoffs"] >= 1
    assert result["attacker_busoffs"] == 0


def test_busoff_attack_vs_michican_plain_attacker(benchmark):
    result = benchmark.pedantic(
        lambda: run_attack(defended=True, reset_threshold=10**9),
        rounds=1, iterations=1)
    report("Bus-off attack — MichiCAN victim vs plain attacker", [
        ("attacker bused off (count)", "many", result["attacker_busoffs"]),
        ("victim bused off (count)", "few", result["victim_busoffs"]),
        ("eradication ratio", ">= 5x",
         result["attacker_busoffs"] / max(1, result["victim_busoffs"])),
    ], notes="MichiCAN punishes every solo retransmission of the forged ID")
    assert result["attacker_busoffs"] >= 10
    assert (result["attacker_busoffs"]
            > 5 * max(1, result["victim_busoffs"]))


def test_busoff_attack_vs_michican_cannon_attacker(benchmark):
    result = benchmark.pedantic(
        lambda: run_attack(defended=True, reset_threshold=96),
        rounds=1, iterations=1)
    report("Bus-off attack — MichiCAN victim vs CANnon-class attacker", [
        ("victim still suppressed", "yes (documented limitation)",
         result["victim_busoffs"] >= 1),
        ("counterattacks absorbed", "hundreds", result["counterattacks"]),
        ("controller resets needed", ">= 50", result["attacker_resets"]),
    ], notes="Sec. VI-A defers this class to dedicated bus-off defenses")
    assert result["victim_busoffs"] >= 1
    assert result["counterattacks"] >= 100
    assert result["attacker_resets"] >= 50
