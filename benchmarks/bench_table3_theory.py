"""Table III: theoretical bus-off time calculations, verified against the
bit-level simulator.

Paper rows:

    Exp 2/4/6 (undisturbed):  t_a = 35, t_p = 43, total = 1248 bits
    Exp 1/3:   t_a + s_f*c_{h,a},  t_p + s_f*(c_{h,p}+c_{l,p})
    Exp 5 HP:  560 + sum t_p,i      (active phase undisturbed)
    Exp 5 LP:  both phases extended by the other attacker

Regenerate:  pytest benchmarks/bench_table3_theory.py --benchmark-only -s
"""

from conftest import report
from repro.analysis.busoff_theory import (
    BEST_CASE_PREFIX_BITS,
    InterruptionCounts,
    busoff_bits_with_interruptions,
    error_active_time,
    error_passive_time,
    two_attacker_hp_busoff_bits,
    two_attacker_lp_busoff_bits,
    undisturbed_busoff_bits,
)
from repro.bus.events import FrameStarted
from repro.experiments.scenarios import experiment_4


def test_table3_closed_forms(benchmark):
    values = benchmark(lambda: {
        "t_a_worst": error_active_time(),
        "t_p_worst": error_passive_time(),
        "t_a_best": error_active_time(BEST_CASE_PREFIX_BITS),
        "t_p_best": error_passive_time(BEST_CASE_PREFIX_BITS),
        "undisturbed": undisturbed_busoff_bits(),
        "interrupted": busoff_bits_with_interruptions(
            InterruptionCounts(1, 1, 1)),
        "hp": two_attacker_hp_busoff_bits(z_low_passive=8),
        "lp": two_attacker_lp_busoff_bits(z_high_active=8, z_high_passive=8),
    })
    report("Table III — closed forms", [
        ("error-active time t_a worst (bits)", 35, values["t_a_worst"]),
        ("error-passive time t_p worst (bits)", 43, values["t_p_worst"]),
        ("error-active time t_a best (bits)", 30, values["t_a_best"]),
        ("error-passive time t_p best (bits)", 38, values["t_p_best"]),
        ("undisturbed total 16*(t_a+t_p)", 1248, values["undisturbed"]),
        ("Exp 5 HP active phase 16*t_a", 560, 16 * values["t_a_worst"]),
        ("with 3 interruptions (+3*125)", 1248 + 375, values["interrupted"]),
        ("HP < LP ordering holds", True, values["hp"] < values["lp"]),
    ])
    assert values["t_a_worst"] == 35
    assert values["t_p_worst"] == 43
    assert values["undisturbed"] == 1248


def test_table3_theory_vs_simulation(benchmark):
    """The closed form must predict the simulator's undisturbed episode:
    theory confirms empirical data (the paper's cross-check)."""
    def run():
        setup = experiment_4()
        result = setup.run(3_000)
        episode = result.episodes["attacker"][0]
        starts = [e.time for e in setup.sim.events_of(FrameStarted)
                  if e.node == "attacker"]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        return episode, gaps

    episode, gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    # Gaps stretched by an interrupting benign frame (> 50 bits) are the
    # Table III c-terms; the pure retransmission gaps are the t_a / t_p.
    active_gaps = sorted({g for g in gaps[:14] if g <= 50})
    passive_gaps = sorted({g for g in gaps[17:30] if g <= 50})
    report("Table III — simulator cross-check (Exp 4)", [
        ("active retransmission gap (bits)", "30..35", active_gaps),
        ("passive retransmission gap (bits)", "38..43", passive_gaps),
        ("episode total (bits)", "<= 1248", episode.duration_bits),
        ("attempts", 32, episode.attempts),
    ])
    assert all(28 <= g <= 37 for g in active_gaps)
    assert all(36 <= g <= 45 for g in passive_gaps)
    assert episode.attempts == 32
    # Allow a small stuffing-detail margin around the closed form.
    assert episode.duration_bits <= undisturbed_busoff_bits() * 1.08
