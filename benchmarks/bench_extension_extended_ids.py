"""Extension: MichiCAN for CAN 2.0B extended (29-bit) identifiers.

The paper covers CAN 2.0A only; production vehicles also carry 29-bit
traffic (e.g. J1939, UDS-on-CAN).  The dual-FSM firmware defends both: the
standard counterattack is deferred one bit to the IDE position (never
disturbing an extended frame's still-running arbitration), and extended
frames are classified by an interval-backed 29-bit FSM and attacked right
after their RTR at frame position 33.

Regenerate:  pytest benchmarks/bench_extension_extended_ids.py --benchmark-only -s
"""

from conftest import report
from repro.bus.events import BusOffEntered, FrameStarted
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.can.intervals import IdIntervalSet
from repro.core.defense import MichiCanNode
from repro.core.fsm import DetectionFsm
from repro.node.controller import CanNode

EXT_RANGE = IdIntervalSet.from_range_minus(
    0, 0x0FFFFFFF, excluded=[0x0ABCDEF, 0x0CFE6CE]
)


def test_extended_fsm_scales(benchmark):
    """29-bit FSM generation must stay interval-arithmetic (no enumeration
    of the 2^29 identifier space)."""
    fsm = benchmark(lambda: DetectionFsm(EXT_RANGE, id_bits=29))
    stats = fsm.stats(samples=2_000, seed=1)
    report("Extended-ID extension — FSM scale", [
        ("identifier space", "2^29", 1 << 29),
        ("detection-set size", "~2.7e8", len(EXT_RANGE)),
        ("FSM states", "compact (interval-bounded)", fsm.num_states),
        ("max decision depth (bits)", "<= 29", stats.max_depth),
    ])
    assert fsm.num_states < 4_000
    assert stats.max_depth <= 29


def test_extended_attack_eradicated(benchmark):
    def run():
        sim = CanBusSimulator(bus_speed=50_000)
        defender = sim.add_node(MichiCanNode(
            "defender", range(0x100), extended_detection_ids=EXT_RANGE))
        attacker = sim.add_node(CanNode("attacker"))
        attacker.send(CanFrame(0x00123456, bytes(8), extended=True))
        sim.run_until(lambda s: attacker.is_bus_off, 15_000)
        boff = sim.events_of(BusOffEntered)[0]
        first = sim.events_of(FrameStarted)[0]
        detection = defender.detections[0]
        return boff.time + 14 - first.time, detection

    busoff_bits, detection = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Extended-ID extension — bus-off fight", [
        ("attacker bused off", True, True),
        ("bus-off time (bits)", "~2x the 11-bit 1250 (longer prefix)",
         busoff_bits),
        ("frame flagged as extended", True, detection.extended),
        ("FSM decision bit (of 29)", "<= 29", detection.decision_bit),
    ], notes="each destroyed attempt carries 33 arbitration bits vs 13")
    assert 1_700 <= busoff_bits <= 2_600
    assert detection.extended


def test_dual_mode_cost_on_standard_traffic(benchmark):
    """Dual mode defers the standard trigger by one bit; the bus-off
    arithmetic is otherwise unchanged."""
    def fight(extended_aware):
        sim = CanBusSimulator(bus_speed=50_000)
        kwargs = {"extended_detection_ids": EXT_RANGE} if extended_aware else {}
        sim.add_node(MichiCanNode("defender", range(0x100), **kwargs))
        attacker = sim.add_node(CanNode("attacker"))
        attacker.send(CanFrame(0x064, bytes(8)))
        hit = sim.run_until(lambda s: attacker.is_bus_off, 15_000)
        return hit

    classic, dual = benchmark.pedantic(
        lambda: (fight(False), fight(True)), rounds=1, iterations=1)
    report("Extended-ID extension — standard-attack overhead", [
        ("classic firmware bus-off (bits)", "~1250", classic),
        ("dual-FSM firmware bus-off (bits)", "~1250 + ~32", dual),
        ("added cost per attempt", "<= 1 bit", (dual - classic) / 32),
    ])
    assert 0 <= dual - classic <= 64
