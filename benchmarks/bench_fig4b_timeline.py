"""Fig. 4b: the worst-case counterattack, bit by bit on the wire.

The figure shows MichiCAN pulling the bus dominant from the RTR bit through
the DLC field, the bit error this forces in the attacker's transmission, and
the active error flag + delimiter that follow.  This bench reconstructs the
same timeline from the simulated wire and checks every phase boundary.

Regenerate:  pytest benchmarks/bench_fig4b_timeline.py --benchmark-only -s
"""

from conftest import report
from repro.bus.events import (
    CounterattackEnded,
    CounterattackStarted,
    ErrorDetected,
    FrameStarted,
)
from repro.bus.simulator import CanBusSimulator
from repro.can.constants import DOMINANT
from repro.can.frame import CanFrame
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode
from repro.trace.recorder import LogicTrace


def test_fig4b_worst_case_timeline(benchmark):
    # DLC = 1 (binary 0001) delays the overwritten recessive bit to the last
    # DLC position: the paper's worst case needing all six injected bits.
    def run():
        sim = CanBusSimulator(bus_speed=500_000)
        defender = sim.add_node(MichiCanNode("defender", range(0x100)))
        attacker = sim.add_node(CanNode("attacker"))
        attacker.send(CanFrame(0x0AA, b"\x00"))  # ID with no stuff bits
        sim.run(80)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    start = next(e for e in sim.events if isinstance(e, FrameStarted))
    counter = next(e for e in sim.events if isinstance(e, CounterattackStarted))
    end = next(e for e in sim.events if isinstance(e, CounterattackEnded))
    error = next(e for e in sim.events if isinstance(e, ErrorDetected)
                 and e.error.as_transmitter)

    trace = LogicTrace(sim.wire.history)
    # The counterattack window: 6 dominant bits right after the RTR.
    sof = start.time
    report("Fig. 4b — worst-case counterattack timeline", [
        ("SOF at (bit)", 0, sof - sof),
        ("counterattack trigger (frame pos, 1-based)", 13,
         counter.time - sof + 1),
        ("injected dominant bits", 6, end.time - counter.time),
        ("attacker bit error at frame pos", "18-19 (DLC LSB)",
         error.time - sof + 1),
        ("error frame follows immediately", True,
         error.time < end.time + 10),
    ])
    print("\n    wire ('_' dominant / '^' recessive):")
    print(trace.render(start=sof, end=sof + 60))

    assert counter.time - sof + 1 == 13
    # Six dominant injected bits follow the trigger.
    window = sim.wire.history[counter.time + 1: counter.time + 7]
    assert window == [DOMINANT] * 6
    # Worst case: the bit error lands on the last DLC bit (pos 18-19).
    assert 17 <= error.time - sof + 1 <= 19
