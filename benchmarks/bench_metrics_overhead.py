"""Telemetry overhead: probe-off vs probe-on engine throughput.

Runs the same fight scenario three ways — bare (no probe), with a
:class:`~repro.obs.probe.BusProbe` attached, and with a probe plus a
periodic :class:`~repro.obs.snapshot.SnapshotRecorder` — and records the
steps/sec of each to ``BENCH_metrics.json`` in the repo root, together
with a :func:`~repro.obs.profiler.profile_run` phase breakdown.

The contract this bench enforces: observability is opt-in, so the
probe-on run may cost at most ``MAX_OVERHEAD`` relative throughput, and
the probe-off path is the same hot loop the campaign baseline
(``BENCH_campaign.json``) measures.

Regenerate:  pytest benchmarks/bench_metrics_overhead.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.experiments.campaign import ScenarioSpec
from repro.obs.probe import BusProbe
from repro.obs.profiler import profile_run
from repro.obs.snapshot import SnapshotRecorder

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_metrics.json"

#: Probe-on throughput must stay within this fraction of probe-off.
MAX_OVERHEAD = 0.15

SCENARIO = "exp4"
ROUNDS = 3


def _run_once(duration_bits, metrics=False, snapshot_every=None):
    """Build a fresh scenario, run it, return (steps/s, event count)."""
    setup = ScenarioSpec(SCENARIO, duration_bits=duration_bits).build()
    sim = setup.sim
    probe = None
    if metrics:
        probe = BusProbe(sim)
        if snapshot_every:
            sim.add_node(SnapshotRecorder(probe, snapshot_every))
    started = time.perf_counter()
    sim.run(duration_bits)
    wall = time.perf_counter() - started
    if probe is not None:
        probe.close()
    return duration_bits / wall, len(sim.events)


def _best_of(rounds, duration_bits, **kwargs):
    """Best steps/s over several rounds (min-noise estimator)."""
    best = 0.0
    events = 0
    for _ in range(rounds):
        rate, events = _run_once(duration_bits, **kwargs)
        best = max(best, rate)
    return best, events


def test_probe_overhead(benchmark, quick):
    duration = 10_000 if quick else 100_000
    rounds = 1 if quick else ROUNDS

    bare, _ = _best_of(rounds, duration)
    probed, events = _best_of(rounds, duration, metrics=True)
    snapshotted, _ = _best_of(rounds, duration, metrics=True,
                              snapshot_every=1_000)
    benchmark.pedantic(lambda: _run_once(duration, metrics=True),
                       rounds=1, iterations=1)

    overhead = 1.0 - probed / bare
    snapshot_overhead = 1.0 - snapshotted / bare

    profile_setup = ScenarioSpec(SCENARIO, duration_bits=duration).build()
    profile = profile_run(profile_setup.sim, duration)

    payload = {
        "scenario": SCENARIO,
        "duration_bits": duration,
        "rounds": rounds,
        "cpu_count": os.cpu_count() or 1,
        "probe_off_steps_per_second": round(bare, 1),
        "probe_on_steps_per_second": round(probed, 1),
        "probe_and_snapshots_steps_per_second": round(snapshotted, 1),
        "probe_overhead_fraction": round(overhead, 4),
        "snapshot_overhead_fraction": round(snapshot_overhead, 4),
        "events_per_run": events,
        "phase_profile": profile.to_dict(),
    }
    if not quick:
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Telemetry probe overhead", [
        ("probe off (steps/s)", "-", f"{bare:,.0f}"),
        ("probe on (steps/s)", "-", f"{probed:,.0f}"),
        ("probe + snapshots (steps/s)", "-", f"{snapshotted:,.0f}"),
        ("probe overhead", f"<{MAX_OVERHEAD:.0%}", f"{overhead:.1%}"),
        ("snapshot overhead", "-", f"{snapshot_overhead:.1%}"),
        ("hot-loop phases", "-",
         " ".join(f"{name}={fraction:.0%}" for name, fraction
                  in profile.phase_fractions().items())),
    ], notes=f"recorded to {BENCH_FILE.name}")

    assert overhead < MAX_OVERHEAD
