"""Telemetry overhead: probe-off vs probe-on engine throughput.

Runs the same fight scenario three ways — bare (no probe), with a
:class:`~repro.obs.probe.BusProbe` attached, and with a probe plus a
periodic :class:`~repro.obs.snapshot.SnapshotRecorder` — and records the
steps/sec of each to ``BENCH_metrics.json`` in the repo root, together
with a :func:`~repro.obs.profiler.profile_run` phase breakdown.

Methodology: a shared warmup run precedes timing (imports, allocator and
bytecode caches are hot for every configuration), then the configurations
are timed *interleaved* — one round runs each configuration once, and the
best round per configuration wins.  Interleaving means slow drift (CPU
frequency scaling, another tenant on the box) hits all configurations
alike instead of biasing whichever ran last, keeping the on/off
comparison monotone.  Overheads are clamped at zero; a negative raw value
is physically impossible (the probe-on run does strictly more work) and
is recorded as measurement noise via the ``noisy`` flag.

The contract this bench enforces: observability is opt-in, so the
probe-on run may cost at most ``MAX_OVERHEAD`` relative throughput, and
the probe-off path is the same hot loop the campaign baseline
(``BENCH_campaign.json``) measures.

Regenerate:  pytest benchmarks/bench_metrics_overhead.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.experiments.campaign import ScenarioSpec
from repro.obs.probe import BusProbe
from repro.obs.profiler import profile_run
from repro.obs.snapshot import SnapshotRecorder

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_metrics.json"

#: Probe-on throughput must stay within this fraction of probe-off.
MAX_OVERHEAD = 0.15

#: Probe + periodic snapshots must stay within this fraction of probe-off.
MAX_SNAPSHOT_OVERHEAD = 0.15

SCENARIO = "exp4"
ROUNDS = 3

#: The timed configurations, in within-round execution order.
CONFIGS = (
    ("bare", {}),
    ("probed", {"metrics": True}),
    ("snapshotted", {"metrics": True, "snapshot_every": 1_000}),
)


def _run_once(duration_bits, metrics=False, snapshot_every=None):
    """Build a fresh scenario, run it, return (steps/s, event count)."""
    setup = ScenarioSpec(SCENARIO, duration_bits=duration_bits).build()
    sim = setup.sim
    probe = None
    if metrics:
        probe = BusProbe(sim)
        if snapshot_every:
            sim.add_node(SnapshotRecorder(probe, snapshot_every))
    started = time.perf_counter()
    sim.advance(duration_bits)
    wall = time.perf_counter() - started
    if probe is not None:
        probe.close()
    return duration_bits / wall, len(sim.events)


def _measure_interleaved(rounds, duration_bits):
    """Best steps/s per configuration over interleaved rounds.

    Returns ({config name: best steps/s}, events seen by the probed run).
    """
    best = {name: 0.0 for name, _ in CONFIGS}
    events = 0
    for _ in range(rounds):
        for name, kwargs in CONFIGS:
            rate, seen = _run_once(duration_bits, **kwargs)
            if rate > best[name]:
                best[name] = rate
            if name == "probed":
                events = seen
    return best, events


def test_probe_overhead(benchmark, quick):
    duration = 10_000 if quick else 100_000
    rounds = 1 if quick else ROUNDS

    # Shared warmup: every configuration is timed against hot caches.
    _run_once(min(duration, 20_000))

    best, events = _measure_interleaved(rounds, duration)
    bare = best["bare"]
    probed = best["probed"]
    snapshotted = best["snapshotted"]
    benchmark.pedantic(lambda: _run_once(duration, metrics=True),
                       rounds=1, iterations=1)

    raw_overhead = 1.0 - probed / bare
    raw_snapshot_overhead = 1.0 - snapshotted / bare
    overhead = max(0.0, raw_overhead)
    snapshot_overhead = max(0.0, raw_snapshot_overhead)
    noisy = raw_overhead < 0 or raw_snapshot_overhead < 0

    profile_setup = ScenarioSpec(SCENARIO, duration_bits=duration).build()
    profile = profile_run(profile_setup.sim, duration)

    payload = {
        "scenario": SCENARIO,
        "duration_bits": duration,
        "rounds": rounds,
        "cpu_count": os.cpu_count() or 1,
        "probe_off_steps_per_second": round(bare, 1),
        "probe_on_steps_per_second": round(probed, 1),
        "probe_and_snapshots_steps_per_second": round(snapshotted, 1),
        "probe_overhead_fraction": round(overhead, 4),
        "snapshot_overhead_fraction": round(snapshot_overhead, 4),
        "raw_probe_overhead_fraction": round(raw_overhead, 4),
        "raw_snapshot_overhead_fraction": round(raw_snapshot_overhead, 4),
        "noisy": noisy,
        "events_per_run": events,
        "phase_profile": profile.to_dict(),
    }
    if not quick:
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Telemetry probe overhead", [
        ("probe off (steps/s)", "-", f"{bare:,.0f}"),
        ("probe on (steps/s)", "-", f"{probed:,.0f}"),
        ("probe + snapshots (steps/s)", "-", f"{snapshotted:,.0f}"),
        ("probe overhead", f"<{MAX_OVERHEAD:.0%}", f"{overhead:.1%}"),
        ("snapshot overhead", f"<{MAX_SNAPSHOT_OVERHEAD:.0%}",
         f"{snapshot_overhead:.1%}"),
        ("noise flag", "-", str(noisy).lower()),
        ("hot-loop phases", "-",
         " ".join(f"{name}={fraction:.0%}" for name, fraction
                  in profile.phase_fractions().items())),
    ], notes=f"recorded to {BENCH_FILE.name}")

    assert overhead < MAX_OVERHEAD
    assert snapshot_overhead < MAX_SNAPSHOT_OVERHEAD
