"""Ablation: partial deployment cost/coverage (Sec. IV-A's OEM trade-off).

"If the OEM decides to save cost and only equip ECUs with safety-critical
functionality, this is possible... at the expense of the unpatched ECUs not
being able to detect spoofing attacks."  The planner quantifies the curve;
the simulator verifies its two extreme points end-to-end.

Regenerate:  pytest benchmarks/bench_ablation_deployment.py --benchmark-only -s
"""

from conftest import report
from repro.analysis.coverage import deployments_by_budget, plan_coverage
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.config import IvnConfig
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode

IVN = IvnConfig(ecu_ids=(0x0A0, 0x173, 0x2F0, 0x3D5))


def test_deployment_budget_curve(benchmark):
    curve = benchmark(lambda: deployments_by_budget(IVN, [1, 2, 3, 4]))
    rows = []
    for budget, plan in curve:
        rows.append((
            f"budget {budget}: DoS coverage / spoof-protected ECUs",
            "full DoS from budget 1 (top-ID first)",
            f"{'full' if plan.full_dos_coverage else 'partial'} / "
            f"{len(plan.spoof_protected)} of {len(IVN)}",
        ))
    report("Deployment ablation — cost/coverage curve", rows)
    assert curve[0][1].full_dos_coverage
    assert not curve[0][1].full_spoof_coverage
    assert curve[-1][1].full_spoof_coverage


def test_planner_extremes_verified_on_the_bus(benchmark):
    """Cross-check both planner verdicts in simulation: the predicted gap
    is exploitable, the predicted coverage holds."""
    def run():
        from repro.bus.events import BusOffEntered

        # Equip only the LOWEST ECU: the planner says 0x200 is uncovered.
        plan = plan_coverage(IVN, [0x0A0])
        sim = CanBusSimulator()
        sim.add_node(MichiCanNode("d_a0", IVN.ecu_config(0x0A0)))
        gap_attacker = sim.add_node(CanNode("gap_attacker"))
        gap_attacker.send(CanFrame(0x200, bytes(8)))
        covered_attacker = sim.add_node(CanNode("covered_attacker"))
        covered_attacker.send(CanFrame(0x050, bytes(8)))
        sim.run(8_000)
        busoffs = {e.node for e in sim.events_of(BusOffEntered)}
        return plan, "gap_attacker" in busoffs, "covered_attacker" in busoffs

    plan, gap_bused_off, covered_bused_off = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report("Deployment ablation — planner vs simulator", [
        ("planner: 0x200 uncovered", True, 0x200 in plan.dos_uncovered),
        ("simulator: 0x200 attacker never bused off", True,
         not gap_bused_off),
        ("planner: 0x050 covered", True, 0x050 in plan.dos_covered),
        ("simulator: 0x050 attacker bused off", True, covered_bused_off),
    ])
    assert 0x200 in plan.dos_uncovered and not gap_bused_off
    assert 0x050 in plan.dos_covered and covered_bused_off
