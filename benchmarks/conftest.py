"""Shared helpers for the paper-reproduction benchmarks.

Every bench prints a ``paper vs measured`` block so the EXPERIMENTS.md
numbers can be regenerated with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import pytest

Row = Tuple[str, object, object]


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink benchmark workloads for a CI smoke run; quick runs "
             "never overwrite the recorded BENCH_*.json baselines",
    )


@pytest.fixture
def quick(request) -> bool:
    """True when the run was invoked with ``--quick``."""
    return request.config.getoption("--quick")


def report(title: str, rows: Iterable[Row], notes: Optional[str] = None) -> None:
    """Print a paper-vs-measured table for one experiment."""
    print(f"\n=== {title}")
    print(f"    {'metric':<42} {'paper':>16} {'measured':>16}")
    for metric, paper, measured in rows:
        paper_text = _fmt(paper)
        measured_text = _fmt(measured)
        print(f"    {metric:<42} {paper_text:>16} {measured_text:>16}")
    if notes:
        print(f"    note: {notes}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
