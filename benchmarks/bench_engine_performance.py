"""Engine performance: simulated bit throughput.

Not a paper result — the guardrail that keeps the reproduction usable.  The
headline experiments need ~10^5 simulated bits each; the full Table II run
is ~6x10^5.  This bench tracks how many bit times per second the engine
sustains on loaded topologies, so regressions in the hot path (output /
wired-AND / observe) are caught by the numbers pytest-benchmark reports.
"""

from repro.attacks.dos import DosAttacker
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler


def make_busy_bus(nodes=6):
    sim = CanBusSimulator(record_wire=False)
    for index in range(nodes):
        sim.add_node(CanNode(f"ecu{index}", scheduler=PeriodicScheduler(
            [PeriodicMessage(0x100 + 0x40 * index, period_bits=800)])))
    return sim


def test_engine_throughput_benign(benchmark):
    sim = make_busy_bus()
    benchmark.pedantic(lambda: sim.run(20_000), rounds=3, iterations=1)
    assert sim.time >= 60_000  # the engine actually advanced


def test_engine_throughput_under_attack(benchmark):
    sim = CanBusSimulator(record_wire=False)
    sim.add_node(MichiCanNode("defender", range(0x100)))
    sim.add_node(CanNode("benign", scheduler=PeriodicScheduler(
        [PeriodicMessage(0x300, period_bits=900)])))
    sim.add_node(DosAttacker("attacker", 0x064))
    benchmark.pedantic(lambda: sim.run(20_000), rounds=3, iterations=1)
    assert sim.time >= 60_000


def test_frame_serialization_throughput(benchmark):
    from repro.can.bitstream import serialize_frame
    from repro.can.frame import CanFrame

    frames = [CanFrame(i, bytes(8)) for i in range(0, 2048, 37)]
    benchmark(lambda: [serialize_frame(f) for f in frames])


def test_fsm_generation_throughput(benchmark):
    from repro.core.config import IvnConfig
    from repro.core.fsm import DetectionFsm

    ivn = IvnConfig(ecu_ids=tuple(range(0x80, 0x700, 0x30)))
    benchmark(lambda: DetectionFsm(ivn.detection_range(ivn.highest_id)))
