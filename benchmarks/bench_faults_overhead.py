"""Fault-hook overhead: bare wire vs an inactive FaultInjectingWire.

Runs the restbus fight scenario twice — on the plain wire and with a
fault plan applied whose windows never open — and records the steps/sec
of each to ``BENCH_faults.json`` in the repo root.

The contract this bench enforces: fault injection is opt-in, and even
when a plan is *installed* its inactive hooks (window checks on the wire
and node method wrappers) may cost at most ``MAX_OVERHEAD`` relative
throughput.  Scenarios that carry no plan at all pay nothing — they
never leave the plain-wire hot path.

Regenerate:  pytest benchmarks/bench_faults_overhead.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.experiments.campaign import ScenarioSpec
from repro.faults.apply import apply_fault_plan
from repro.faults.plan import FaultPlan, FaultSpec, FaultWindow

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_faults.json"

#: Inactive-fault-hook throughput must stay within this fraction of bare.
MAX_OVERHEAD = 0.10

SCENARIO = "restbus_fight"
ROUNDS = 3

#: Far beyond any bench duration: the hooks stay installed but dormant.
NEVER = FaultWindow(10**12)


def _dormant_plan():
    return FaultPlan((
        FaultSpec(name="flips", kind="wire.flip", window=NEVER,
                  params={"flip_probability": 1.0}, seed=1),
        FaultSpec(name="stuck", kind="node.tx_stuck", target="michican",
                  window=NEVER),
    ))


def _run_once(duration_bits, faulted=False):
    setup = ScenarioSpec(SCENARIO, duration_bits=duration_bits).build()
    sim = setup.sim
    if faulted:
        apply_fault_plan(sim, _dormant_plan())
    started = time.perf_counter()
    sim.run(duration_bits)
    wall = time.perf_counter() - started
    return duration_bits / wall


def _best_of(rounds, duration_bits, **kwargs):
    best = 0.0
    for _ in range(rounds):
        best = max(best, _run_once(duration_bits, **kwargs))
    return best


def test_inactive_fault_hook_overhead(benchmark, quick):
    duration = 10_000 if quick else 100_000
    rounds = 1 if quick else ROUNDS

    bare = _best_of(rounds, duration)
    faulted = _best_of(rounds, duration, faulted=True)
    benchmark.pedantic(lambda: _run_once(duration, faulted=True),
                       rounds=1, iterations=1)

    overhead = 1.0 - faulted / bare

    payload = {
        "scenario": SCENARIO,
        "duration_bits": duration,
        "rounds": rounds,
        "cpu_count": os.cpu_count() or 1,
        "bare_steps_per_second": round(bare, 1),
        "inactive_faults_steps_per_second": round(faulted, 1),
        "inactive_fault_overhead_fraction": round(overhead, 4),
    }
    if not quick:
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Inactive fault-hook overhead", [
        ("bare wire (steps/s)", "-", f"{bare:,.0f}"),
        ("dormant plan (steps/s)", "-", f"{faulted:,.0f}"),
        ("overhead", f"<{MAX_OVERHEAD:.0%}", f"{overhead:.1%}"),
    ], notes=f"recorded to {BENCH_FILE.name}")

    assert overhead < MAX_OVERHEAD
