"""Campaign service throughput: batched workers vs process-per-spec.

The ``<1.1x`` speedup warning in ``CampaignReport.render`` has a
concrete cause: on short windows the per-spec process spawn rivals the
per-spec simulation time, so parallel fan-out cannot pay for itself.
The batched campaign service (``repro serve``) exists to delete that
tax — its workers are spawned once and fed many specs over a pipe.

This bench proves the fix with numbers, recorded to
``BENCH_service.json`` in the repo root:

* a spawn-bound workload (many very short specs) run two ways with the
  same worker count — ``Campaign`` forced into one-process-per-spec
  mode vs ``CampaignService`` batching over long-lived workers;
* the batched service must be **>= 2x** faster on that workload, and
  the two reports must be payload-identical (timing metadata aside);
* per-spec overhead for both paths, so the recorded trajectory shows
  what a lease round trip costs against a process spawn.

Quick (``--quick``) runs shrink the workload and skip the speedup gate
(CI smoke containers are too noisy) but still check determinism.

Regenerate:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
"""

import json
import pathlib
import time

from conftest import report
from repro.experiments.campaign import Campaign, ScenarioSpec
from repro.experiments.service.service import CampaignService

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_service.json"

TARGET_SPEEDUP = 2.0
WORKERS = 2


def short_specs(n, duration_bits=300):
    """A spawn-bound workload: windows so short the fork tax dominates.

    ~300 bits of exp4 simulate in a couple of milliseconds; a worker
    fork costs several times that, so process-per-spec execution is
    mostly paying for processes, not simulation.
    """
    return [ScenarioSpec("exp4", seed=seed, duration_bits=duration_bits)
            for seed in range(n)]


def run_process_per_spec(specs):
    """The old cost model: every spec pays for its own worker process.

    A per-spec timeout forces ``Campaign`` to isolate each spec in a
    fresh subprocess even before fan-out — exactly the overhead the
    service amortizes away.
    """
    started = time.perf_counter()
    outcome = Campaign(specs, n_workers=WORKERS,
                       timeout_seconds=120.0).run()
    return outcome, time.perf_counter() - started


def run_batched_service(specs, tmp_path):
    """The service cost model: spawn the pool once, stream specs to it."""
    service = CampaignService(str(tmp_path / "bench-journal.jsonl"),
                              n_workers=WORKERS, heartbeat_seconds=0.5)
    started = time.perf_counter()
    service.start()
    try:
        service.submit_specs(specs)
        # Pump hard: this measures lease round trips, not sleep cadence.
        assert service.run_until_idle(poll_seconds=0.001, timeout=600)
    finally:
        service.close()
    return service.report(), time.perf_counter() - started


def _record(payload):
    BENCH_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_batched_service_beats_process_per_spec(benchmark, quick, tmp_path):
    n_specs = 6 if quick else 24
    specs = short_specs(n_specs)

    per_spec, per_spec_wall = run_process_per_spec(specs)
    batched, batched_wall = benchmark.pedantic(
        run_batched_service, args=(specs, tmp_path), rounds=1, iterations=1)

    # Determinism first: the execution strategy is timing metadata.
    assert not per_spec.failures and not batched.failures
    assert batched.payload_equal(per_spec)

    speedup = per_spec_wall / batched_wall
    spawn_ms = per_spec.mean_spawn_overhead_seconds() * 1000
    per_spec_ms = per_spec_wall / n_specs * 1000
    batched_ms = batched_wall / n_specs * 1000

    if not quick:
        _record({
            "workload": {
                "scenario": "exp4",
                "n_specs": n_specs,
                "duration_bits": specs[0].duration_bits,
                "n_workers": WORKERS,
            },
            "process_per_spec": {
                "wall_seconds": round(per_spec_wall, 3),
                "per_spec_ms": round(per_spec_ms, 1),
                "mean_spawn_overhead_ms": round(spawn_ms, 1),
            },
            "batched_service": {
                "wall_seconds": round(batched_wall, 3),
                "per_spec_ms": round(batched_ms, 1),
                "worker_utilization": batched.worker_utilization(),
            },
            "speedup": round(speedup, 2),
            "target_speedup": TARGET_SPEEDUP,
        })

    report("Campaign service — batched workers vs process-per-spec", [
        ("specs (short windows)", "-", n_specs),
        ("process-per-spec wall (s)", "-", f"{per_spec_wall:.2f}"),
        (f"batched service wall (s), {WORKERS} workers", "-",
         f"{batched_wall:.2f}"),
        ("mean spawn overhead per spec (ms)", "-", f"{spawn_ms:.0f}"),
        ("per-spec cost, batched (ms)", "-", f"{batched_ms:.0f}"),
        ("speedup", f">= {TARGET_SPEEDUP}x", f"{speedup:.1f}x"),
        ("payloads bit-identical", True, True),
    ], notes=f"recorded to {BENCH_FILE.name}; this is the workload the "
             f"<1.1x render() warning points at `repro serve` for")
    if not quick:
        assert speedup >= TARGET_SPEEDUP
