"""Sec. V-E: bus load — MichiCAN's transient spike vs Parrot's flooding.

Paper claims reproduced here:

* steady-state load via b = (s_f/f_baud) * sum(1/p_m);
* a counterattacked message occupies the bus ~10x longer than a clean one
  (2.5 ms -> ~25 ms at 50 kbit/s);
* relative to deadlines that is 2.5-5 % (low priority) / 25 % (high);
* Parrot floods at 125/128 ~ 97.7 %; MichiCAN's defense-time load is at
  least 2x lower.

Regenerate:  pytest benchmarks/bench_busload.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.busload import (
    bus_load,
    compare_defenses,
    counterattack_spike_factor,
    deadline_relative_overhead,
    parrot_flooding_overhead,
)
from repro.experiments.scenarios import experiment_4, parrot_defense_setup
from repro.trace.recorder import LogicTrace
from repro.workloads.matrix import theoretical_bus_load
from repro.workloads.vehicles import vehicle_buses


def test_busload_formula_on_vehicle_matrices(benchmark):
    loads = benchmark(lambda: {
        vehicle: theoretical_bus_load(vehicle_buses(vehicle)[0], 500_000)
        for vehicle in ("veh_a", "veh_b", "veh_c", "veh_d")
    })
    rows = [(f"{vehicle} bus 1 steady-state load", "~40% (real vehicles)",
             f"{load:.1%}") for vehicle, load in loads.items()]
    report("Sec. V-E — steady-state bus load", rows)
    for load in loads.values():
        assert 0.05 <= load <= 0.8


def test_busload_counterattack_spike(benchmark):
    """Measure the spike on an actual Exp. 4 fight."""
    def run():
        setup = experiment_4()
        result = setup.run(40_000)
        episode = result.episodes["attacker"][0]
        trace = LogicTrace(setup.sim.wire.history)
        busy_during = trace.busy_fraction(start=episode.start,
                                          end=episode.end)
        return episode, busy_during

    episode, busy_during = benchmark.pedantic(run, rounds=1, iterations=1)
    spike = counterattack_spike_factor(episode.duration_bits)
    report("Sec. V-E — counterattack spike", [
        ("attacked message occupies (bits)", "~1250 (25 ms @50k)",
         episode.duration_bits),
        ("spike vs clean transmission", "~10x", f"{spike:.1f}x"),
        ("bus busy during the fight", "~100% briefly",
         f"{busy_during:.1%}"),
        ("overhead vs 500 ms deadline", "5%",
         f"{deadline_relative_overhead(episode.duration_bits, 25_000):.1%}"),
        ("overhead vs 1000 ms deadline", "2.5%",
         f"{deadline_relative_overhead(episode.duration_bits, 50_000):.1%}"),
        ("overhead vs 100 ms deadline", "25%",
         f"{deadline_relative_overhead(episode.duration_bits, 5_000):.1%}"),
    ])
    assert 8.0 <= spike <= 12.0
    assert deadline_relative_overhead(episode.duration_bits, 25_000) == \
        pytest.approx(0.05, rel=0.25)


def test_busload_michican_vs_parrot(benchmark):
    def run():
        # Parrot, measured while armed.
        setup = parrot_defense_setup()
        setup.sim.run(60_000)
        parrot_busy = LogicTrace(setup.sim.wire.history).busy_fraction(
            start=2_000)
        # MichiCAN, amortised over a 1-second window with one fight.
        comparison = compare_defenses(
            steady_state_load=0.40, busoff_bits=1_250,
            busoff_window_bits=50_000,
        )
        return parrot_busy, comparison

    parrot_busy, comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Sec. V-E — defense-time bus load", [
        ("Parrot flooding (theory)", "97.7%",
         f"{parrot_flooding_overhead():.1%}"),
        ("Parrot flooding (measured)", "~100%", f"{parrot_busy:.1%}"),
        ("MichiCAN during bus-off window", "steady + 2.5%",
         f"{comparison.michican_during_busoff:.1%}"),
        ("MichiCAN advantage", ">= 2x",
         f"{comparison.michican_advantage:.1f}x"),
    ])
    assert parrot_busy > 0.9
    assert comparison.michican_advantage >= 2.0


def test_busload_formula_unit(benchmark):
    value = benchmark(lambda: bus_load([0.01, 0.02, 0.1], 500_000))
    assert value == pytest.approx(125 / 500_000 * (100 + 50 + 10))
