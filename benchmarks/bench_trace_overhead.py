"""Tracing overhead: bare engine vs an attached TraceCollector.

Runs the same fight scenario three ways — bare (tracing off), with a
:class:`~repro.obs.tracing.TraceCollector` attached, and with engine
annotation spans also enabled — and records the steps/sec of each to
``BENCH_trace.json`` in the repo root.

The contract this bench enforces: tracing is opt-in.  With no collector
attached the engine pays nothing beyond the existing event dispatch, so
the tracing-off path must match the bare baseline within
``MAX_OFF_OVERHEAD`` (pure measurement noise — there is no hook to pay
for).  With a collector attached the span stitching may cost at most
``MAX_ON_OVERHEAD`` relative throughput.

Methodology mirrors ``bench_metrics_overhead``: shared warmup, then
interleaved rounds with best-per-configuration, overheads clamped at
zero with a ``noisy`` flag for negative raw values.

Regenerate:  pytest benchmarks/bench_trace_overhead.py --benchmark-only -s
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.experiments.campaign import ScenarioSpec
from repro.obs.tracing import TraceCollector

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_trace.json"

#: Tracing-off throughput must match bare within this fraction (noise).
MAX_OFF_OVERHEAD = 0.02

#: Collector-attached throughput must stay within this fraction of bare.
MAX_ON_OVERHEAD = 0.20

SCENARIO = "exp4"
ROUNDS = 3

#: The timed configurations, in within-round execution order.
CONFIGS = (
    ("bare", {}),
    ("off", {}),  # tracing importable but detached: must equal bare
    ("traced", {"traced": True}),
    ("engine_spans", {"traced": True, "engine_spans": True}),
)


def _run_once(duration_bits, traced=False, engine_spans=False):
    """Build a fresh scenario, run it, return (steps/s, span count)."""
    setup = ScenarioSpec(SCENARIO, duration_bits=duration_bits).build()
    sim = setup.sim
    collector = None
    if traced:
        collector = TraceCollector(sim, include_engine_spans=engine_spans)
    started = time.perf_counter()
    sim.advance(duration_bits)
    wall = time.perf_counter() - started
    spans = 0
    if collector is not None:
        spans = len(collector.finalize())
    return duration_bits / wall, spans


def _measure_interleaved(rounds, duration_bits):
    best = {name: 0.0 for name, _ in CONFIGS}
    spans = 0
    for _ in range(rounds):
        for name, kwargs in CONFIGS:
            rate, seen = _run_once(duration_bits, **kwargs)
            if rate > best[name]:
                best[name] = rate
            if name == "traced":
                spans = seen
    return best, spans


def test_trace_overhead(benchmark, quick):
    duration = 10_000 if quick else 100_000
    rounds = 1 if quick else ROUNDS

    # Shared warmup: every configuration is timed against hot caches.
    _run_once(min(duration, 20_000), traced=True)

    best, spans = _measure_interleaved(rounds, duration)
    bare = best["bare"]
    off = best["off"]
    traced = best["traced"]
    annotated = best["engine_spans"]
    benchmark.pedantic(lambda: _run_once(duration, traced=True),
                       rounds=1, iterations=1)

    raw_off = 1.0 - off / bare
    raw_on = 1.0 - traced / bare
    raw_annotated = 1.0 - annotated / bare
    off_overhead = max(0.0, raw_off)
    on_overhead = max(0.0, raw_on)
    annotated_overhead = max(0.0, raw_annotated)
    noisy = raw_off < 0 or raw_on < 0 or raw_annotated < 0

    payload = {
        "scenario": SCENARIO,
        "duration_bits": duration,
        "rounds": rounds,
        "cpu_count": os.cpu_count() or 1,
        "trace_off_steps_per_second": round(off, 1),
        "trace_on_steps_per_second": round(traced, 1),
        "engine_spans_steps_per_second": round(annotated, 1),
        "bare_steps_per_second": round(bare, 1),
        "trace_off_overhead_fraction": round(off_overhead, 4),
        "trace_on_overhead_fraction": round(on_overhead, 4),
        "engine_spans_overhead_fraction": round(annotated_overhead, 4),
        "raw_trace_off_overhead_fraction": round(raw_off, 4),
        "raw_trace_on_overhead_fraction": round(raw_on, 4),
        "noisy": noisy,
        "spans_per_run": spans,
    }
    if not quick:
        BENCH_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    report("Trace collector overhead", [
        ("bare (steps/s)", "-", f"{bare:,.0f}"),
        ("tracing off (steps/s)", "-", f"{off:,.0f}"),
        ("tracing on (steps/s)", "-", f"{traced:,.0f}"),
        ("engine spans on (steps/s)", "-", f"{annotated:,.0f}"),
        ("tracing-off overhead", f"<{MAX_OFF_OVERHEAD:.0%}",
         f"{off_overhead:.1%}"),
        ("tracing-on overhead", f"<{MAX_ON_OVERHEAD:.0%}",
         f"{on_overhead:.1%}"),
        ("noise flag", "-", str(noisy).lower()),
        ("spans per run", "-", spans),
    ], notes=f"recorded to {BENCH_FILE.name}")

    assert off_overhead < MAX_OFF_OVERHEAD
    assert on_overhead < MAX_ON_OVERHEAD
