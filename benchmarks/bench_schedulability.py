"""Extension: schedulability impact of MichiCAN's counterattacks.

The paper argues feasibility from deadlines (Sec. V-C): the minimum deadline
for periodic messages is ~10 ms, i.e. 5000 bits at 500 kbit/s, so bus-off
fights up to A = 4 attackers fit.  This bench runs the full Davis et al.
response-time analysis over the synthetic vehicle matrices with the fight
injected as a blocking term, making that argument quantitative per message.

Regenerate:  pytest benchmarks/bench_schedulability.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.schedulability import (
    analyze,
    deadline_misses_under_attack,
    is_schedulable,
    max_tolerable_fight_bits,
)
from repro.workloads.vehicles import all_vehicle_buses, vehicle_buses

FIGHTS = {1: 1_250, 2: 2_503, 3: 3_569, 4: 4_711, 5: 5_834}


def test_schedulability_baseline(benchmark):
    results = benchmark.pedantic(
        lambda: {m.name: is_schedulable(m, 500_000)
                 for m in all_vehicle_buses()},
        rounds=1, iterations=1,
    )
    rows = [(f"{name} schedulable (no attack)", True, ok)
            for name, ok in sorted(results.items())]
    report("Schedulability — all eight vehicle buses", rows)
    assert all(results.values())


def test_schedulability_under_fights(benchmark):
    matrix, _ = vehicle_buses("veh_d")

    def run():
        return {
            attackers: deadline_misses_under_attack(matrix, 500_000, bits)
            for attackers, bits in FIGHTS.items()
        }

    misses = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for attackers, bits in FIGHTS.items():
        rows.append((
            f"A={attackers} fight ({bits} bits): deadline misses",
            "none" if attackers <= 4 else "expected",
            len(misses[attackers]),
        ))
    report(
        "Schedulability — fights as blocking terms (Veh. D bus 1)", rows,
        notes="the paper's coarse bound (fight < 5000-bit deadline) ignores "
              "baseline interference; the full analysis shows this bus "
              "already misses at A=4 — a sharper result than Sec. V-C",
    )
    for attackers in (1, 2, 3):
        assert misses[attackers] == []
    assert misses[5], "A=5 must break deadlines (the paper's claim)"


def test_max_tolerable_fight(benchmark):
    matrix, _ = vehicle_buses("veh_d")
    tolerance = benchmark.pedantic(
        lambda: max_tolerable_fight_bits(matrix, 500_000),
        rounds=1, iterations=1,
    )
    results = analyze(matrix, 500_000)
    tightest = min(results.values(), key=lambda r: r.slack_bits)
    report("Schedulability — maximum tolerable fight (Veh. D bus 1)", [
        ("largest fight without a miss (bits)",
         "<= 5000 (10 ms minus interference)", tolerance),
        ("tightest message", "-", f"0x{tightest.can_id:03X}"),
        ("its slack without attack (bits)", "-", tightest.slack_bits),
    ])
    # The tolerable fight equals the tightest message's residual slack —
    # strictly below the raw 5000-bit deadline the paper divides by.
    assert FIGHTS[3] <= tolerance <= 5_000
    assert tolerance == pytest.approx(tightest.slack_bits, abs=140)
