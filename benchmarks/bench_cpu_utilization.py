"""Sec. V-D: CPU utilization of the interrupt handler.

Paper anchors (combined load under restbus traffic):

* Arduino Due @ 125 kbit/s: ~40 % (full scenario), ~30 % (light),
  "implying an 80 % load for a 250 kbit/s bus";
* NXP S32K144 @ 500 kbit/s: ~44 % — which is why the production-grade MCU
  handles production bus speeds while the Due tops out at 125 kbit/s.

Two measurement paths are cross-checked: the closed-form model and the
cost-per-executed-path accounting over a real simulated restbus+attack run
(the analogue of the paper's ESP8266 cycle counting).

Regenerate:  pytest benchmarks/bench_cpu_utilization.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.cpu import (
    ARDUINO_DUE,
    NXP_S32K144,
    PROFILES,
    analytic_utilization,
    max_feasible_bus_speed,
    utilization_from_counters,
)
from repro.core.fsm import DetectionFsm
from repro.experiments.scenarios import experiment_3


def test_cpu_paper_anchors(benchmark):
    def run():
        return {
            "due_full_125": analytic_utilization(ARDUINO_DUE, 125_000),
            "due_light_125": analytic_utilization(ARDUINO_DUE, 125_000,
                                                  light_scenario=True),
            "due_full_250": analytic_utilization(ARDUINO_DUE, 250_000),
            "nxp_full_500": analytic_utilization(NXP_S32K144, 500_000),
        }

    loads = benchmark(run)
    report("Sec. V-D — CPU utilization anchors", [
        ("Due @125k full (combined)", "40%",
         f"{loads['due_full_125'].combined_load:.1%}"),
        ("Due @125k light (combined)", "30%",
         f"{loads['due_light_125'].combined_load:.1%}"),
        ("Due @250k full (combined)", "80%",
         f"{loads['due_full_250'].combined_load:.1%}"),
        ("S32K144 @500k full (combined)", "44%",
         f"{loads['nxp_full_500'].combined_load:.1%}"),
    ])
    assert loads["due_full_125"].combined_load == pytest.approx(0.40, abs=0.07)
    assert loads["due_light_125"].combined_load == pytest.approx(0.30, abs=0.06)
    assert loads["due_full_250"].combined_load == pytest.approx(0.80, abs=0.14)
    assert loads["nxp_full_500"].combined_load == pytest.approx(0.44, abs=0.09)


def test_cpu_from_simulated_run(benchmark):
    """Counter-based accounting over the Exp. 3 run (restbus + DoS)."""
    def run():
        setup = experiment_3()
        setup.run(60_000)
        counters = setup.defender.firmware.counters
        states = setup.defender.firmware.fsm.num_states
        return {
            profile_name: utilization_from_counters(
                profile, counters, 125_000, fsm_states=states)
            for profile_name, profile in PROFILES.items()
        }, counters

    loads, counters = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(f"{name} combined @125k", "-",
             f"{load.combined_load:.1%}") for name, load in loads.items()]
    rows.append(("handler invocations", "-", counters.interrupts))
    rows.append(("frame-path share", "-",
                 f"{counters.frame_bits / counters.interrupts:.1%}"))
    report("Sec. V-D — measured over Exp. 3 traffic", rows)
    # The Due must be the most loaded profile; all others below it.
    due = loads["arduino_due"].combined_load
    assert all(load.combined_load <= due for load in loads.values())
    assert 0.2 <= due <= 0.6


def test_cpu_feasible_speeds(benchmark):
    speeds = benchmark(lambda: {
        name: max_feasible_bus_speed(profile)
        for name, profile in PROFILES.items()
    })
    report("Sec. V-D — maximum feasible bus speed", [
        ("Arduino Due", "<= 250 kbit/s (unreliable above 125)",
         speeds["arduino_due"]),
        ("NXP S32K144", ">= 500 kbit/s", speeds["nxp_s32k144"]),
        ("SAM V71", ">= 500 kbit/s", speeds["sam_v71"]),
        ("SPC58EC", ">= 500 kbit/s", speeds["spc58ec"]),
    ])
    assert speeds["arduino_due"] <= 250_000
    assert speeds["nxp_s32k144"] >= 500_000


def test_cpu_scales_with_fsm_complexity(benchmark):
    """'CPU load depends on FSM complexity': bigger detection FSMs cost
    more cycles per ID bit."""
    def run():
        small = DetectionFsm(range(0x40))
        large = DetectionFsm(set(range(0x700)) - set(range(0x80, 0x700, 7)))
        return (
            analytic_utilization(ARDUINO_DUE, 125_000,
                                 fsm_states=small.num_states),
            analytic_utilization(ARDUINO_DUE, 125_000,
                                 fsm_states=large.num_states),
            small.num_states, large.num_states,
        )

    small_load, large_load, small_states, large_states = benchmark(run)
    report("Sec. V-D — FSM complexity", [
        (f"combined load, {small_states}-state FSM", "-",
         f"{small_load.combined_load:.1%}"),
        (f"combined load, {large_states}-state FSM", "-",
         f"{large_load.combined_load:.1%}"),
    ])
    assert large_load.combined_load > small_load.combined_load
