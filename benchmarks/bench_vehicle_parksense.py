"""Sec. V-F: the on-vehicle test — targeted DoS against ParkSense.

Paper: injecting CAN ID 0x25F starves the park-assist messages (lowest
relevant ID 0x260); the cluster shows "PARKSENSE UNAVAILABLE SERVICE
REQUIRED" and automatic braking is lost.  With the MichiCAN dongle on the
OBD-II splitter "the DoS attack was eradicated within 32 transmission
attempts, restoring the park assist system. A DoS attack never disables the
park assist if the Arduino Due with MichiCAN is connected."

Regenerate:  pytest benchmarks/bench_vehicle_parksense.py --benchmark-only -s
"""

from conftest import report
from repro.experiments.scenarios import parksense_experiment
from repro.vehicle.features import FeatureState
from repro.vehicle.parksense import DASHBOARD_MESSAGE

DURATION_BITS = 400_000


def test_parksense_undefended(benchmark):
    outcome = benchmark.pedantic(
        lambda: parksense_experiment(with_michican=False,
                                     duration_bits=DURATION_BITS),
        rounds=1, iterations=1,
    )
    report("Sec. V-F — attack without MichiCAN", [
        ("feature state", "unavailable", outcome.feature.state.value),
        ("cluster message", DASHBOARD_MESSAGE,
         outcome.dashboard[0] if outcome.dashboard else "(none)"),
        ("automatic braking", "lost",
         "available" if outcome.feature.automatic_braking_available
         else "lost"),
        ("attacker ever bused off", False, outcome.attacker_busoff_count > 0),
    ])
    assert outcome.feature.state is FeatureState.UNAVAILABLE
    assert DASHBOARD_MESSAGE in outcome.dashboard
    assert outcome.attacker_busoff_count == 0


def test_parksense_defended(benchmark):
    outcome = benchmark.pedantic(
        lambda: parksense_experiment(with_michican=True,
                                     duration_bits=DURATION_BITS),
        rounds=1, iterations=1,
    )
    report("Sec. V-F — attack with the MichiCAN dongle", [
        ("feature state", "available", outcome.feature.state.value),
        ("cluster faults", "(none)", outcome.dashboard or "(none)"),
        ("automatic braking", "available",
         "available" if outcome.feature.automatic_braking_available
         else "lost"),
        ("attacker bus-offs (persistent attack)", ">= 1",
         outcome.attacker_busoff_count),
        ("downtime windows", 0, len(outcome.downtime_windows)),
    ])
    assert outcome.feature.state is FeatureState.AVAILABLE
    assert outcome.dashboard == []
    assert outcome.attacker_busoff_count >= 1
    assert outcome.downtime_windows == []
