"""Ablation: distributed detection redundancy (DESIGN.md decision #4).

Sec. IV-A argues every MichiCAN node flags simultaneously, so the defense
survives the failure of all but one deployed node ("Even if |E|-1 ECUs fail
..., one ECU can still detect the attack"), and the light scenario halves
the per-node work without losing DoS coverage.

Regenerate:  pytest benchmarks/bench_ablation_redundancy.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.config import IvnConfig, Scenario
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode

IVN = IvnConfig(ecu_ids=(0x0A0, 0x173, 0x2F0, 0x3D5))


def fight_with_defenders(defender_ids, scenario=Scenario.FULL, limit=8_000):
    ivn = IvnConfig(ecu_ids=IVN.ecu_ids, scenario=scenario)
    sim = CanBusSimulator(bus_speed=50_000)
    defenders = [
        sim.add_node(MichiCanNode(f"def_{can_id:03x}", ivn.ecu_config(can_id)))
        for can_id in defender_ids
    ]
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(0x064, bytes(8)))
    hit = sim.run_until(lambda s: attacker.is_bus_off, limit)
    return hit, defenders


@pytest.mark.parametrize("survivors", [1, 2, 3, 4])
def test_ablation_k_of_n_defenders(benchmark, survivors):
    defender_ids = IVN.ecu_ids[-survivors:]
    hit, defenders = benchmark.pedantic(
        lambda: fight_with_defenders(defender_ids), rounds=1, iterations=1)
    report(f"Ablation — {survivors} of 4 defenders alive", [
        ("attacker bused off", "yes", hit is not None),
        ("bus-off time (bits)", "~1250", hit),
        ("defenders that counterattacked", "-",
         sum(1 for d in defenders if d.counterattacks > 0)),
    ], notes="superimposed dominant pulses are harmless on the wired-AND bus")
    assert hit is not None
    assert 1_150 <= hit <= 1_500


def test_ablation_light_scenario_still_stops_dos(benchmark):
    """Only the upper half runs the full FSM, yet the DoS dies just as fast."""
    def run():
        full_hit, _ = fight_with_defenders(IVN.ecu_ids, Scenario.FULL)
        light_hit, light_defenders = fight_with_defenders(
            IVN.ecu_ids, Scenario.LIGHT)
        return full_hit, light_hit, light_defenders

    full_hit, light_hit, defenders = benchmark.pedantic(
        run, rounds=1, iterations=1)
    active = [d.name for d in defenders if d.counterattacks > 0]
    report("Ablation — light vs full deployment", [
        ("full-scenario bus-off (bits)", "~1250", full_hit),
        ("light-scenario bus-off (bits)", "same", light_hit),
        ("light: nodes that counterattacked", "upper half only", active),
    ])
    assert light_hit is not None
    assert abs(light_hit - full_hit) <= 100
    # In the light split only the upper half runs the DoS FSM.
    assert set(active) == {"def_2f0", "def_3d5"}
