"""Extension: quantifying the Sec. IV-E false-positive argument.

Paper: "although MichiCAN could potentially flag a legitimate node as an
attacker due to a bit flip, a node needs to encounter 32 consecutive errors
for the TEC to reach a level that would trigger a bus-off condition.  In
case of sporadic errors, the likelihood of hitting this threshold is near
zero."  The analytic boundary: TEC drifts +8 per destroyed attempt and -1
per success, so the per-attempt failure probability must exceed 1/9 before
the counter can climb — for ~111-bit frames that needs a per-bit flip rate
around 1e-3, orders of magnitude above automotive channels.

Regenerate:  pytest benchmarks/bench_extension_false_positives.py --benchmark-only -s
"""

from conftest import report
from repro.bus.events import BusOffEntered, FrameTransmitted
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.faults import FaultInjectingWire, flip_fault
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler


def run_noisy(flip_probability, duration=150_000, seed=4, defended=True):
    sim = CanBusSimulator(bus_speed=500_000)
    sim.wire = FaultInjectingWire([flip_fault(flip_probability, seed=seed)])
    if defended:
        sim.add_node(MichiCanNode("defender", range(0x100)))
    sender = sim.add_node(CanNode("sender", scheduler=PeriodicScheduler(
        [PeriodicMessage(0x123, period_bits=400)])))
    sim.add_node(CanNode("receiver"))
    sim.advance(duration)
    return {
        "flips": len(sim.wire.injectors[0].flips),
        "busoffs": len(sim.events_of(BusOffEntered)),
        "delivered": len([e for e in sim.events_of(FrameTransmitted)
                          if e.node == "sender"]),
        "sender_tec": sender.tec,
    }


def test_sporadic_noise_no_false_bus_off(benchmark):
    result = benchmark.pedantic(
        lambda: run_noisy(1e-4), rounds=1, iterations=1)
    report("False positives — sporadic noise (1e-4/bit), MichiCAN deployed", [
        ("injected bit flips", "-", result["flips"]),
        ("false bus-offs", 0, result["busoffs"]),
        ("legitimate frames delivered", "traffic flows",
         result["delivered"]),
        ("sender TEC at end", "decayed (< 128)", result["sender_tec"]),
    ])
    assert result["busoffs"] == 0
    assert result["sender_tec"] < 128
    assert result["delivered"] > 300


def test_noise_sweep_threshold(benchmark):
    """Sweep the flip rate across the analytic 1-in-9-attempts boundary."""
    def sweep():
        return {
            rate: run_noisy(rate, duration=80_000)
            for rate in (1e-5, 1e-4, 1e-3, 1e-2)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for rate, result in results.items():
        rows.append((
            f"flip rate {rate:g}: bus-offs / delivered",
            "0 below ~1e-3" if rate < 1e-3 else "confinement engages",
            f"{result['busoffs']} / {result['delivered']}",
        ))
    report("False positives — flip-rate sweep", rows,
           notes="+8/-1 TEC drift flips sign near a 1/9 frame-error rate")
    assert results[1e-5]["busoffs"] == 0
    assert results[1e-4]["busoffs"] == 0
    assert results[1e-2]["busoffs"] >= 1  # fault confinement, by design


def test_noise_triggered_counterattacks_self_heal(benchmark):
    """A flip inside an ID can draw one counterattack onto a legitimate
    frame; the clean retransmission passes, so no victim accumulates TEC."""
    def run():
        sim = CanBusSimulator(bus_speed=500_000)
        sim.wire = FaultInjectingWire([flip_fault(3e-4, seed=11)])
        defender = sim.add_node(MichiCanNode("defender", range(0x100)))
        sender = sim.add_node(CanNode("sender", scheduler=PeriodicScheduler(
            [PeriodicMessage(0x123, period_bits=500)])))
        sim.add_node(CanNode("receiver"))
        sim.advance(200_000)
        return defender.counterattacks, sender.tec, len(
            sim.events_of(BusOffEntered))

    counterattacks, sender_tec, busoffs = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report("False positives — noise-triggered counterattacks", [
        ("spurious counterattacks", "possible, rare", counterattacks),
        ("sender TEC at end", "< 128", sender_tec),
        ("bus-offs", 0, busoffs),
    ])
    assert busoffs == 0
    assert sender_tec < 128
