"""Ablation: detection without prevention (the paper's "Eradication" point).

The introduction: "Just detecting a DoS attack is not helpful as all
subsequent communications will be halted.  It is imperative to counter the
DoS attack."  MichiCAN with ``prevention_enabled=False`` is exactly an
ideal bit-level IDS — same FSM, same real-time detection — and the bench
shows detection alone leaves the bus dead.

Regenerate:  pytest benchmarks/bench_ablation_detection_only.py --benchmark-only -s
"""

from conftest import report
from repro.attacks.dos import TraditionalDosAttacker
from repro.bus.events import FrameTransmitted
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler


def run_mode(prevention_enabled):
    sim = CanBusSimulator(bus_speed=50_000)
    defender = sim.add_node(MichiCanNode(
        "defender", range(0x100), prevention_enabled=prevention_enabled))
    victim = sim.add_node(CanNode("victim", scheduler=PeriodicScheduler(
        [PeriodicMessage(0x300, period_bits=1_500)])))
    attacker = sim.add_node(TraditionalDosAttacker("attacker"))
    sim.run(30_000)
    delivered = len([e for e in sim.events_of(FrameTransmitted)
                     if e.node == "victim"])
    return {
        "detections": len(defender.detections),
        "counterattacks": defender.counterattacks,
        "victim_delivered": delivered,
        "victim_expected": 30_000 // 1_500,
        "attacker_busoff": attacker.is_bus_off or attacker.bus_off_count > 0,
    }


def test_detection_only_vs_prevention(benchmark):
    detect_only, full = benchmark.pedantic(
        lambda: (run_mode(False), run_mode(True)), rounds=1, iterations=1)
    report("Ablation — detection-only (ideal IDS) vs full MichiCAN", [
        ("detect-only: attacks detected", "> 0 (real-time)",
         detect_only["detections"]),
        ("detect-only: attacker eradicated", "no",
         detect_only["attacker_busoff"]),
        ("detect-only: victim delivery", "0 (bus halted)",
         f"{detect_only['victim_delivered']}/{detect_only['victim_expected']}"),
        ("full: attacker eradicated", "yes", full["attacker_busoff"]),
        ("full: victim delivery", "near-complete",
         f"{full['victim_delivered']}/{full['victim_expected']}"),
    ], notes="the intro's 'Eradication' requirement, quantified")
    assert detect_only["detections"] > 0
    assert not detect_only["attacker_busoff"]
    assert detect_only["victim_delivered"] == 0
    assert full["attacker_busoff"]
    assert full["victim_delivered"] >= 0.85 * full["victim_expected"]
