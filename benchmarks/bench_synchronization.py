"""Extension: quantifying the Sec. IV-C synchronization design.

The paper dismisses the naive free-running-timer approach for two reasons —
(i) the sample position within the bit is uncontrolled, and (ii) oscillator
drift accumulates — and fixes both with a hard sync at each SOF plus the
calibrated fudge factor.  This bench measures exactly that on serialized
frame waveforms.

Regenerate:  pytest benchmarks/bench_synchronization.py --benchmark-only -s
"""

from conftest import report
from repro.can.bitstream import serialize_frame
from repro.can.frame import CanFrame
from repro.core.synchronization import (
    SyncConfig,
    compare_sampling_schemes,
    max_tolerable_drift_ppm,
    sample_with_hard_sync,
)


def _frame_levels(can_id=0x2A5):
    return [b.level for b in serialize_frame(CanFrame(can_id, bytes(8)))]


def test_hard_sync_vs_free_running(benchmark):
    def run():
        levels = _frame_levels()
        results = {}
        for drift in (0, 100, 300, 1_000):
            hard, naive = compare_sampling_schemes(
                levels, SyncConfig(bus_speed=500_000, drift_ppm=drift),
                initial_phase=0.03)
            results[drift] = (len(hard.missampled), len(naive.missampled))
        return results, len(levels)

    results, frame_bits = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for drift, (hard_errors, naive_errors) in results.items():
        rows.append((
            f"{drift} ppm drift: mis-sampled bits (hard / naive)",
            "0 with hard sync",
            f"{hard_errors} / {naive_errors} of {frame_bits - 1}",
        ))
    report("Sec. IV-C — hard sync vs free-running timer", rows,
           notes="naive phase 0.03 into the bit: issue (i); drift: issue (ii)")
    assert all(hard == 0 for hard, _naive in results.values())
    assert results[300][1] > 0  # the naive scheme fails at crystal drift


def test_drift_budget_for_detection_prefix(benchmark):
    """MichiCAN only needs the first ~20 bits sampled correctly (the FSM
    decides inside the ID; the counterattack ends by position 20) — which
    buys an enormous drift budget compared to sampling whole frames."""
    def run():
        return {
            bits: max_tolerable_drift_ppm(500_000, bits)
            for bits in (20, 125)
        }

    budgets = benchmark(run)
    report("Sec. IV-C — drift budget", [
        ("tolerable drift, 20-bit prefix (ppm)", "ample",
         f"{budgets[20]:.0f}"),
        ("tolerable drift, full 125-bit frame (ppm)", "crystal-grade",
         f"{budgets[125]:.0f}"),
        ("automotive crystal spec (ppm)", "~100", 100),
    ])
    assert budgets[20] > 4 * budgets[125]
    assert budgets[125] > 100  # a normal crystal suffices even frame-long


def test_fudge_error_tolerance(benchmark):
    """How badly can the fudge factor be mis-calibrated before the first
    sampled bits go wrong?  (The paper calibrates it empirically.)"""
    def run():
        levels = _frame_levels()
        tolerance = 0.0
        step = 0.05e-6
        error = step
        while error < 2e-6:
            result = sample_with_hard_sync(
                levels, SyncConfig(bus_speed=500_000, drift_ppm=100,
                                   fudge_error=error))
            if result.missampled:
                break
            tolerance = error
            error += step
        return tolerance

    tolerance = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Sec. IV-C — fudge-factor calibration tolerance", [
        ("max residual fudge error (us at 500 kbit/s)",
         "< 0.6 us (30% of a bit)", f"{tolerance * 1e6:.2f}"),
    ])
    assert 0.1e-6 <= tolerance <= 0.8e-6
