"""Fig. 2: the DoS attack taxonomy, measured.

The figure classifies suspension attacks as *traditional* (flood ID 0x000 —
everything starves), *random* and *targeted* (flood just below the victim —
only IDs at or above it starve).  This bench measures exactly those
starvation profiles on a three-victim bus, then shows MichiCAN erasing all
of them.

Regenerate:  pytest benchmarks/bench_fig2_attack_taxonomy.py --benchmark-only -s
"""

from conftest import report
from repro.attacks.dos import DosAttacker, TargetedDosAttacker, TraditionalDosAttacker
from repro.bus.events import FrameTransmitted
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode
from repro.node.scheduler import PeriodicMessage, PeriodicScheduler

VICTIM_IDS = (0x100, 0x260, 0x500)
PERIOD_BITS = 1_500
WINDOW = 30_000


def build_bus(attacker=None, defended=False):
    sim = CanBusSimulator(bus_speed=500_000)
    if defended:
        sim.add_node(MichiCanNode(
            "defender",
            set(range(0x600)) - set(VICTIM_IDS),
        ))
    for victim_id in VICTIM_IDS:
        sim.add_node(CanNode(f"ecu_{victim_id:03x}",
                             scheduler=PeriodicScheduler(
            [PeriodicMessage(victim_id, period_bits=PERIOD_BITS)])))
    if attacker is not None:
        sim.add_node(attacker)
    sim.run(WINDOW)
    expected = WINDOW // PERIOD_BITS
    return {
        victim_id: len([e for e in sim.events_of(FrameTransmitted)
                        if e.frame.can_id == victim_id]) / expected
        for victim_id in VICTIM_IDS
    }


def test_fig2_attack_taxonomy(benchmark):
    def run():
        return {
            "baseline": build_bus(),
            "traditional": build_bus(TraditionalDosAttacker("atk")),
            "targeted": build_bus(TargetedDosAttacker("atk", victim_id=0x260)),
            "traditional+michican": build_bus(
                TraditionalDosAttacker("atk"), defended=True),
            "targeted+michican": build_bus(
                TargetedDosAttacker("atk", victim_id=0x260), defended=True),
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for scenario, deliveries in profiles.items():
        profile = " / ".join(f"{deliveries[v]:.0%}" for v in VICTIM_IDS)
        rows.append((f"{scenario}: delivery 0x100/0x260/0x500",
                     "per Fig. 2", profile))
    report("Fig. 2 — DoS taxonomy, measured delivery rates", rows,
           notes="traditional starves everything; targeted only IDs >= "
                 "victim; MichiCAN restores all")

    baseline = profiles["baseline"]
    assert all(rate >= 0.95 for rate in baseline.values())
    # Traditional DoS: everything starves.
    assert all(rate <= 0.05 for rate in profiles["traditional"].values())
    # Targeted at 0x260: the higher-priority 0x100 survives, 0x260+ starve.
    targeted = profiles["targeted"]
    assert targeted[0x100] >= 0.9
    assert targeted[0x260] <= 0.05 and targeted[0x500] <= 0.05
    # MichiCAN restores near-baseline delivery in both cases.
    for scenario in ("traditional+michican", "targeted+michican"):
        for rate in profiles[scenario].values():
            assert rate >= 0.85
