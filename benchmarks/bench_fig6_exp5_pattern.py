"""Fig. 6: the intertwined bus-off pattern of Experiment 5.

The paper's logic-analyzer shot shows: 0x066 (higher priority) dominates the
error-active phase; once error-passive, its suspend-transmission windows let
0x067 in; both then toggle retransmissions until 0x066 goes bus-off first
and 0x067 finishes its remaining rounds.

Regenerate:  pytest benchmarks/bench_fig6_exp5_pattern.py --benchmark-only -s
"""

from conftest import report
from repro.bus.events import BusOffEntered, FrameStarted
from repro.experiments.scenarios import experiment_5
from repro.trace.framelog import FrameLog


def _interleavings(starts):
    """Count alternations between the two attackers' attempts."""
    toggles = 0
    for a, b in zip(starts, starts[1:]):
        if a != b:
            toggles += 1
    return toggles


def test_fig6_intertwined_pattern(benchmark):
    def run():
        setup = experiment_5()
        setup.sim.run_until(
            lambda s: all(a.is_bus_off for a in setup.attackers), 10_000)
        return setup

    setup = benchmark.pedantic(run, rounds=1, iterations=1)
    events = setup.sim.events
    starts = [e for e in events if isinstance(e, FrameStarted)
              and e.node.startswith("attacker")]
    busoffs = [e for e in events if isinstance(e, BusOffEntered)]

    # Both attackers assert SOF together; the bus *owner* of each round is
    # the one whose transmission gets destroyed (a transmitter-side error).
    from repro.bus.events import ErrorDetected

    owners = [e.node for e in events
              if isinstance(e, ErrorDetected)
              and e.node.startswith("attacker") and e.error.as_transmitter]
    # Phase 1: while 0x066 is error-active it wins every arbitration.
    early = owners[:16]
    # Phase 3: once 0x066 is error-passive its suspend windows let 0x067
    # in and the rounds toggle.
    toggles = _interleavings(owners)

    log = FrameLog(events)
    stats = {a.name: log.busoff_episodes(a.name)[0] for a in setup.attackers}

    report("Fig. 6 — Experiment 5 pattern", [
        ("early rounds owned by 0x066", True,
         all(n == "attacker_066" for n in early)),
        ("round ownership toggles (count)", ">= 16", toggles),
        ("0x066 bus-off first", True,
         busoffs[0].node == "attacker_066"),
        ("0x067 continues after 0x066 dies", True,
         any(e.time > busoffs[0].time for e in starts
             if e.node == "attacker_067")),
        ("0x066 fight (bits)", "~1950 (39.0 ms)",
         stats["attacker_066"].duration_bits),
        ("0x067 fight (bits)", "~1770 (35.4 ms)",
         stats["attacker_067"].duration_bits),
    ])

    print("\n    round-ownership tail (who got destroyed):")
    for node in owners[-20:]:
        print(f"      {node}")

    assert all(n == "attacker_066" for n in early)
    assert toggles >= 16
    assert busoffs[0].node == "attacker_066"
    # Intertwined fights are ~30-60 % longer than the single-attacker 1248.
    for episode in stats.values():
        assert 1_400 <= episode.duration_bits <= 2_600
