"""Extension: Exp. 3 across all eight vehicle buses + the load model.

The paper ran the restbus experiments with Veh. D only ("we randomly
selected Veh. D").  The simulator sweeps all eight buses of Veh. A-D and
checks each measured mean against the closed-form load model
``T = base / (1 - b)`` (the Table III c-terms collapsed to a utilization).

Regenerate:  pytest benchmarks/bench_restbus_sweep.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.busoff_theory import (
    busoff_ms,
    expected_busoff_bits_under_load,
)
from repro.attacks.dos import DosAttacker
from repro.bus.simulator import CanBusSimulator
from repro.core.defense import MichiCanNode
from repro.experiments.runner import run_and_measure
from repro.experiments.scenarios import (
    RESTBUS_TARGET_LOAD,
    detection_ids_for,
)
from repro.workloads.matrix import theoretical_bus_load
from repro.workloads.restbus import RestbusNode
from repro.workloads.vehicles import all_vehicle_buses

BASE_BITS = 1_230  # measured clean-bus episode (Exp. 4)


def run_bus(matrix, duration=60_000):
    sim = CanBusSimulator(bus_speed=50_000)
    native = theoretical_bus_load(matrix, sim.bus_speed)
    scale = max(1.0, native / RESTBUS_TARGET_LOAD)
    sim.add_node(RestbusNode("restbus", matrix, sim.bus_speed,
                             time_scale=scale))
    defender = MichiCanNode(
        "michican", detection_ids_for(0x173, matrix.all_ids()))
    sim.add_node(defender)
    attacker = sim.add_node(DosAttacker("attacker", 0x064))
    result = run_and_measure(sim, [attacker], duration,
                             name=matrix.name, defenders=[defender])
    return result.attacker_stats["attacker"]


def test_exp3_across_all_vehicle_buses(benchmark):
    def run():
        return {matrix.name: run_bus(matrix)
                for matrix in all_vehicle_buses()}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted_bits = expected_busoff_bits_under_load(
        RESTBUS_TARGET_LOAD, base_bits=BASE_BITS)
    predicted_ms = busoff_ms(round(predicted_bits), 50_000)
    rows = []
    for name, bus_stats in sorted(stats.items()):
        rows.append((f"{name} mean bus-off (ms)",
                     f"~{predicted_ms:.1f} (load model)",
                     f"{bus_stats['mean_ms']:.1f}"))
    report("Restbus sweep — Exp. 3 on all eight buses", rows,
           notes="paper evaluated Veh. D only; the load model T = base/(1-b) "
                 "predicts every bus")
    for bus_stats in stats.values():
        assert bus_stats["count"] >= 10
        assert bus_stats["mean_ms"] == pytest.approx(predicted_ms, rel=0.12)
