"""Extension: Exp. 3 across all eight vehicle buses + the load model.

The paper ran the restbus experiments with Veh. D only ("we randomly
selected Veh. D").  The simulator sweeps all eight buses of Veh. A-D and
checks each measured mean against the closed-form load model
``T = base / (1 - b)`` (the Table III c-terms collapsed to a utilization).

The eight buses are declared as one campaign of ``restbus_fight`` specs and
fanned out over worker processes — the first consumer of the campaign
engine's parallelism.

Regenerate:  pytest benchmarks/bench_restbus_sweep.py --benchmark-only -s
"""

import os

import pytest

from conftest import report
from repro.analysis.busoff_theory import (
    busoff_ms,
    expected_busoff_bits_under_load,
)
from repro.experiments.campaign import Campaign, ScenarioSpec
from repro.experiments.scenarios import RESTBUS_TARGET_LOAD
from repro.workloads.vehicles import VEHICLES

BASE_BITS = 1_230  # measured clean-bus episode (Exp. 4)
N_WORKERS = min(4, os.cpu_count() or 1)


def sweep_specs(duration=60_000):
    return [
        ScenarioSpec(
            "restbus_fight",
            {"vehicle": vehicle, "bus": bus,
             "target_load": RESTBUS_TARGET_LOAD},
            duration_bits=duration,
            label=f"{vehicle}_bus{bus}",
        )
        for vehicle in sorted(VEHICLES)
        for bus in (1, 2)
    ]


def test_exp3_across_all_vehicle_buses(benchmark):
    campaign = Campaign(sweep_specs(), n_workers=N_WORKERS)

    outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    stats = {record.spec.name: record.result.attacker_stats["attacker"]
             for record in outcome.records}
    predicted_bits = expected_busoff_bits_under_load(
        RESTBUS_TARGET_LOAD, base_bits=BASE_BITS)
    predicted_ms = busoff_ms(round(predicted_bits), 50_000)
    rows = []
    for name, bus_stats in sorted(stats.items()):
        rows.append((f"{name} mean bus-off (ms)",
                     f"~{predicted_ms:.1f} (load model)",
                     f"{bus_stats['mean_ms']:.1f}"))
    report("Restbus sweep — Exp. 3 on all eight buses", rows,
           notes="paper evaluated Veh. D only; the load model T = base/(1-b) "
                 f"predicts every bus ({N_WORKERS} campaign worker(s))")
    assert len(stats) == 8
    for bus_stats in stats.values():
        assert bus_stats["count"] >= 10
        assert bus_stats["mean_ms"] == pytest.approx(predicted_ms, rel=0.12)
