"""Sec. V-C extension: more than two concurrent attackers.

Paper: "We repeated Experiment 5 with A=3 and A=4 attacking ECUs.  The total
bus-off time consists of 3515 and 4660 bits, respectively.  MichiCAN is
effective against up to four attackers, as A >= 5 would render the CAN bus
inoperable" (10 ms deadline at 500 kbit/s = 5000 bits).

All four attacker counts run as one ``multi_attacker`` campaign fanned out
over worker processes.

Regenerate:  pytest benchmarks/bench_multi_attacker.py --benchmark-only -s
"""

import os

import pytest

from conftest import report
from repro.analysis.busoff_theory import max_attackers_before_deadline_miss
from repro.experiments.campaign import Campaign, ScenarioSpec
from repro.experiments.scenarios import total_fight_bits

PAPER_TOTALS = {3: 3515, 4: 4660}
DEADLINE_BITS = 5_000
ATTACKER_COUNTS = (2, 3, 4, 5)
N_WORKERS = min(4, os.cpu_count() or 1)


def test_multi_attacker_fights(benchmark):
    specs = [
        ScenarioSpec("multi_attacker", {"num_attackers": attackers},
                     duration_bits=24_000, label=f"A={attackers}")
        for attackers in ATTACKER_COUNTS
    ]
    campaign = Campaign(specs, n_workers=N_WORKERS)
    outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)

    for attackers, record in zip(ATTACKER_COUNTS, outcome.records):
        result = record.result
        total = total_fight_bits(result)
        paper = PAPER_TOTALS.get(attackers, "-")
        report(f"Multi-attacker fight, A = {attackers}", [
            ("total bus-off fight (bits)", paper, total),
            ("within 5000-bit deadline", attackers <= 4,
             total <= DEADLINE_BITS),
            ("all attackers eradicated", True,
             all(eps for eps in result.episodes.values())),
        ])
        assert all(eps for eps in result.episodes.values())
        if attackers in PAPER_TOTALS:
            assert total == pytest.approx(PAPER_TOTALS[attackers], rel=0.15)
        if attackers >= 5:
            assert total > DEADLINE_BITS


def test_attacker_limit_formula(benchmark):
    limit = benchmark(max_attackers_before_deadline_miss)
    report("Attacker limit", [
        ("max concurrent attackers before deadline miss", 4, limit),
    ])
    assert limit == 4
