"""Sec. V-C extension: more than two concurrent attackers.

Paper: "We repeated Experiment 5 with A=3 and A=4 attacking ECUs.  The total
bus-off time consists of 3515 and 4660 bits, respectively.  MichiCAN is
effective against up to four attackers, as A >= 5 would render the CAN bus
inoperable" (10 ms deadline at 500 kbit/s = 5000 bits).

Regenerate:  pytest benchmarks/bench_multi_attacker.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.analysis.busoff_theory import max_attackers_before_deadline_miss
from repro.experiments.scenarios import multi_attacker_experiment, total_fight_bits

PAPER_TOTALS = {3: 3515, 4: 4660}
DEADLINE_BITS = 5_000


@pytest.mark.parametrize("attackers", [2, 3, 4, 5])
def test_multi_attacker_fight(benchmark, attackers):
    result = benchmark.pedantic(
        lambda: multi_attacker_experiment(attackers).run(24_000),
        rounds=1, iterations=1,
    )
    total = total_fight_bits(result)
    paper = PAPER_TOTALS.get(attackers, "-")
    report(f"Multi-attacker fight, A = {attackers}", [
        ("total bus-off fight (bits)", paper, total),
        ("within 5000-bit deadline", attackers <= 4, total <= DEADLINE_BITS),
        ("all attackers eradicated", True,
         all(eps for eps in result.episodes.values())),
    ])
    assert all(eps for eps in result.episodes.values())
    if attackers in PAPER_TOTALS:
        assert total == pytest.approx(PAPER_TOTALS[attackers], rel=0.15)
    if attackers >= 5:
        assert total > DEADLINE_BITS


def test_attacker_limit_formula(benchmark):
    limit = benchmark(max_attackers_before_deadline_miss)
    report("Attacker limit", [
        ("max concurrent attackers before deadline miss", 4, limit),
    ])
    assert limit == 4
