"""Sec. V-B: detection latency over random FSM populations.

Paper: "Our evaluation with 160,000 random FSMs yielded a mean detection bit
position of 9 bits.  Furthermore, the evaluation confirmed a 100% detection
rate."

The full population is 160,000 FSMs; the bench default runs a 2,000-FSM
subsample (16,000 malicious classifications) which reproduces the mean to
within a tenth of a bit.  Set MICHICAN_FULL_LATENCY=1 in the environment to
run the full population.

Regenerate:  pytest benchmarks/bench_detection_latency.py --benchmark-only -s
"""

import os

from conftest import report
from repro.analysis.latency import (
    mean_detection_positions_by_ivn_size,
    run_latency_study,
)

NUM_FSMS = 160_000 if os.environ.get("MICHICAN_FULL_LATENCY") else 2_000


def test_detection_latency_study(benchmark):
    result = benchmark.pedantic(
        lambda: run_latency_study(num_fsms=NUM_FSMS, seed=160_000),
        rounds=1, iterations=1,
    )
    report("Sec. V-B — detection latency", [
        ("random FSMs evaluated", 160_000, result.fsms),
        ("detection rate", "100%", f"{result.detection_rate:.1%}"),
        ("false positive rate", "0%", f"{result.false_positive_rate:.1%}"),
        ("mean detection bit position", 9, result.mean_detection_bit),
        ("worst detection bit position", "<= 11",
         max(result.histogram, default=0)),
    ], notes="subsampled population unless MICHICAN_FULL_LATENCY=1")
    assert result.detection_rate == 1.0  # repro: noqa[RC103]
    assert result.false_positive_rate == 0.0  # repro: noqa[RC103]
    assert 8.0 <= result.mean_detection_bit <= 10.0
    assert max(result.histogram) <= 11


def test_detection_position_rises_with_ivn_size(benchmark):
    """The paper's scaling observation: larger 𝔼 -> later decisions."""
    by_size = benchmark.pedantic(
        lambda: mean_detection_positions_by_ivn_size(
            [4, 16, 64, 256], fsms_per_size=40, seed=9),
        rounds=1, iterations=1,
    )
    rows = [(f"mean detection bit, |E| = {size}", "rises", round(value, 2))
            for size, value in sorted(by_size.items())]
    report("Sec. V-B — scaling with IVN size", rows)
    ordered = [by_size[size] for size in sorted(by_size)]
    assert ordered == sorted(ordered)
