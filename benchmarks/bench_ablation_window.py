"""Ablation: the counterattack window (DESIGN.md decision #1).

The paper fires at un-stuffed frame position 13 (the RTR bit) and injects 6
dominant bits.  This bench sweeps both choices:

* firing *during arbitration* (position <= 12) makes the attacker lose
  arbitration instead of erroring — its TEC never rises and it is never
  bused off (exactly why Sec. IV-E forbids it);
* injecting *fewer* than 6 bits misses the worst-case DLC patterns;
* injecting *more* than 6 is harmless but occupies the bus longer.

Regenerate:  pytest benchmarks/bench_ablation_window.py --benchmark-only -s
"""

import pytest

from conftest import report
from repro.bus.simulator import CanBusSimulator
from repro.can.frame import CanFrame
from repro.core.defense import MichiCanNode
from repro.node.controller import CanNode


def fight(trigger_position=None, attack_duration=None, attack_id=0x055,
          dlc=1, limit=6_000):
    """Returns (bused_off, time, attacker_tec)."""
    sim = CanBusSimulator(bus_speed=50_000)
    sim.add_node(MichiCanNode(
        "defender", range(0x100),
        trigger_position=trigger_position, attack_duration=attack_duration,
    ))
    attacker = sim.add_node(CanNode("attacker"))
    attacker.send(CanFrame(attack_id, bytes(dlc)))
    hit = sim.run_until(lambda s: attacker.is_bus_off, limit)
    return hit is not None, hit, attacker.tec


def test_ablation_firing_during_arbitration(benchmark):
    """Position 8 lands inside the ID field: the attacker just loses
    arbitration — no error, no TEC, no bus-off."""
    ok, _, tec = benchmark.pedantic(
        lambda: fight(trigger_position=8), rounds=1, iterations=1)
    report("Ablation — fire during arbitration (pos 8)", [
        ("attacker bused off", "no (paper's rationale)", ok),
        ("attacker TEC", 0, tec),
    ])
    assert not ok
    assert tec == 0


def test_ablation_paper_window(benchmark):
    ok, time, _ = benchmark.pedantic(
        lambda: fight(), rounds=1, iterations=1)
    report("Ablation — paper window (pos 13, 6 bits)", [
        ("attacker bused off", "yes", ok),
        ("bus-off time (bits)", "~1250", time),
    ])
    assert ok


@pytest.mark.parametrize("duration", [1, 3, 6, 10])
def test_ablation_injection_duration(benchmark, duration):
    """DLC=1 is the paper's worst case: fewer than 6 injected bits leave
    the recessive DLC LSB untouched and the frame survives."""
    ok, time, tec = benchmark.pedantic(
        lambda: fight(attack_duration=duration, dlc=1),
        rounds=1, iterations=1)
    expected = duration >= 6
    report(f"Ablation — inject {duration} dominant bits (worst-case DLC=1)", [
        ("attacker bused off", "yes" if expected else "no", ok),
        ("attacker TEC at end", "-", tec),
    ])
    assert ok == expected


def test_ablation_short_pulse_still_works_on_common_dlc8(benchmark):
    """With the common DLC=8 ('1000') a 4-bit pulse already reaches the
    recessive DLC MSB — the paper's 'earliest bit error at the fourth bit'."""
    ok, _, _ = benchmark.pedantic(
        lambda: fight(attack_duration=4, dlc=8), rounds=1, iterations=1)
    report("Ablation — 4-bit pulse vs DLC=8", [
        ("attacker bused off", "yes", ok),
    ])
    assert ok
